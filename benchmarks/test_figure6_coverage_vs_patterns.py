"""Benchmark regenerating Figure 6: cumulative coverage vs number of patterns."""

from conftest import run_once

from repro.experiments import figure6


def test_figure6_coverage_vs_patterns(benchmark, bench_profile):
    curves = run_once(
        benchmark, figure6.run,
        designs=("c2670_like", "c6288_like"), profile=bench_profile,
    )
    print("\n" + figure6.report(curves))
    for result in curves:
        assert result.deterrent_curve
        # Paper shape: DETERRENT reaches its final coverage with (far) fewer
        # patterns than TGRL emits in total.
        deterrent_final = result.deterrent_curve[-1]
        tgrl_final = result.tgrl_curve[-1] if result.tgrl_curve else (0, 0.0)
        assert deterrent_final[0] <= tgrl_final[0] or tgrl_final[0] == 0
