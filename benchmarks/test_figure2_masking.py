"""Benchmark regenerating Figure 2: reward timing x masking combinations."""

from conftest import run_once

from repro.experiments import figure2


def test_figure2_masking_combinations(benchmark, bench_profile):
    results = run_once(benchmark, figure2.run, design="mips16_like", profile=bench_profile)
    print("\n" + figure2.report(results))
    by_combo = {(r.reward_mode, r.masking): r for r in results}
    # Paper shape: masking never hurts the maximum compatible-set size, and the
    # end-of-episode agents complete episodes at a higher rate than per-step ones.
    assert (
        by_combo[("per_step", True)].max_compatible
        >= by_combo[("per_step", False)].max_compatible
    )
    assert (
        by_combo[("end_of_episode", True)].episodes_per_minute
        > by_combo[("per_step", True)].episodes_per_minute
    )
