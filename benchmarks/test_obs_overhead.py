"""Telemetry no-op overhead benchmark.

The observability hooks sit on the hottest paths in the repository — the
CDCL propagate/decide loop, the compiled simulation sweep, cache fetches —
so their *disabled* cost matters as much as their enabled fidelity.  The
design contract is that a disabled hook is one attribute load and one
branch (``hot_path`` returns ``None``; ``counter_add`` returns before
touching the registry).  This benchmark runs the solver-only workload with
the obs package imported and telemetry off, asserts the no-op contract
(nothing is recorded), and reports the throughput as
``disabled_telemetry_decisions_per_second`` so
``scripts/check_benchmark_regression.py`` tracks it against the baseline:
if instrumented-but-disabled throughput drifts from the historical
un-instrumented rate, the no-op path got more expensive.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.circuits.library import load_benchmark
from repro.sat.temporal import SequentialJustifier
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.insertion import sample_sequential_trojans

DESIGN = "s13207_like"
CYCLES = 4


@pytest.fixture(scope="module")
def workload():
    netlist = load_benchmark(DESIGN, combinational_view=False)
    rare_nets = extract_rare_nets(
        netlist, threshold=0.1, num_patterns=1024, seed=0, cycles=CYCLES
    )
    trojans = sample_sequential_trojans(
        netlist, rare_nets, num_trojans=8, trigger_width=3,
        mode="cumulative", count=2, seed=1,
    )
    assert trojans, "benchmark needs a multi-cycle Trojan population"
    return netlist, trojans


def test_solver_throughput_with_telemetry_disabled(benchmark, workload):
    netlist, trojans = workload
    obs.disable()
    obs.metrics.reset_registry()

    def solver_workload():
        justifier = SequentialJustifier(netlist, cycles=CYCLES)
        for trojan in trojans:
            justifier.is_satisfiable(trojan.trigger)
        return justifier.stats()

    solver_workload()  # warm-up outside the timed region
    started = time.perf_counter()
    stats = benchmark.pedantic(solver_workload, rounds=1, iterations=1)
    elapsed = max(time.perf_counter() - started, 1e-9)

    # The no-op contract: disabled telemetry records nothing at all.
    snapshot = obs.metrics.registry().snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}

    assert stats.decisions > 0
    assert stats.propagations > 0
    benchmark.extra_info["design"] = DESIGN
    benchmark.extra_info["queries"] = len(trojans)
    benchmark.extra_info["decisions"] = stats.decisions
    benchmark.extra_info["disabled_telemetry_decisions_per_second"] = round(
        stats.decisions / elapsed, 1
    )
