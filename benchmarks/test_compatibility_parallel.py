"""Micro-benchmark: serial vs process-sharded pairwise compatibility.

Times the O(r²) offline-phase compatibility queries (paper §3.3) on the
largest library circuit, once on the single incremental solver (``n_jobs=1``)
and once sharded across worker processes, and asserts the two matrices are
bit-identical.  On multi-core machines the sharded path should win once the
per-worker CNF re-encoding is amortised; both wall-times are recorded in the
pytest-benchmark JSON so CI tracks the ratio over time.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.circuits.library import load_benchmark
from repro.core.compatibility import compute_compatibility
from repro.simulation.rare_nets import extract_rare_nets

#: Largest circuit in the library suite (the paper's MIPS analogue).
DESIGN = "mips16_like"

#: Cap on rare nets so the quadratic pair count stays CI-sized (top-N most
#: rare; extraction returns them sorted by ascending probability).
MAX_RARE_NETS = 72


@pytest.fixture(scope="module")
def workload():
    netlist = load_benchmark(DESIGN)
    rare_nets = extract_rare_nets(netlist, threshold=0.1, num_patterns=1024, seed=0)
    assert len(rare_nets) >= 2, "benchmark needs a non-trivial pair matrix"
    return netlist, rare_nets[:MAX_RARE_NETS]


def test_serial_vs_sharded_compatibility(benchmark, workload):
    netlist, rare_nets = workload
    jobs = max(2, os.cpu_count() or 1)

    started = time.perf_counter()
    serial = compute_compatibility(netlist, rare_nets, n_jobs=1, cache=None)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sharded = compute_compatibility(netlist, rare_nets, n_jobs=jobs, cache=None)
    sharded_seconds = time.perf_counter() - started

    # Hard acceptance property: sharding never changes the matrix.
    assert np.array_equal(serial.matrix, sharded.matrix)
    assert serial.rare_nets == sharded.rare_nets

    benchmark.extra_info["design"] = DESIGN
    benchmark.extra_info["num_rare_nets"] = serial.num_rare_nets
    benchmark.extra_info["num_pairs"] = serial.num_rare_nets * (serial.num_rare_nets - 1) // 2
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["sharded_seconds"] = round(sharded_seconds, 3)
    benchmark.extra_info["speedup"] = round(serial_seconds / max(sharded_seconds, 1e-9), 3)

    # Timed benchmark target: the sharded path (rounds=1 — it is a full
    # offline phase, not a tight loop).
    benchmark.pedantic(
        compute_compatibility,
        args=(netlist, rare_nets),
        kwargs={"n_jobs": jobs, "cache": None},
        rounds=1,
        iterations=1,
    )
