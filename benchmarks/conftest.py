"""Shared profile for the benchmark suite.

Most benchmarks regenerate one of the paper's tables or figures at a reduced
scale (the ``BENCH`` profile below) and are executed exactly once per session
(``rounds=1``) because each run is itself a full experiment, not a micro-
benchmark; ``test_simulation_engine.py`` is the exception — a true
micro-benchmark of the compiled simulation engine.  Run
``python -m repro.experiments.<name> full`` for results closer to paper
scale.

The package is importable after ``pip install -e .[dev]`` (see
``pyproject.toml``); no ``PYTHONPATH`` manipulation is needed.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentProfile

#: Reduced-scale profile used by the pytest-benchmark targets.
BENCH = ExperimentProfile(
    name="quick",
    num_trojans=30,
    trigger_width=4,
    training_steps=1536,
    tgrl_training_steps=512,
    k_patterns=96,
    num_cliques=48,
    num_probability_patterns=1024,
    num_envs=2,
    episode_length=25,
    seed=0,
)


@pytest.fixture(scope="session")
def bench_profile() -> ExperimentProfile:
    """The reduced-scale experiment profile shared by all benchmarks."""
    return BENCH


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
