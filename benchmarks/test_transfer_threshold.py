"""Benchmark regenerating the §4.5 threshold-transfer experiment."""

from conftest import run_once

from repro.experiments import transfer


def test_transfer_across_thresholds(benchmark, bench_profile):
    result = run_once(
        benchmark, transfer.run,
        design="c6288_like", train_threshold=0.14, eval_threshold=0.10,
        profile=bench_profile,
    )
    print("\n" + transfer.report(result))
    # Paper shape: an agent trained on the larger rare-net population still
    # covers Trojans drawn from the smaller one (99% in the paper).
    assert result.train_rare_nets >= result.eval_rare_nets
    assert result.coverage_percent > 0.0
