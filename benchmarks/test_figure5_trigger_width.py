"""Benchmark regenerating Figure 5: coverage vs trigger width, DETERRENT vs TGRL."""

from conftest import run_once

from repro.experiments import figure5


def test_figure5_trigger_width(benchmark, bench_profile):
    points = run_once(
        benchmark, figure5.run,
        design="c6288_like", widths=(2, 4, 6, 8), profile=bench_profile,
    )
    print("\n" + figure5.report(points))
    assert points
    # Paper shape: DETERRENT's coverage stays at or above TGRL's for wide
    # triggers, where TGRL's per-pattern probability of hitting all trigger
    # nets collapses.
    widest = points[-1]
    assert widest.deterrent_coverage >= widest.tgrl_coverage
