"""Benchmark regenerating Table 1: per-step vs end-of-episode rewards (MIPS analogue)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_reward_modes(benchmark, bench_profile):
    results = run_once(benchmark, table1.run, design="mips16_like", profile=bench_profile)
    print("\n" + table1.report(results))
    per_step = results["per_step"]
    end_of_episode = results["end_of_episode"]
    # Paper shape: end-of-episode rewards train faster (steps/minute) while the
    # per-step agent finds at-least-as-large compatible sets.
    assert end_of_episode.steps_per_minute > per_step.steps_per_minute
    assert per_step.max_compatible >= 1
    assert end_of_episode.max_compatible >= 1
