"""Micro-benchmark: compiled engine vs the seed per-gate simulation loop.

Unlike the other benchmarks (which regenerate paper tables/figures), this one
times the simulation substrate itself:

- ``test_compiled_engine_speedup`` simulates 4096 random patterns on the
  largest library circuit with the seed implementation (per-gate Python loop
  over ``Gate`` objects with dict lookups, kept as the shim's ``reference``
  engine) and with the compiled engine, and asserts the compiled engine is at
  least 10x faster end to end.
- ``test_batched_trojan_evaluation`` evaluates a 30-Trojan population with
  the batched single-simulation path and with the literal
  one-infected-netlist-per-Trojan flow, asserting identical verdicts and
  reporting the speedup.
"""

import statistics
import time

import numpy as np

from repro.baselines.random_patterns import random_pattern_set
from repro.circuits.library import load_benchmark
from repro.simulation.compiled import compile_netlist
from repro.simulation.logic_sim import BitParallelSimulator
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.evaluation import sequential_trigger_coverage, trigger_coverage
from repro.trojan.insertion import sample_trojans

NUM_PATTERNS = 4096


def _median_seconds(function, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_compiled_engine_speedup(benchmark):
    netlist = load_benchmark("mips16_like")
    compiled = compile_netlist(netlist)
    rng = np.random.default_rng(0)
    patterns = rng.integers(0, 2, size=(NUM_PATTERNS, compiled.num_sources), dtype=np.uint8)

    reference = BitParallelSimulator(netlist, engine="reference")
    reference.run_patterns(patterns[:128])  # warm caches / lazy imports
    t_reference = _median_seconds(lambda: reference.run_patterns(patterns), rounds=3)

    compiled.run_patterns(patterns)  # warm
    t_compiled = _median_seconds(lambda: compiled.run_patterns(patterns), rounds=5)
    # Record the compiled hot path in the benchmark JSON artifact as well.
    benchmark.pedantic(compiled.run_patterns, args=(patterns,), rounds=5, iterations=1)

    speedup = t_reference / t_compiled
    print(
        f"\nmips16_like @ {NUM_PATTERNS} patterns: "
        f"reference {t_reference * 1e3:.2f} ms, compiled {t_compiled * 1e3:.3f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"compiled engine is only {speedup:.1f}x faster than the seed per-gate "
        f"loop (reference {t_reference * 1e3:.2f} ms vs compiled {t_compiled * 1e3:.3f} ms)"
    )


def test_batched_trojan_evaluation(benchmark):
    netlist = load_benchmark("c2670_like")
    rare = extract_rare_nets(netlist, threshold=0.1, num_patterns=2048, seed=0)
    trojans = sample_trojans(netlist, rare, num_trojans=30, trigger_width=4, seed=1)
    assert len(trojans) >= 30
    pattern_set = random_pattern_set(netlist, num_patterns=1024, seed=2)

    start = time.perf_counter()
    sequential = sequential_trigger_coverage(netlist, trojans, pattern_set)
    t_sequential = time.perf_counter() - start

    trigger_coverage(netlist, trojans, pattern_set)  # warm the compile cache
    start = time.perf_counter()
    batched = trigger_coverage(netlist, trojans, pattern_set)
    t_batched = time.perf_counter() - start
    benchmark.pedantic(
        trigger_coverage, args=(netlist, trojans, pattern_set), rounds=3, iterations=1
    )

    print(
        f"\n{len(trojans)} Trojans @ {len(pattern_set)} patterns: "
        f"per-Trojan {t_sequential * 1e3:.1f} ms, batched {t_batched * 1e3:.2f} ms, "
        f"speedup {t_sequential / t_batched:.1f}x"
    )
    assert batched.detected == sequential.detected
    assert batched.num_detected == sequential.num_detected
    assert t_batched < t_sequential
