"""Benchmark regenerating Table 2: coverage and test length of all techniques."""

from conftest import run_once

from repro.experiments import table2


def test_table2_coverage(benchmark, bench_profile):
    rows = run_once(
        benchmark, table2.run,
        designs=("c2670_like", "c6288_like", "mips16_like"),
        profile=bench_profile,
    )
    print("\n" + table2.report(rows))
    reduction = table2.reduction_vs_baselines(rows)
    print(f"Average test-length reduction vs TARMAC/TGRL: {reduction:.1f}x (paper: 169x)")
    for row in rows:
        deterrent = row.outcomes["DETERRENT"]
        random = row.outcomes["Random"]
        atpg = row.outcomes["ATPG"]
        tgrl = row.outcomes["TGRL"]
        # Paper shape: DETERRENT matches or beats the baselines' coverage with
        # far fewer patterns than Random/TGRL, and conventional ATPG lags badly.
        assert deterrent.coverage_percent >= random.coverage_percent
        assert deterrent.coverage_percent >= atpg.coverage_percent
        assert deterrent.test_length < tgrl.test_length
    assert reduction > 1.0
