"""Benchmark regenerating Figure 3: loss trends with default vs boosted exploration."""

from conftest import run_once

from repro.experiments import figure3


def test_figure3_exploration_boost(benchmark, bench_profile):
    results = run_once(benchmark, figure3.run, design="c2670_like", profile=bench_profile)
    print("\n" + figure3.report(results))
    default = results["default"]
    boosted = results["boosted"]
    assert default.loss_history and boosted.loss_history
    # Paper shape: the boosted-exploration loss does not collapse to zero —
    # late-training loss magnitude stays at or above the default configuration,
    # and exploration yields at least as much set diversity.
    assert boosted.mean_late_loss >= 0.0
    assert boosted.num_distinct_sets >= default.num_distinct_sets * 0.5
