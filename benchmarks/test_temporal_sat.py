"""Wall-time benchmark: SAT-guided vs random sequence generation.

Measures the full cost of each technique on one tiny-scale sequential cell —
sequence production *plus* batched coverage evaluation — and records
coverage-per-second for both, so CI tracks whether temporal justification
keeps paying for its solver time.  The hard acceptance property is asserted,
not just logged: at an equal sequence budget, the SAT-guided set must cover
strictly more multi-cycle triggers than the random baseline (random coverage
of count-k triggers is near zero by construction — that gap is the
subsystem's reason to exist).
"""

from __future__ import annotations

import time

import pytest

from repro.circuits.library import load_benchmark
from repro.core.patterns import SequenceSet
from repro.core.sequence_gen import generate_sequences
from repro.sat.temporal import SequentialJustifier
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.evaluation import sequence_trigger_coverage
from repro.trojan.insertion import sample_sequential_trojans

DESIGN = "s13207_like"
CYCLES = 4
MODE = "cumulative"
COUNT = 2
BUDGET = 16


@pytest.fixture(scope="module")
def workload():
    netlist = load_benchmark(DESIGN, combinational_view=False)
    rare_nets = extract_rare_nets(
        netlist, threshold=0.1, num_patterns=1024, seed=0, cycles=CYCLES
    )
    trojans = sample_sequential_trojans(
        netlist, rare_nets, num_trojans=20, trigger_width=3,
        mode=MODE, count=COUNT, seed=1,
    )
    assert trojans, "benchmark needs a multi-cycle Trojan population"
    return netlist, rare_nets, trojans


def test_sat_guided_vs_random_coverage_per_second(benchmark, workload):
    netlist, rare_nets, trojans = workload

    started = time.perf_counter()
    guided = generate_sequences(
        netlist, rare_nets, CYCLES, mode=MODE, count=COUNT,
        num_sequences=BUDGET, seed=3,
    )
    sat_coverage = sequence_trigger_coverage(netlist, trojans, guided)
    sat_seconds = time.perf_counter() - started

    started = time.perf_counter()
    random_sequences = SequenceSet.random(
        netlist, num_sequences=BUDGET, cycles=CYCLES, seed=2
    )
    random_coverage = sequence_trigger_coverage(netlist, trojans, random_sequences)
    random_seconds = time.perf_counter() - started

    # Hard acceptance property: strictly higher coverage at equal budget.
    assert len(guided) <= BUDGET
    assert sat_coverage.num_detected > random_coverage.num_detected

    benchmark.extra_info["design"] = DESIGN
    benchmark.extra_info["cycles"] = CYCLES
    benchmark.extra_info["rule"] = f"{MODE}-k{COUNT}"
    benchmark.extra_info["budget"] = BUDGET
    benchmark.extra_info["num_trojans"] = len(trojans)
    benchmark.extra_info["sat_sequences"] = len(guided)
    benchmark.extra_info["sat_coverage_percent"] = round(sat_coverage.coverage_percent, 1)
    benchmark.extra_info["random_coverage_percent"] = round(
        random_coverage.coverage_percent, 1
    )
    benchmark.extra_info["sat_seconds"] = round(sat_seconds, 3)
    benchmark.extra_info["random_seconds"] = round(random_seconds, 3)
    benchmark.extra_info["sat_coverage_per_second"] = round(
        sat_coverage.coverage_percent / max(sat_seconds, 1e-9), 3
    )
    benchmark.extra_info["random_coverage_per_second"] = round(
        random_coverage.coverage_percent / max(random_seconds, 1e-9), 3
    )

    # Timed benchmark target: one full SAT-guided generation (rounds=1 — it
    # is a whole offline phase, not a tight loop).
    benchmark.pedantic(
        generate_sequences,
        args=(netlist, rare_nets, CYCLES),
        kwargs={"mode": MODE, "count": COUNT, "num_sequences": BUDGET, "seed": 3},
        rounds=1,
        iterations=1,
    )


def test_solver_decisions_per_second(benchmark, workload):
    """Solver-only throughput: decisions/propagations per second on the
    unrolled temporal encoding, isolated from simulation and coverage cost.

    This is the raw-engine counterpart to the coverage-per-second number
    above: it moves when the CDCL core itself (heap, watches, restarts,
    clause forgetting) gets faster or slower, independent of how many
    queries the greedy set-construction layer issues.
    """
    netlist, rare_nets, trojans = workload

    def solver_workload():
        justifier = SequentialJustifier(netlist, cycles=CYCLES)
        for trojan in trojans:
            justifier.is_satisfiable(trojan.trigger)
        return justifier.stats()

    stats = solver_workload()  # warm-up outside the timed region
    started = time.perf_counter()
    stats = benchmark.pedantic(solver_workload, rounds=1, iterations=1)
    elapsed = max(time.perf_counter() - started, 1e-9)

    assert stats.decisions > 0
    assert stats.propagations > 0
    benchmark.extra_info["design"] = DESIGN
    benchmark.extra_info["queries"] = len(trojans)
    benchmark.extra_info["decisions"] = stats.decisions
    benchmark.extra_info["propagations"] = stats.propagations
    benchmark.extra_info["conflicts"] = stats.conflicts
    benchmark.extra_info["decisions_per_second"] = round(stats.decisions / elapsed, 1)
    benchmark.extra_info["propagations_per_second"] = round(
        stats.propagations / elapsed, 1
    )
