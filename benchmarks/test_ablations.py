"""Benchmark running the design-choice ablations listed in DESIGN.md."""

from conftest import run_once

from repro.experiments import ablations


def test_design_choice_ablations(benchmark, bench_profile):
    points = run_once(benchmark, ablations.run, design="c6288_like", profile=bench_profile)
    print("\n" + ablations.report(points))
    assert len(points) >= 5
    by_label = {point.label: point for point in points}
    # Larger k never reduces coverage (more sets can only add detections).
    k_points = sorted(
        (point for point in points if point.label.startswith("k = ")),
        key=lambda point: int(point.label.split("=")[1]),
    )
    coverages = [point.coverage_percent for point in k_points]
    assert coverages == sorted(coverages)
    assert "reward |s|^2 (paper)" in by_label
