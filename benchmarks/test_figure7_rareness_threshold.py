"""Benchmark regenerating Figure 7: rareness-threshold sweep on the multiplier."""

from conftest import run_once

from repro.experiments import figure7


def test_figure7_rareness_threshold(benchmark, bench_profile):
    points = run_once(
        benchmark, figure7.run,
        design="c6288_like", thresholds=(0.10, 0.12, 0.14), profile=bench_profile,
    )
    print("\n" + figure7.report(points))
    assert len(points) >= 2
    # Paper shape: the rare-net population grows with the threshold while
    # DETERRENT's coverage stays broadly steady (the paper reports a <=2% drop;
    # at reduced scale we allow a wider band but no collapse).
    assert points[-1].num_rare_nets >= points[0].num_rare_nets
    assert points[-1].coverage_percent >= points[0].coverage_percent - 25.0
