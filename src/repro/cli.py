"""Unified command-line interface: ``python -m repro`` / ``deterrent``.

Subcommands:

- ``deterrent list`` — show every registered experiment.
- ``deterrent run <experiment> [--profile tiny|quick|full] [--jobs N]
  [--backend serial|process|thread] [--cell-timeout S] [--max-attempts N]
  [--cache-dir DIR] [--results-dir DIR] [--set key=value ...]`` — execute an
  experiment through the runner and print its paper-vs-measured report.
- ``deterrent report [<experiment>] [--results-dir DIR]`` — list saved runs,
  or re-print the stored report of one experiment.
- ``deterrent cache [--cache-dir DIR]`` — inspect the artifact cache
  (per-kind entry counts and sizes, zero-entry kinds included).
- ``deterrent cache prune [--max-size MIB] [--max-age DAYS] [--kind K]
  [--dry-run]`` — size/age-based eviction (oldest entries first; every
  entry is recomputable) plus a sweep of stale temp/lock debris.
- ``deterrent serve [--queue-dir DIR] [--port N] [--workers N]`` — run the
  detection-as-a-service HTTP front end (POST /jobs, GET /jobs/<id>,
  /healthz, /metrics) over a durable on-disk job queue.
- ``deterrent submit <experiment> (--bench FILE | --design NAME)
  [--url URL] [--profile P] [--set key=value ...] [--no-wait]`` — submit a
  netlist to a running service and (by default) poll until the job ends.
- ``deterrent queue-worker --queue-dir DIR`` — run one work-stealing
  worker against a queue directory: lease, run, heartbeat, ack.
- ``deterrent trace <dir>`` — render an exported trace directory (written
  by ``run --trace`` / ``serve --trace``): the span tree with durations,
  the merged cross-worker instrument set, and profile percentiles;
  ``--chrome FILE`` additionally writes the Chrome ``trace_event`` view.

Every run writes structured artifacts under ``--results-dir`` (default
``results/``): a JSONL stream with one record per grid cell, plus a final
JSON run record embedding the rendered report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.experiments.reporting import (
    format_table,
    resilience_summary,
    results_dir,
    telemetry_summary,
)
from repro.runner.backends import backend_names


def _parse_option(text: str) -> tuple[str, Any]:
    """Parse one ``--set key=value`` pair (value decoded as JSON if possible)."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r} (e.g. --set design=c6288_like)"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """The ``deterrent`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="deterrent",
        description="DETERRENT reproduction: experiment registry, runner, and cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment through the runner")
    run_parser.add_argument("experiment", help="registered experiment name (see 'list')")
    run_parser.add_argument(
        "--profile", default="quick", help="execution profile: tiny, quick, or full"
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="workers for grid cells (1 = serial, 0 = all CPUs)",
    )
    run_parser.add_argument(
        "--backend", default=None, choices=backend_names(),
        help="execution backend (default: serial for --jobs 1, process otherwise)",
    )
    run_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock limit for one grid cell on pooled "
             "backends (default: the experiment's own, else unlimited)",
    )
    run_parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="attempts per grid cell before degrading to the serial backend "
             "(default: the experiment's own, else 3)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory (also honoured via DETERRENT_CACHE_DIR)",
    )
    run_parser.add_argument(
        "--results-dir", default=None,
        help="directory for JSON/JSONL run artifacts (default: results/)",
    )
    run_parser.add_argument(
        "--set", dest="options", action="append", default=[], type=_parse_option,
        metavar="KEY=VALUE", help="experiment option override (repeatable)",
    )
    run_parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="enable telemetry: export spans and metrics to DIR (inspect "
             "with 'deterrent trace DIR')",
    )

    report_parser = subparsers.add_parser("report", help="show saved run reports")
    report_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment whose stored report to print (omit to list saved runs)",
    )
    report_parser.add_argument(
        "--profile", default=None, help="restrict to one profile's saved run"
    )
    report_parser.add_argument(
        "--results-dir", default=None, help="directory holding run artifacts"
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune the artifact cache"
    )
    cache_parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory to inspect (default: DETERRENT_CACHE_DIR)",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command")
    prune_parser = cache_sub.add_parser(
        "prune", help="evict cache entries by size and/or age (oldest first)"
    )
    # Distinct dest: a subparser re-applies its own defaults over the parent
    # namespace, so sharing dest="cache_dir" would silently discard a
    # --cache-dir given before the subcommand; the two are merged in
    # _command_cache_prune.
    prune_parser.add_argument(
        "--cache-dir", dest="prune_cache_dir", default=None,
        help="cache directory to prune (default: DETERRENT_CACHE_DIR)",
    )
    prune_parser.add_argument(
        "--max-size", type=float, default=None, metavar="MIB",
        help="evict oldest entries until the cache (or, with --kind, the "
             "selected kinds' subtotal) fits in MIB mebibytes",
    )
    prune_parser.add_argument(
        "--max-age", type=float, default=None, metavar="DAYS",
        help="evict entries not modified within DAYS days",
    )
    prune_parser.add_argument(
        "--kind", action="append", default=None, metavar="NAME",
        help="restrict eviction (and the --max-size budget) to one artifact "
             "kind (repeatable)",
    )
    prune_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting anything",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the detection-as-a-service HTTP front end"
    )
    serve_parser.add_argument(
        "--queue-dir", default="deterrent-service/queue",
        help="durable job-queue directory shared with the workers",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="shared artifact cache (default: DETERRENT_CACHE_DIR, else "
             "<queue-dir>/cache)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8787, help="bind port")
    serve_parser.add_argument(
        "--workers", type=int, default=0,
        help="queue workers to spawn locally (0: use externally started "
             "'deterrent queue-worker' processes)",
    )
    serve_parser.add_argument(
        "--lease-seconds", type=float, default=None, metavar="S",
        help="job lease duration before a dead worker's job is reclaimed",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="enable telemetry: trace submits (and, via the environment, "
             "spawned workers) into DIR",
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit a netlist to a running detection service"
    )
    submit_parser.add_argument(
        "experiment", help="experiment harness to run (see 'deterrent list')"
    )
    source = submit_parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--bench", default=None, metavar="FILE",
        help=".bench netlist file to submit",
    )
    source.add_argument(
        "--design", default=None, metavar="NAME",
        help="submit a library benchmark's netlist instead of a file",
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8787", help="service base URL"
    )
    submit_parser.add_argument(
        "--profile", default="tiny", help="execution profile: tiny, quick, or full"
    )
    submit_parser.add_argument(
        "--set", dest="options", action="append", default=[], type=_parse_option,
        metavar="KEY=VALUE", help="experiment option override (repeatable)",
    )
    submit_parser.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without polling for the result",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="give up polling after S seconds (exit 1)",
    )
    submit_parser.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="S",
        help="seconds between status polls",
    )

    worker_parser = subparsers.add_parser(
        "queue-worker", help="run one work-stealing durable-queue worker"
    )
    worker_parser.add_argument(
        "--queue-dir", required=True, help="queue directory to work from"
    )
    worker_parser.add_argument(
        "--worker-id", default=None, help="stable worker name (default: worker-<pid>)"
    )
    worker_parser.add_argument(
        "--lease-seconds", type=float, default=None, metavar="S",
        help="lease duration this worker claims jobs with",
    )
    worker_parser.add_argument(
        "--poll-interval", type=float, default=0.1, metavar="S",
        help="idle sleep between claim attempts",
    )
    worker_parser.add_argument(
        "--no-heartbeat", action="store_true",
        help="do not renew leases while running (jobs longer than the lease "
             "will be stolen; chaos-testing aid)",
    )
    worker_parser.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="S",
        help="seconds between lease renewals (default: lease/3)",
    )
    worker_parser.add_argument(
        "--max-task-seconds", type=float, default=None, metavar="S",
        help="stop renewing a job's lease after S seconds so a wedged task "
             "is eventually reclaimed by a peer",
    )
    worker_parser.add_argument(
        "--max-idle-seconds", type=float, default=None, metavar="S",
        help="exit after S seconds without claimable work",
    )
    worker_parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after completing N jobs",
    )
    worker_parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache to use for every job (default: each job's own)",
    )
    worker_parser.add_argument(
        "--parent-pid", type=int, default=None, metavar="PID",
        help="exit when the supervising process PID is no longer the parent",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="render an exported telemetry directory"
    )
    trace_parser.add_argument(
        "trace_dir", help="trace directory written by 'run --trace' or 'serve --trace'"
    )
    trace_parser.add_argument(
        "--chrome", default=None, metavar="FILE",
        help="also write the Chrome trace_event JSON view to FILE",
    )
    trace_parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when the directory has no spans or the tree has "
             "orphaned parent links (CI validation)",
    )
    return parser


def _command_list() -> int:
    from repro.runner.registry import all_experiments

    rows = [[spec.name, spec.title, spec.description] for spec in all_experiments()]
    print(format_table(["Experiment", "Title", "Description"], rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.runner.execution import run_experiment
    from repro.runner.resilience import ResiliencePolicy

    if args.trace:
        obs.configure(args.trace)
    target_dir = Path(args.results_dir) if args.results_dir else results_dir()
    try:
        # An explicit CLI policy replaces the experiment's own cell
        # defaults wholesale (policy_for_spec's contract).
        resilience = None
        if args.cell_timeout is not None or args.max_attempts is not None:
            policy_kwargs: dict[str, Any] = {}
            if args.cell_timeout is not None:
                policy_kwargs["timeout"] = args.cell_timeout
            if args.max_attempts is not None:
                policy_kwargs["max_attempts"] = args.max_attempts
            resilience = ResiliencePolicy(**policy_kwargs)
        with obs.trace.span(
            "cli.run", attrs={"experiment": args.experiment, "profile": args.profile}
        ):
            run = run_experiment(
                args.experiment,
                profile=args.profile,
                jobs=args.jobs,
                options=dict(args.options),
                cache_dir=args.cache_dir,
                results_dir=target_dir,
                backend=args.backend,
                resilience=resilience,
                trace_dir=args.trace,
            )
        obs.flush()
    except (KeyError, ValueError) as error:
        # Unknown experiment/profile/option/backend or a bad policy value:
        # a usage error, not a crash.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(run.report_text)
    print(
        f"\n{run.experiment} [{run.profile}] finished in {run.elapsed:.1f}s "
        f"({len(run.outcomes)} cells, jobs={run.jobs})"
    )
    print(resilience_summary(run.resilience))
    telemetry_line = telemetry_summary(run.telemetry)
    if telemetry_line:
        print(telemetry_line)
    if run.cache_stats is not None:
        print(
            f"artifact cache: {run.cache_stats['hits']} hits, "
            f"{run.cache_stats['misses']} misses"
        )
    if run.results_path is not None:
        print(f"results written to {run.results_path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    target_dir = Path(args.results_dir) if args.results_dir else results_dir()
    records = []
    for path in sorted(target_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "experiment" in record and "report" in record:
            records.append((path, record))
    if not records:
        print(f"no saved runs under {target_dir}/ (run 'deterrent run <experiment>' first)")
        return 1

    if args.experiment is None:
        rows = [
            [
                record["experiment"],
                record.get("profile"),
                len(record.get("cells", [])),
                record.get("elapsed_seconds"),
                str(path),
            ]
            for path, record in records
        ]
        print(format_table(["Experiment", "Profile", "Cells", "Elapsed (s)", "File"], rows))
        return 0

    matches = [
        (path, record)
        for path, record in records
        if record["experiment"] == args.experiment
        and (args.profile is None or record.get("profile") == args.profile)
    ]
    if not matches:
        print(f"no saved run for {args.experiment!r} under {target_dir}/")
        return 1
    for _, record in matches:
        print(f"== {record['experiment']} [{record.get('profile')}] ==")
        print(record["report"])
    return 0


def _resolve_cache(args: argparse.Namespace):
    """The cache targeted by a ``cache`` subcommand, or None with a message."""
    from repro.runner.cache import CACHE_DIR_ENV, ArtifactCache, get_default_cache

    if args.cache_dir is not None:
        return ArtifactCache(Path(args.cache_dir))
    cache = get_default_cache()
    if cache is None:
        print(
            "no artifact cache configured (pass --cache-dir or set "
            f"{CACHE_DIR_ENV})"
        )
    return cache


def _command_cache(args: argparse.Namespace) -> int:
    if getattr(args, "cache_command", None) == "prune":
        return _command_cache_prune(args)
    cache = _resolve_cache(args)
    if cache is None:
        return 1
    root = Path(cache.root)
    if not root.exists():
        print(f"cache directory {root} does not exist yet (nothing cached)")
        return 0
    if not root.is_dir():
        print(f"error: cache path {root} is not a directory", file=sys.stderr)
        return 2
    # inventory() is tolerant of concurrent mutation and reports kinds with
    # zero remaining entries (e.g. after a prune) instead of dropping them.
    inventory = cache.inventory()
    if not inventory:
        print(f"cache directory {root} is empty")
        return 0
    rows = [
        [kind, count, f"{size / 1024:.1f} KiB"]
        for kind, (count, size) in sorted(inventory.items())
    ]
    total_entries = sum(count for count, _ in inventory.values())
    total_bytes = sum(size for _, size in inventory.values())
    print(format_table(["Kind", "Entries", "Size"], rows))
    print(f"\n{total_entries} entries, {total_bytes / 1024:.1f} KiB under {root}")
    lifetime = cache.stats_snapshot()["lifetime"]
    if lifetime:
        # Counters flushed into <root>/stats.json by runs, queue workers,
        # and the HTTP service sharing this cache directory.
        print(
            f"lifetime stats: {lifetime.get('hits', 0)} hits, "
            f"{lifetime.get('misses', 0)} misses, "
            f"{lifetime.get('stores', 0)} stores, "
            f"{lifetime.get('corrupt', 0)} corrupt"
        )
    print(
        "entries are content-addressed and only evicted on request; run "
        "'deterrent cache prune'\n(--max-size MIB / --max-age DAYS) to "
        "reclaim space — every entry is recomputable."
    )
    return 0


def _command_cache_prune(args: argparse.Namespace) -> int:
    if args.prune_cache_dir is not None:
        args.cache_dir = args.prune_cache_dir
    cache = _resolve_cache(args)
    if cache is None:
        return 1
    root = Path(cache.root)
    if not root.exists():
        print(f"cache directory {root} does not exist yet (nothing to prune)")
        return 0
    if not root.is_dir():
        print(f"error: cache path {root} is not a directory", file=sys.stderr)
        return 2
    if args.kind:
        # Kinds are an open set (any store() caller can mint one), so a name
        # without a directory is a legitimate empty no-op — but say so, in
        # case it is a typo for one of the populated kinds.
        known = sorted(cache.inventory())
        missing = sorted(set(args.kind) - set(known))
        if missing:
            print(
                f"warning: no entries for kind(s): {', '.join(missing)}"
                + (f" (populated: {', '.join(known)})" if known else ""),
                file=sys.stderr,
            )
    max_bytes = None
    if args.max_size is not None:
        if args.max_size < 0:
            print("error: --max-size must be >= 0", file=sys.stderr)
            return 2
        max_bytes = int(args.max_size * 1024 * 1024)
    max_age_seconds = None
    if args.max_age is not None:
        if args.max_age < 0:
            print("error: --max-age must be >= 0", file=sys.stderr)
            return 2
        max_age_seconds = args.max_age * 86400.0
    report = cache.prune(
        max_bytes=max_bytes,
        max_age_seconds=max_age_seconds,
        kinds=args.kind,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {report.removed_entries} entries "
        f"({report.removed_bytes / 1024:.1f} KiB), kept {report.kept_entries} "
        f"({report.kept_bytes / 1024:.1f} KiB) under {root}"
    )
    for kind, count in sorted(report.removed_by_kind.items()):
        print(f"  {kind}: {verb} {count}")
    if report.removed_debris:
        print(f"  debris: {verb} {report.removed_debris} stale temp/lock file(s)")
    if max_bytes is None and max_age_seconds is None:
        swept = "would be swept" if args.dry_run else "was swept"
        print(
            "no --max-size or --max-age given: entries were kept, only stale "
            f"temp/lock debris {swept}"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service.queue import DEFAULT_LEASE_SECONDS
    from repro.service.server import serve

    return serve(
        args.queue_dir,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        lease_seconds=(
            args.lease_seconds if args.lease_seconds is not None else DEFAULT_LEASE_SECONDS
        ),
        verbose=args.verbose,
        trace_dir=args.trace,
    )


def _command_submit(args: argparse.Namespace) -> int:
    from repro.service.server import http_json

    if args.bench is not None:
        try:
            bench_text = Path(args.bench).read_text()
        except OSError as error:
            print(f"error: cannot read {args.bench}: {error}", file=sys.stderr)
            return 2
    else:
        from repro.circuits.bench_io import dumps_bench
        from repro.circuits.library import load_benchmark

        try:
            bench_text = dumps_bench(load_benchmark(args.design, combinational_view=False))
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    payload = {
        "experiment": args.experiment,
        "profile": args.profile,
        "options": dict(args.options),
        "bench": bench_text,
    }
    base = args.url.rstrip("/")
    try:
        status, body = http_json(f"{base}/jobs", payload)
    except OSError as error:
        print(f"error: cannot reach service at {base}: {error}", file=sys.stderr)
        return 1
    if status >= 400:
        print(f"error: service rejected the job: {body.get('error')}", file=sys.stderr)
        return 2 if status == 400 else 1
    job_id = body["job_id"]
    print(f"job {job_id}: {body.get('status')}" + (" (cached)" if body.get("cached") else ""))
    if body.get("status") == "done":
        _print_job_result(body)
        return 0
    if args.no_wait:
        print(f"poll with: GET {base}/jobs/{job_id}")
        return 0
    deadline = time.time() + args.timeout
    while time.time() < deadline:
        time.sleep(args.poll_interval)
        try:
            status, body = http_json(f"{base}/jobs/{job_id}")
        except OSError as error:
            print(f"error: lost the service at {base}: {error}", file=sys.stderr)
            return 1
        state = body.get("status")
        if state == "done":
            _print_job_result(body)
            return 0
        if state == "failed":
            error = body.get("error") or {}
            print(
                f"job {job_id} failed: {error.get('type', 'Error')}: "
                f"{error.get('message', 'unknown error')}",
                file=sys.stderr,
            )
            return 1
    print(f"error: job {job_id} still {body.get('status')!r} after {args.timeout}s", file=sys.stderr)
    return 1


def _print_job_result(body: dict[str, Any]) -> None:
    record = body.get("result") or {}
    report = record.get("report")
    if report:
        print(report)
    test_sets = record.get("test_sets")
    if test_sets:
        for entry in test_sets:
            count = len(entry.get("sequences", entry.get("patterns", [])))
            print(f"test set [{entry.get('cell')}]: {count} {entry.get('kind', 'vectors')}")
    if record.get("elapsed_seconds") is not None:
        print(f"job ran in {record['elapsed_seconds']}s on design {record.get('design')}")


def _command_queue_worker(args: argparse.Namespace) -> int:
    from repro.service.queue import (
        DEFAULT_LEASE_SECONDS,
        DurableQueue,
        WorkerOptions,
        worker_loop,
    )

    queue = DurableQueue(
        args.queue_dir,
        lease_seconds=(
            args.lease_seconds if args.lease_seconds is not None else DEFAULT_LEASE_SECONDS
        ),
    )
    options = WorkerOptions(
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        heartbeat=not args.no_heartbeat,
        heartbeat_interval=args.heartbeat_interval,
        max_task_seconds=args.max_task_seconds,
        max_idle_seconds=args.max_idle_seconds,
        max_jobs=args.max_jobs,
        cache_dir=args.cache_dir,
        parent_pid=args.parent_pid,
    )
    try:
        done = worker_loop(queue, options)
    except KeyboardInterrupt:
        return 0
    print(f"queue worker exiting after {done} job(s)")
    return 0


def _format_duration(seconds: object) -> str:
    if not isinstance(seconds, (int, float)):
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    trace_dir = Path(args.trace_dir)
    if not trace_dir.is_dir():
        print(f"error: {trace_dir} is not a directory", file=sys.stderr)
        return 2
    spans = obs_trace.load_spans(trace_dir)
    if not spans:
        print(f"no spans under {trace_dir}")
        return 1 if args.check else 0
    roots, children = obs_trace.build_tree(spans)
    orphans = obs_trace.orphan_spans(spans)

    interesting = ("cell", "task", "attempt", "backend", "label", "experiment",
                   "profile", "job_id", "worker", "sequences", "failure")

    def render(record: dict, depth: int) -> None:
        status = record.get("status", "ok")
        flag = "" if status == "ok" else f"  [{status}]"
        attrs = record.get("attrs") or {}
        shown = ", ".join(
            f"{key}={attrs[key]}" for key in interesting if key in attrs
        )
        attr_text = f"  ({shown})" if shown else ""
        print(
            f"{'  ' * depth}{record.get('name', '?')}  "
            f"{_format_duration(record.get('dur_s'))}{flag}{attr_text}"
        )
        for child in children.get(record["span_id"], []):
            render(child, depth + 1)

    traces = {record.get("trace_id") for record in spans}
    print(
        f"{len(spans)} spans, {len(traces)} trace(s), "
        f"{len(roots)} root(s) under {trace_dir}"
    )
    for root in roots:
        render(root, 0)
    if orphans:
        print(f"\nwarning: {len(orphans)} span(s) reference a parent that was "
              "never exported (worker died before flushing?)")

    snapshot = obs_metrics.merged_snapshot(trace_dir)
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    if counters or gauges:
        print("\ninstruments (merged across workers):")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]:g}")
        for name in sorted(gauges):
            print(f"  {name} = {gauges[name]:g} (max)")
    profiles = obs_metrics.percentile_summary(snapshot)
    if profiles:
        rows = [
            [
                name,
                int(summary["count"]),
                _format_duration(summary["p50"]),
                _format_duration(summary["p90"]),
                _format_duration(summary["p99"]),
                _format_duration(summary["total"]),
            ]
            for name, summary in sorted(profiles.items())
        ]
        print("\nprofiles:")
        print(format_table(["Path", "Samples", "p50", "p90", "p99", "Total"], rows))

    if args.chrome:
        chrome_path = Path(args.chrome)
        chrome_path.parent.mkdir(parents=True, exist_ok=True)
        chrome_path.write_text(json.dumps(obs_trace.chrome_trace(spans)))
        print(f"\nchrome trace written to {chrome_path} (open in ui.perfetto.dev)")

    if args.check and orphans:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "report":
            return _command_report(args)
        if args.command == "cache":
            return _command_cache(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "submit":
            return _command_submit(args)
        if args.command == "queue-worker":
            return _command_queue_worker(args)
        if args.command == "trace":
            return _command_trace(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
