"""Unified command-line interface: ``python -m repro`` / ``deterrent``.

Subcommands:

- ``deterrent list`` — show every registered experiment.
- ``deterrent run <experiment> [--profile tiny|quick|full] [--jobs N]
  [--cache-dir DIR] [--results-dir DIR] [--set key=value ...]`` — execute an
  experiment through the runner and print its paper-vs-measured report.
- ``deterrent report [<experiment>] [--results-dir DIR]`` — list saved runs,
  or re-print the stored report of one experiment.
- ``deterrent cache [--cache-dir DIR]`` — inspect the artifact cache
  (per-kind entry counts and sizes).  Entries are content-addressed and
  never evicted, so the directory grows without bound; prune by deleting it
  (a ``deterrent cache prune`` with real GC is a ROADMAP item).

Every run writes structured artifacts under ``--results-dir`` (default
``results/``): a JSONL stream with one record per grid cell, plus a final
JSON run record embedding the rendered report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.experiments.reporting import format_table, results_dir


def _parse_option(text: str) -> tuple[str, Any]:
    """Parse one ``--set key=value`` pair (value decoded as JSON if possible)."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r} (e.g. --set design=c6288_like)"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """The ``deterrent`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="deterrent",
        description="DETERRENT reproduction: experiment registry, runner, and cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment through the runner")
    run_parser.add_argument("experiment", help="registered experiment name (see 'list')")
    run_parser.add_argument(
        "--profile", default="quick", help="execution profile: tiny, quick, or full"
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for grid cells (1 = serial, 0 = all CPUs)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory (also honoured via DETERRENT_CACHE_DIR)",
    )
    run_parser.add_argument(
        "--results-dir", default=None,
        help="directory for JSON/JSONL run artifacts (default: results/)",
    )
    run_parser.add_argument(
        "--set", dest="options", action="append", default=[], type=_parse_option,
        metavar="KEY=VALUE", help="experiment option override (repeatable)",
    )

    report_parser = subparsers.add_parser("report", help="show saved run reports")
    report_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment whose stored report to print (omit to list saved runs)",
    )
    report_parser.add_argument(
        "--profile", default=None, help="restrict to one profile's saved run"
    )
    report_parser.add_argument(
        "--results-dir", default=None, help="directory holding run artifacts"
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect the artifact cache (entries, sizes, growth caveat)"
    )
    cache_parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory to inspect (default: DETERRENT_CACHE_DIR)",
    )
    return parser


def _command_list() -> int:
    from repro.runner.registry import all_experiments

    rows = [[spec.name, spec.title, spec.description] for spec in all_experiments()]
    print(format_table(["Experiment", "Title", "Description"], rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.runner.execution import run_experiment

    target_dir = Path(args.results_dir) if args.results_dir else results_dir()
    try:
        run = run_experiment(
            args.experiment,
            profile=args.profile,
            jobs=args.jobs,
            options=dict(args.options),
            cache_dir=args.cache_dir,
            results_dir=target_dir,
        )
    except (KeyError, ValueError) as error:
        # Unknown experiment/profile/option: a usage error, not a crash.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(run.report_text)
    print(
        f"\n{run.experiment} [{run.profile}] finished in {run.elapsed:.1f}s "
        f"({len(run.outcomes)} cells, jobs={run.jobs})"
    )
    if run.cache_stats is not None:
        print(
            f"artifact cache: {run.cache_stats['hits']} hits, "
            f"{run.cache_stats['misses']} misses"
        )
    if run.results_path is not None:
        print(f"results written to {run.results_path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    target_dir = Path(args.results_dir) if args.results_dir else results_dir()
    records = []
    for path in sorted(target_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "experiment" in record and "report" in record:
            records.append((path, record))
    if not records:
        print(f"no saved runs under {target_dir}/ (run 'deterrent run <experiment>' first)")
        return 1

    if args.experiment is None:
        rows = [
            [
                record["experiment"],
                record.get("profile"),
                len(record.get("cells", [])),
                record.get("elapsed_seconds"),
                str(path),
            ]
            for path, record in records
        ]
        print(format_table(["Experiment", "Profile", "Cells", "Elapsed (s)", "File"], rows))
        return 0

    matches = [
        (path, record)
        for path, record in records
        if record["experiment"] == args.experiment
        and (args.profile is None or record.get("profile") == args.profile)
    ]
    if not matches:
        print(f"no saved run for {args.experiment!r} under {target_dir}/")
        return 1
    for _, record in matches:
        print(f"== {record['experiment']} [{record.get('profile')}] ==")
        print(record["report"])
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from repro.runner.cache import CACHE_DIR_ENV, ArtifactCache, get_default_cache

    if args.cache_dir is not None:
        cache = ArtifactCache(Path(args.cache_dir))
    else:
        cache = get_default_cache()
    if cache is None:
        print(
            "no artifact cache configured (pass --cache-dir or set "
            f"{CACHE_DIR_ENV})"
        )
        return 1
    root = Path(cache.root)
    if not root.is_dir():
        print(f"cache directory {root} does not exist yet (nothing cached)")
        return 0
    rows = []
    total_entries = 0
    total_bytes = 0
    for kind_dir in sorted(path for path in root.iterdir() if path.is_dir()):
        entries = list(kind_dir.glob("*.pkl"))
        size = sum(entry.stat().st_size for entry in entries)
        rows.append([kind_dir.name, len(entries), f"{size / 1024:.1f} KiB"])
        total_entries += len(entries)
        total_bytes += size
    if not rows:
        print(f"cache directory {root} is empty")
        return 0
    print(format_table(["Kind", "Entries", "Size"], rows))
    print(f"\n{total_entries} entries, {total_bytes / 1024:.1f} KiB under {root}")
    print(
        "entries are content-addressed and never evicted; the directory grows "
        "without bound.\nDelete it (or individual <kind>/ subdirectories) to "
        "reclaim space — every entry\nis recomputable."
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "report":
            return _command_report(args)
        if args.command == "cache":
            return _command_cache(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
