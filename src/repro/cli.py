"""Unified command-line interface: ``python -m repro`` / ``deterrent``.

Subcommands:

- ``deterrent list`` — show every registered experiment.
- ``deterrent run <experiment> [--profile tiny|quick|full] [--jobs N]
  [--backend serial|process|thread] [--cell-timeout S] [--max-attempts N]
  [--cache-dir DIR] [--results-dir DIR] [--set key=value ...]`` — execute an
  experiment through the runner and print its paper-vs-measured report.
- ``deterrent report [<experiment>] [--results-dir DIR]`` — list saved runs,
  or re-print the stored report of one experiment.
- ``deterrent cache [--cache-dir DIR]`` — inspect the artifact cache
  (per-kind entry counts and sizes, zero-entry kinds included).
- ``deterrent cache prune [--max-size MIB] [--max-age DAYS] [--kind K]
  [--dry-run]`` — size/age-based eviction (oldest entries first; every
  entry is recomputable) plus a sweep of stale temp/lock debris.

Every run writes structured artifacts under ``--results-dir`` (default
``results/``): a JSONL stream with one record per grid cell, plus a final
JSON run record embedding the rendered report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.experiments.reporting import format_table, resilience_summary, results_dir
from repro.runner.backends import BACKEND_NAMES


def _parse_option(text: str) -> tuple[str, Any]:
    """Parse one ``--set key=value`` pair (value decoded as JSON if possible)."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r} (e.g. --set design=c6288_like)"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """The ``deterrent`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="deterrent",
        description="DETERRENT reproduction: experiment registry, runner, and cache.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment through the runner")
    run_parser.add_argument("experiment", help="registered experiment name (see 'list')")
    run_parser.add_argument(
        "--profile", default="quick", help="execution profile: tiny, quick, or full"
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="workers for grid cells (1 = serial, 0 = all CPUs)",
    )
    run_parser.add_argument(
        "--backend", default=None, choices=BACKEND_NAMES,
        help="execution backend (default: serial for --jobs 1, process otherwise)",
    )
    run_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock limit for one grid cell on pooled "
             "backends (default: the experiment's own, else unlimited)",
    )
    run_parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="attempts per grid cell before degrading to the serial backend "
             "(default: the experiment's own, else 3)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache directory (also honoured via DETERRENT_CACHE_DIR)",
    )
    run_parser.add_argument(
        "--results-dir", default=None,
        help="directory for JSON/JSONL run artifacts (default: results/)",
    )
    run_parser.add_argument(
        "--set", dest="options", action="append", default=[], type=_parse_option,
        metavar="KEY=VALUE", help="experiment option override (repeatable)",
    )

    report_parser = subparsers.add_parser("report", help="show saved run reports")
    report_parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment whose stored report to print (omit to list saved runs)",
    )
    report_parser.add_argument(
        "--profile", default=None, help="restrict to one profile's saved run"
    )
    report_parser.add_argument(
        "--results-dir", default=None, help="directory holding run artifacts"
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune the artifact cache"
    )
    cache_parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory to inspect (default: DETERRENT_CACHE_DIR)",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command")
    prune_parser = cache_sub.add_parser(
        "prune", help="evict cache entries by size and/or age (oldest first)"
    )
    # Distinct dest: a subparser re-applies its own defaults over the parent
    # namespace, so sharing dest="cache_dir" would silently discard a
    # --cache-dir given before the subcommand; the two are merged in
    # _command_cache_prune.
    prune_parser.add_argument(
        "--cache-dir", dest="prune_cache_dir", default=None,
        help="cache directory to prune (default: DETERRENT_CACHE_DIR)",
    )
    prune_parser.add_argument(
        "--max-size", type=float, default=None, metavar="MIB",
        help="evict oldest entries until the cache (or, with --kind, the "
             "selected kinds' subtotal) fits in MIB mebibytes",
    )
    prune_parser.add_argument(
        "--max-age", type=float, default=None, metavar="DAYS",
        help="evict entries not modified within DAYS days",
    )
    prune_parser.add_argument(
        "--kind", action="append", default=None, metavar="NAME",
        help="restrict eviction (and the --max-size budget) to one artifact "
             "kind (repeatable)",
    )
    prune_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting anything",
    )
    return parser


def _command_list() -> int:
    from repro.runner.registry import all_experiments

    rows = [[spec.name, spec.title, spec.description] for spec in all_experiments()]
    print(format_table(["Experiment", "Title", "Description"], rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.runner.execution import run_experiment
    from repro.runner.resilience import ResiliencePolicy

    target_dir = Path(args.results_dir) if args.results_dir else results_dir()
    try:
        # An explicit CLI policy replaces the experiment's own cell
        # defaults wholesale (policy_for_spec's contract).
        resilience = None
        if args.cell_timeout is not None or args.max_attempts is not None:
            policy_kwargs: dict[str, Any] = {}
            if args.cell_timeout is not None:
                policy_kwargs["timeout"] = args.cell_timeout
            if args.max_attempts is not None:
                policy_kwargs["max_attempts"] = args.max_attempts
            resilience = ResiliencePolicy(**policy_kwargs)
        run = run_experiment(
            args.experiment,
            profile=args.profile,
            jobs=args.jobs,
            options=dict(args.options),
            cache_dir=args.cache_dir,
            results_dir=target_dir,
            backend=args.backend,
            resilience=resilience,
        )
    except (KeyError, ValueError) as error:
        # Unknown experiment/profile/option/backend or a bad policy value:
        # a usage error, not a crash.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(run.report_text)
    print(
        f"\n{run.experiment} [{run.profile}] finished in {run.elapsed:.1f}s "
        f"({len(run.outcomes)} cells, jobs={run.jobs})"
    )
    print(resilience_summary(run.resilience))
    if run.cache_stats is not None:
        print(
            f"artifact cache: {run.cache_stats['hits']} hits, "
            f"{run.cache_stats['misses']} misses"
        )
    if run.results_path is not None:
        print(f"results written to {run.results_path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    target_dir = Path(args.results_dir) if args.results_dir else results_dir()
    records = []
    for path in sorted(target_dir.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and "experiment" in record and "report" in record:
            records.append((path, record))
    if not records:
        print(f"no saved runs under {target_dir}/ (run 'deterrent run <experiment>' first)")
        return 1

    if args.experiment is None:
        rows = [
            [
                record["experiment"],
                record.get("profile"),
                len(record.get("cells", [])),
                record.get("elapsed_seconds"),
                str(path),
            ]
            for path, record in records
        ]
        print(format_table(["Experiment", "Profile", "Cells", "Elapsed (s)", "File"], rows))
        return 0

    matches = [
        (path, record)
        for path, record in records
        if record["experiment"] == args.experiment
        and (args.profile is None or record.get("profile") == args.profile)
    ]
    if not matches:
        print(f"no saved run for {args.experiment!r} under {target_dir}/")
        return 1
    for _, record in matches:
        print(f"== {record['experiment']} [{record.get('profile')}] ==")
        print(record["report"])
    return 0


def _resolve_cache(args: argparse.Namespace):
    """The cache targeted by a ``cache`` subcommand, or None with a message."""
    from repro.runner.cache import CACHE_DIR_ENV, ArtifactCache, get_default_cache

    if args.cache_dir is not None:
        return ArtifactCache(Path(args.cache_dir))
    cache = get_default_cache()
    if cache is None:
        print(
            "no artifact cache configured (pass --cache-dir or set "
            f"{CACHE_DIR_ENV})"
        )
    return cache


def _command_cache(args: argparse.Namespace) -> int:
    if getattr(args, "cache_command", None) == "prune":
        return _command_cache_prune(args)
    cache = _resolve_cache(args)
    if cache is None:
        return 1
    root = Path(cache.root)
    if not root.exists():
        print(f"cache directory {root} does not exist yet (nothing cached)")
        return 0
    if not root.is_dir():
        print(f"error: cache path {root} is not a directory", file=sys.stderr)
        return 2
    # inventory() is tolerant of concurrent mutation and reports kinds with
    # zero remaining entries (e.g. after a prune) instead of dropping them.
    inventory = cache.inventory()
    if not inventory:
        print(f"cache directory {root} is empty")
        return 0
    rows = [
        [kind, count, f"{size / 1024:.1f} KiB"]
        for kind, (count, size) in sorted(inventory.items())
    ]
    total_entries = sum(count for count, _ in inventory.values())
    total_bytes = sum(size for _, size in inventory.values())
    print(format_table(["Kind", "Entries", "Size"], rows))
    print(f"\n{total_entries} entries, {total_bytes / 1024:.1f} KiB under {root}")
    print(
        "entries are content-addressed and only evicted on request; run "
        "'deterrent cache prune'\n(--max-size MIB / --max-age DAYS) to "
        "reclaim space — every entry is recomputable."
    )
    return 0


def _command_cache_prune(args: argparse.Namespace) -> int:
    if args.prune_cache_dir is not None:
        args.cache_dir = args.prune_cache_dir
    cache = _resolve_cache(args)
    if cache is None:
        return 1
    root = Path(cache.root)
    if not root.exists():
        print(f"cache directory {root} does not exist yet (nothing to prune)")
        return 0
    if not root.is_dir():
        print(f"error: cache path {root} is not a directory", file=sys.stderr)
        return 2
    if args.kind:
        # Kinds are an open set (any store() caller can mint one), so a name
        # without a directory is a legitimate empty no-op — but say so, in
        # case it is a typo for one of the populated kinds.
        known = sorted(cache.inventory())
        missing = sorted(set(args.kind) - set(known))
        if missing:
            print(
                f"warning: no entries for kind(s): {', '.join(missing)}"
                + (f" (populated: {', '.join(known)})" if known else ""),
                file=sys.stderr,
            )
    max_bytes = None
    if args.max_size is not None:
        if args.max_size < 0:
            print("error: --max-size must be >= 0", file=sys.stderr)
            return 2
        max_bytes = int(args.max_size * 1024 * 1024)
    max_age_seconds = None
    if args.max_age is not None:
        if args.max_age < 0:
            print("error: --max-age must be >= 0", file=sys.stderr)
            return 2
        max_age_seconds = args.max_age * 86400.0
    report = cache.prune(
        max_bytes=max_bytes,
        max_age_seconds=max_age_seconds,
        kinds=args.kind,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {report.removed_entries} entries "
        f"({report.removed_bytes / 1024:.1f} KiB), kept {report.kept_entries} "
        f"({report.kept_bytes / 1024:.1f} KiB) under {root}"
    )
    for kind, count in sorted(report.removed_by_kind.items()):
        print(f"  {kind}: {verb} {count}")
    if report.removed_debris:
        print(f"  debris: {verb} {report.removed_debris} stale temp/lock file(s)")
    if max_bytes is None and max_age_seconds is None:
        swept = "would be swept" if args.dry_run else "was swept"
        print(
            "no --max-size or --max-age given: entries were kept, only stale "
            f"temp/lock debris {swept}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "report":
            return _command_report(args)
        if args.command == "cache":
            return _command_cache(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
