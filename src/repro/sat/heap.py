"""Indexed max-heap over variable activities (the EVSIDS branch order).

The solver's branch heuristic needs three operations to be fast: *pop the
unassigned variable of maximum activity*, *bump one variable's activity*, and
*re-insert a variable after backtracking*.  A plain ``dict``/linear scan makes
the first O(num_vars) per decision — the dominant cost on deep time-frame
unrolls — so :class:`ActivityHeap` keeps variables in a binary max-heap with
an inverse position index, giving O(log n) for all three.

Deletion is **lazy** in the MiniSat style: assigning a variable does not
remove it from the heap; the solver simply discards assigned variables as it
pops, and :meth:`push` re-inserts on backtrack (a no-op for variables still
in the heap).  Activities live here, not in the solver, so a bump can restore
the heap order in the same O(log n) sift.

All comparisons are on activity alone; equal activities keep a deterministic
(insertion/sift) order, which is what makes solver runs — and therefore
SAT-guided witness sets — bit-reproducible for a fixed seed.
"""

from __future__ import annotations


class ActivityHeap:
    """Binary max-heap of variables keyed by activity, with position index."""

    __slots__ = ("_heap", "_pos", "_act")

    def __init__(self, num_vars: int = 0) -> None:
        # Index 0 of ``_act``/``_pos`` is unused (variables are 1-based).
        self._act: list[float] = [0.0] * (num_vars + 1)
        self._heap: list[int] = list(range(1, num_vars + 1))
        self._pos: list[int] = [-1] + list(range(num_vars))

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, variable: int) -> bool:
        return 0 < variable < len(self._pos) and self._pos[variable] >= 0

    @property
    def num_vars(self) -> int:
        """Highest variable the heap knows about."""
        return len(self._act) - 1

    def activity(self, variable: int) -> float:
        """Current activity of ``variable``."""
        return self._act[variable]

    # ------------------------------------------------------------------
    # Growth and mutation
    # ------------------------------------------------------------------
    def grow(self, num_vars: int) -> None:
        """Extend the variable space to ``num_vars``, inserting new variables.

        Fresh variables start at activity 0.0, which is <= every existing
        activity, so appending them at the leaves preserves the heap order.
        """
        while self.num_vars < num_vars:
            variable = len(self._act)
            self._act.append(0.0)
            self._pos.append(len(self._heap))
            self._heap.append(variable)

    def push(self, variable: int) -> None:
        """Insert ``variable`` if absent (no-op when already in the heap)."""
        if self._pos[variable] >= 0:
            return
        position = len(self._heap)
        self._heap.append(variable)
        self._pos[variable] = position
        self._sift_up(position)

    def push_many(self, variables) -> None:
        """Bulk :meth:`push`: re-insert every listed variable that is absent.

        Negative entries are accepted and treated as literals (the sign is
        ignored), so the solver can hand a backtracked trail slice straight
        over without building an intermediate variable list.  One inlined
        sift-up per insertion — this is the backtracking hot path.
        """
        heap, pos, act = self._heap, self._pos, self._act
        for variable in variables:
            if variable < 0:
                variable = -variable
            if pos[variable] >= 0:
                continue
            position = len(heap)
            heap.append(variable)
            activity = act[variable]
            while position > 0:
                parent_position = (position - 1) >> 1
                parent = heap[parent_position]
                if act[parent] >= activity:
                    break
                heap[position] = parent
                pos[parent] = position
                position = parent_position
            heap[position] = variable
            pos[variable] = position

    def pop(self) -> int | None:
        """Remove and return the maximum-activity variable (None when empty)."""
        heap = self._heap
        if not heap:
            return None
        top = heap[0]
        self._pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top

    def bump(self, variable: int, increment: float) -> float:
        """Add ``increment`` to the activity; restore heap order; return it."""
        activity = self._act[variable] + increment
        self._act[variable] = activity
        position = self._pos[variable]
        if position > 0:
            self._sift_up(position)
        return activity

    def rescale(self, factor: float) -> None:
        """Multiply every activity by ``factor`` (order-preserving)."""
        self._act = [activity * factor for activity in self._act]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sift_up(self, position: int) -> None:
        heap, pos, act = self._heap, self._pos, self._act
        variable = heap[position]
        activity = act[variable]
        while position > 0:
            parent_position = (position - 1) >> 1
            parent = heap[parent_position]
            if act[parent] >= activity:
                break
            heap[position] = parent
            pos[parent] = position
            position = parent_position
        heap[position] = variable
        pos[variable] = position

    def _sift_down(self, position: int) -> None:
        heap, pos, act = self._heap, self._pos, self._act
        size = len(heap)
        variable = heap[position]
        activity = act[variable]
        while True:
            child_position = 2 * position + 1
            if child_position >= size:
                break
            right = child_position + 1
            if right < size and act[heap[right]] > act[heap[child_position]]:
                child_position = right
            child = heap[child_position]
            if activity >= act[child]:
                break
            heap[position] = child
            pos[child] = position
            position = child_position
        heap[position] = variable
        pos[variable] = position

    def check_invariants(self) -> None:
        """Raise AssertionError unless heap order and position index agree.

        Test hook: O(n), called by the unit tests after random operation
        sequences — never on the solving hot path.
        """
        heap, pos, act = self._heap, self._pos, self._act
        for position, variable in enumerate(heap):
            assert pos[variable] == position, (
                f"position index broken: var {variable} at {position}, "
                f"index says {pos[variable]}"
            )
            if position > 0:
                parent = heap[(position - 1) >> 1]
                assert act[parent] >= act[variable], (
                    f"heap order broken: parent {parent} ({act[parent]}) < "
                    f"child {variable} ({act[variable]})"
                )
        in_heap = sum(1 for position in pos if position >= 0)
        assert in_heap == len(heap), "position index counts a phantom entry"


__all__ = ["ActivityHeap"]

