"""High-level SAT justification interface for circuits.

:class:`Justifier` answers the two questions the DETERRENT flow needs:

1. *Compatibility*: can a given set of (net, value) requirements be satisfied
   simultaneously by some input pattern?  (Used for the pairwise compatibility
   dictionary, the environment's exact set checks, and Trojan trigger
   validation.)
2. *Witness generation*: produce one such input pattern.  (Used to turn the
   agent's maximal compatible sets into actual test patterns.)

Both are answered incrementally on a single circuit encoding using solver
assumptions, which is what makes the offline compatibility precomputation of
the paper (§3.3) affordable here without 64-process parallelism.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import CdclSolver, SolverConfig, SolverStats


class Justifier:
    """Incremental SAT justification engine for one combinational netlist."""

    def __init__(
        self,
        netlist: Netlist,
        preferred_values: dict[str, int] | None = None,
        config: SolverConfig | None = None,
    ) -> None:
        self.netlist = netlist
        self.encoder = CircuitEncoder(netlist)
        self.config = config or SolverConfig()
        self._solver = CdclSolver(self.encoder.cnf, config=self.config)
        self.num_queries = 0
        self._preferred_phases: dict[int, bool] = {}
        self.preferred_values: dict[str, int] = {}
        if preferred_values:
            self.set_preferred_values(preferred_values)

    def set_preferred_values(self, preferred_values: dict[str, int]) -> None:
        """Bias SAT witnesses toward the given net values when unconstrained.

        The DETERRENT pipeline registers the rare value of every rare net
        here, so a pattern generated for one compatible set also tends to
        activate rare nets outside the set — the same effect the paper gets
        from PicoSAT's default negative-phase heuristic on its encodings.
        """
        self._preferred_phases = {
            self.encoder.variable(net): bool(value) for net, value in preferred_values.items()
        }
        # Keep the net-level mapping so worker processes can replicate the
        # bias on their own solver stacks (see runner/parallel.py).
        self.preferred_values = {net: int(value) for net, value in preferred_values.items()}

    def stats(self) -> SolverStats:
        """Cumulative solver statistics across every query so far."""
        return self._solver.stats()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_satisfiable(self, requirements: dict[str, int]) -> bool:
        """True if some input pattern drives every net to its required value."""
        self.num_queries += 1
        assumptions = self.encoder.assumptions_for(requirements)
        return self._solver.solve(assumptions).satisfiable

    def witness(self, requirements: dict[str, int]) -> dict[str, int] | None:
        """Return an input pattern satisfying ``requirements``, or None if UNSAT.

        The returned mapping assigns a 0/1 value to every controllable net
        (primary inputs, plus pseudo-primary inputs after scan conversion).
        """
        self.num_queries += 1
        if self._preferred_phases:
            self._solver.set_phases(self._preferred_phases)
        assumptions = self.encoder.assumptions_for(requirements)
        result = self._solver.solve(assumptions)
        if not result.satisfiable:
            return None
        assert result.model is not None
        return self.encoder.decode_inputs(result.model)

    def are_compatible(self, requirements_a: dict[str, int], requirements_b: dict[str, int]) -> bool:
        """True if the union of two requirement sets is simultaneously satisfiable.

        Conflicting requirements on the same net short-circuit to False without
        a solver call.
        """
        merged = dict(requirements_a)
        for net, value in requirements_b.items():
            if merged.get(net, value) != value:
                return False
            merged[net] = value
        return self.is_satisfiable(merged)


def greedy_maximal_subset(items, accumulated_satisfiable):
    """Greedily keep items whose accumulated set stays satisfiable.

    The single repair policy shared by every witness path: items are scanned
    in the given order (callers pass them rarest-first) and item ``i`` is
    kept iff ``accumulated_satisfiable(kept + [i])`` holds.  The predicate
    receives the full candidate list each time, so callers decide how a
    candidate set maps to a SAT query (requirement dict, temporal trigger,
    ...), and the kept order — hence the query sequence — is identical
    across the serial and sharded paths.
    """
    kept: list = []
    for item in items:
        if accumulated_satisfiable(kept + [item]):
            kept.append(item)
    return kept


__all__ = ["Justifier", "greedy_maximal_subset"]
