"""Tseitin encoding of gate-level netlists into CNF.

Every net in the combinational netlist maps to one CNF variable; each gate
contributes the standard Tseitin clauses constraining its output variable to
equal the gate function of its input variables.  The resulting CNF is
equisatisfiable with the circuit and, crucially for DETERRENT, a model of the
CNF directly gives an input pattern (read off the variables of the primary /
pseudo-primary inputs).
"""

from __future__ import annotations

from repro.circuits.gates import Gate, GateType
from repro.circuits.netlist import Netlist
from repro.sat.cnf import CNF, Literal


class CircuitEncoder:
    """Builds and caches the CNF encoding of a combinational netlist."""

    def __init__(self, netlist: Netlist) -> None:
        if netlist.is_sequential:
            raise ValueError(
                "CircuitEncoder requires a combinational netlist; apply full-scan "
                "conversion first (repro.circuits.scan.ensure_combinational)"
            )
        self.netlist = netlist
        self._cnf = CNF()
        self._var_of_net: dict[str, int] = {}
        self._encode()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def cnf(self) -> CNF:
        """The circuit CNF (do not mutate; copy if constraints must be added)."""
        return self._cnf

    def variable(self, net: str) -> int:
        """CNF variable of ``net``."""
        try:
            return self._var_of_net[net]
        except KeyError:
            raise KeyError(f"net {net!r} is not part of the encoded netlist") from None

    def literal(self, net: str, value: int) -> Literal:
        """Literal asserting ``net`` equals ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value}")
        variable = self.variable(net)
        return variable if value == 1 else -variable

    def assumptions_for(self, assignment: dict[str, int]) -> list[Literal]:
        """Assumption literals for a net-name -> value mapping."""
        return [self.literal(net, value) for net, value in assignment.items()]

    def decode_inputs(self, model: dict[int, bool]) -> dict[str, int]:
        """Extract the input-pattern part of a SAT model."""
        return {
            net: int(model.get(self._var_of_net[net], False))
            for net in self.netlist.combinational_sources()
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _encode(self) -> None:
        for net in self.netlist.combinational_sources():
            self._var_of_net[net] = self._cnf.new_var()
        for gate in self.netlist.topological_gates():
            self._var_of_net[gate.output] = self._cnf.new_var()
        for gate in self.netlist.topological_gates():
            self._encode_gate(gate)

    def _encode_gate(self, gate: Gate) -> None:
        output = self._var_of_net[gate.output]
        inputs = [self._var_of_net[net] for net in gate.inputs]
        gate_type = gate.gate_type
        if gate_type in (GateType.AND, GateType.NAND):
            self._encode_and(output, inputs, invert=gate_type is GateType.NAND)
        elif gate_type in (GateType.OR, GateType.NOR):
            self._encode_or(output, inputs, invert=gate_type is GateType.NOR)
        elif gate_type in (GateType.XOR, GateType.XNOR):
            self._encode_xor(output, inputs, invert=gate_type is GateType.XNOR)
        elif gate_type is GateType.NOT:
            self._cnf.add_clause([output, inputs[0]])
            self._cnf.add_clause([-output, -inputs[0]])
        elif gate_type is GateType.BUF:
            self._cnf.add_clause([-output, inputs[0]])
            self._cnf.add_clause([output, -inputs[0]])
        else:  # pragma: no cover - all gate types handled
            raise ValueError(f"unknown gate type {gate_type!r}")

    def _encode_and(self, output: int, inputs: list[int], invert: bool) -> None:
        out_lit = -output if invert else output
        # output -> every input
        for literal in inputs:
            self._cnf.add_clause([-out_lit, literal])
        # all inputs -> output
        self._cnf.add_clause([out_lit] + [-literal for literal in inputs])

    def _encode_or(self, output: int, inputs: list[int], invert: bool) -> None:
        out_lit = -output if invert else output
        for literal in inputs:
            self._cnf.add_clause([out_lit, -literal])
        self._cnf.add_clause([-out_lit] + list(inputs))

    def _encode_xor(self, output: int, inputs: list[int], invert: bool) -> None:
        # Chain binary XORs through auxiliary variables to keep clauses small.
        current = inputs[0]
        for next_input in inputs[1:-1] if len(inputs) > 2 else []:
            auxiliary = self._cnf.new_var()
            self._encode_xor2(auxiliary, current, next_input, invert=False)
            current = auxiliary
        last = inputs[-1] if len(inputs) > 1 else current
        if len(inputs) == 1:
            # Degenerate single-input XOR behaves as BUF (or NOT for XNOR).
            if invert:
                self._cnf.add_clause([output, current])
                self._cnf.add_clause([-output, -current])
            else:
                self._cnf.add_clause([-output, current])
                self._cnf.add_clause([output, -current])
            return
        self._encode_xor2(output, current, last, invert=invert)

    def _encode_xor2(self, output: int, a: int, b: int, invert: bool) -> None:
        out_lit = -output if invert else output
        self._cnf.add_clause([-out_lit, a, b])
        self._cnf.add_clause([-out_lit, -a, -b])
        self._cnf.add_clause([out_lit, -a, b])
        self._cnf.add_clause([out_lit, a, -b])
    # Note: for invert=True the four clauses above encode output == XNOR(a, b).


__all__ = ["CircuitEncoder"]
