"""Multi-cycle trigger justification on the unrolled transition relation.

:class:`SequentialJustifier` is the sequential analogue of
:class:`repro.sat.justify.Justifier`: where the combinational justifier asks
"is there an input *pattern* driving these nets to these values?", the
sequential justifier asks "is there an input *sequence* from reset under
which this :class:`~repro.trojan.model.SequentialTrigger` fires within k
cycles?" — and extracts the sequence when the answer is yes.

Both temporal rules are encoded as clause layers over the per-frame condition
indicators of a :class:`~repro.sat.unroll.TimeFrameExpansion`:

- ``consecutive`` count-``k`` uses **shift-chain clauses**: auxiliary
  variables ``s[i][t]`` assert "the condition held at each of cycles
  ``t - i + 1 .. t``" via ``s[i][t] <-> cond[t] AND s[i-1][t-1]`` — the CNF
  image of the shift-register trigger hardware;
- ``cumulative`` count-``k`` uses a **sequential-counter cardinality
  ladder**: ``c[i][t]`` asserts "the condition held in at least ``i`` of
  cycles ``0 .. t``" via ``c[i][t] <-> c[i][t-1] OR (cond[t] AND
  c[i-1][t-1])`` — the CNF image of the sticky thermometer counter.

Queries assert a single "fired by the horizon" variable as a solver
assumption, so one justifier instance answers arbitrarily many triggers
incrementally (encodings are definitional and cached per condition), and
deeper horizons extend the same solver via the expansion's incremental
:meth:`~repro.sat.unroll.TimeFrameExpansion.extend_to`.

**Witnesses are self-verifying.** Every witness is replayed bit-for-bit
through :class:`~repro.simulation.compiled.CompiledSequentialNetlist` before
it is returned: the claimed firing cycle must be reproduced by the real
multi-cycle engine (and, transitively, by the infected-netlist ground-truth
oracle the engine is differentially tested against).  A divergence would
indicate an encoding bug and raises immediately instead of emitting a bogus
test sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.circuits.netlist import Netlist
from repro.sat.cnf import Literal
from repro.sat.solver import SolverConfig, SolverStats
from repro.sat.unroll import TimeFrameExpansion

if TYPE_CHECKING:  # imported lazily at runtime to keep the sat layer cycle-free
    from repro.trojan.model import SequentialTrigger, TriggerCondition


@dataclass
class SequenceWitness:
    """A concrete input sequence that provably fires a sequential trigger.

    Attributes:
        inputs: the primary inputs, defining the column order of ``sequence``.
        sequence: 0/1 array of shape ``(cycles, len(inputs))``; row ``t`` is
            the stimulus applied at clock cycle ``t``, starting from reset.
        fire_cycle: the first clock cycle (0-based) at which the trigger's
            temporal rule is met — verified by replay through the compiled
            multi-cycle engine.
        trigger: the justified trigger.
    """

    inputs: tuple[str, ...]
    sequence: np.ndarray
    fire_cycle: int
    trigger: SequentialTrigger

    def __post_init__(self) -> None:
        self.sequence = np.atleast_2d(np.asarray(self.sequence, dtype=np.uint8))

    @property
    def cycles(self) -> int:
        """Length of the witness sequence in clock cycles."""
        return self.sequence.shape[0]


def condition_bits(
    netlist: Netlist,
    condition: TriggerCondition,
    sequence: np.ndarray,
    initial_state: dict[str, int] | None = None,
) -> np.ndarray:
    """Per-cycle truth of a trigger condition under one input sequence.

    The sequence is stepped through the compiled multi-cycle engine from
    reset (or ``initial_state``); the result is a boolean vector with one
    entry per clock cycle.
    """
    from repro.simulation.compiled import compile_sequential_netlist

    compiled = compile_sequential_netlist(netlist)
    sequence = np.atleast_2d(np.asarray(sequence, dtype=np.uint8))
    state = None
    if initial_state:
        state = np.zeros((1, compiled.num_state_bits), dtype=np.uint8)
        for position, net in enumerate(compiled.interface.state):
            state[0, position] = initial_state.get(net, 0)
    tensor, _ = compiled.run_sequences(sequence[None, :, :], initial_state=state)
    bits = np.ones(tensor.shape[0], dtype=bool)
    one = np.uint64(1)
    for net, value in condition.requirements:
        row = (tensor[:, compiled.index_of(net), 0] & one).astype(bool)
        bits &= row if value == 1 else ~row
    return bits


def temporal_fire_cycles(mode: str, count: int, bits: np.ndarray) -> list[int]:
    """Cycles at which a (mode, count) rule fires, given per-cycle condition bits.

    Matches the trigger hardware of :func:`repro.trojan.insertion
    .insert_sequential_trojan` exactly: ``consecutive`` fires at every cycle
    ending a streak of at least ``count``; ``cumulative`` fires at every
    activation cycle from the ``count``-th activation on.
    """
    fires: list[int] = []
    streak = 0
    total = 0
    for cycle, bit in enumerate(bits):
        if bit:
            streak += 1
            total += 1
        else:
            streak = 0
        if mode == "consecutive":
            if streak >= count:
                fires.append(cycle)
        elif bit and total >= count:
            fires.append(cycle)
    return fires


def replay_fire_cycles(
    netlist: Netlist,
    trigger: SequentialTrigger,
    sequence: np.ndarray,
    initial_state: dict[str, int] | None = None,
) -> list[int]:
    """All cycles at which ``trigger`` fires when ``sequence`` is replayed.

    This is the independent check every :class:`SequentialJustifier` witness
    must pass: the sequence is simulated on the compiled multi-cycle engine
    and the temporal rule is evaluated on the observed condition bits.
    """
    bits = condition_bits(netlist, trigger.condition, sequence, initial_state)
    return temporal_fire_cycles(trigger.mode, trigger.count, bits)


@dataclass
class _TemporalChain:
    """Incremental per-(condition, mode, count) encoding state.

    ``levels[i][t]`` is the literal asserting depth ``i + 1`` of the rule at
    cycle ``t`` (streak length / activation count >= i + 1), or None where
    structurally impossible; ``fired[t]`` asserts "the rule has been met at
    some cycle <= t".
    """

    levels: list[list[Literal | None]]
    fired: list[Literal | None] = field(default_factory=list)


class SequentialJustifier:
    """Incremental multi-cycle trigger justification for one sequential netlist."""

    def __init__(
        self,
        netlist: Netlist,
        cycles: int = 1,
        initial_state: dict[str, int] | None = None,
        config: SolverConfig | None = None,
    ) -> None:
        self.netlist = netlist
        self.expansion = TimeFrameExpansion(netlist, cycles, initial_state, config=config)
        self._initial_state = dict(initial_state) if initial_state else None
        self._conditions: dict[tuple, list[Literal]] = {}
        self._chains: dict[tuple, _TemporalChain] = {}
        self._preferred: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Current unroll depth (the default query horizon)."""
        return self.expansion.num_frames

    @property
    def initial_state(self) -> dict[str, int] | None:
        """The non-reset initial state this justifier unrolls from, if any."""
        return dict(self._initial_state) if self._initial_state else None

    @property
    def num_queries(self) -> int:
        """Number of SAT queries issued so far."""
        return self.expansion.num_queries

    @property
    def config(self) -> SolverConfig:
        """The solver configuration of the underlying expansion."""
        return self.expansion.config

    def stats(self) -> SolverStats:
        """Cumulative solver statistics across every query so far."""
        return self.expansion.stats()

    def extend_to(self, cycles: int) -> "SequentialJustifier":
        """Deepen the unroll to ``cycles`` frames (incremental; no-op if enough)."""
        self.expansion.extend_to(cycles)
        return self

    def set_preferred_values(self, preferred_values: dict[str, int]) -> None:
        """Bias witnesses toward the given net values at every cycle.

        The sequence-generation pipeline registers the rare value of every
        rare net here, mirroring :meth:`repro.sat.justify.Justifier
        .set_preferred_values`: a sequence justified for one compatible set
        then also tends to activate rare nets outside the set.
        """
        for net in preferred_values:
            self.expansion.variable(net, 0)  # raises KeyError on unknown nets
        self._preferred = {net: int(value) for net, value in preferred_values.items()}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_satisfiable(self, trigger: SequentialTrigger, cycles: int | None = None) -> bool:
        """True if some input sequence from reset fires ``trigger`` within the horizon."""
        fired = self._fired_by(trigger, self._horizon(trigger, cycles))
        if fired is None:
            return False
        return self.expansion.solve([fired]).satisfiable

    def satisfying_model(
        self, trigger: SequentialTrigger, cycles: int | None = None
    ) -> dict[int, bool] | None:
        """Raw SAT model of one firing query, or None if it cannot fire.

        Unlike :meth:`witness` this neither decodes nor replays the model —
        it is the cheap building block for callers that mine a model for
        *additional* rare-net activations (see
        :meth:`repro.core.sequence_gen.SequentialCompatibility
        .satisfiable_superset`).  Phase preferences are applied: they never
        change the verdict, only which model comes back, and the biased
        model is exactly the activation-rich one worth mining.
        """
        fired = self._fired_by(trigger, self._horizon(trigger, cycles))
        if fired is None:
            return None
        self._apply_preferred()
        result = self.expansion.solve([fired])
        return result.model if result.satisfiable else None

    def witness(
        self,
        trigger: SequentialTrigger,
        cycles: int | None = None,
        verify: bool = True,
    ) -> SequenceWitness | None:
        """A sequence firing ``trigger`` within the horizon, or None if UNSAT.

        With ``verify=True`` (the default) the witness is replayed through
        the compiled multi-cycle engine and the claimed firing cycle must be
        reproduced exactly; a divergence raises ``RuntimeError``.
        """
        horizon = self._horizon(trigger, cycles)
        fired = self._fired_by(trigger, horizon)
        if fired is None:
            return None
        self._apply_preferred()
        result = self.expansion.solve([fired])
        if not result.satisfiable:
            return None
        assert result.model is not None
        sequence = self.expansion.decode_inputs(result.model)[:horizon]
        bits = self._model_condition_bits(trigger.condition, result.model, horizon)
        fires = temporal_fire_cycles(trigger.mode, trigger.count, bits)
        if not fires:  # pragma: no cover - encoding guarantees at least one
            raise RuntimeError(
                "internal error: SAT model does not fire the trigger it asserts"
            )
        fire_cycle = fires[0]
        if verify:
            replayed = replay_fire_cycles(
                self.netlist, trigger, sequence, self._initial_state
            )
            if not replayed or replayed[0] != fire_cycle:
                raise RuntimeError(
                    f"witness replay diverged: model claims first firing at cycle "
                    f"{fire_cycle}, compiled engine observes {replayed}"
                )
        return SequenceWitness(
            inputs=self.expansion.inputs,
            sequence=sequence,
            fire_cycle=fire_cycle,
            trigger=trigger,
        )

    # ------------------------------------------------------------------
    # Encoding internals
    # ------------------------------------------------------------------
    def _horizon(self, trigger: SequentialTrigger, cycles: int | None) -> int:
        horizon = self.cycles if cycles is None else cycles
        if horizon < 1:
            raise ValueError(f"cycles must be >= 1, got {horizon}")
        return horizon

    def _condition_key(self, condition: TriggerCondition) -> tuple:
        return tuple(sorted(condition.requirements))

    def _condition_literals(self, condition: TriggerCondition, frames: int) -> list[Literal]:
        """Per-frame indicator literals of the condition (cached, lazily grown)."""
        key = self._condition_key(condition)
        literals = self._conditions.setdefault(key, [])
        expansion = self.expansion
        while len(literals) < frames:
            frame = len(literals)
            members = [expansion.literal(net, value, frame) for net, value in key]
            if len(members) == 1:
                literals.append(members[0])
                continue
            indicator = expansion.new_variable()
            for member in members:
                expansion.add_clause([-indicator, member])
            expansion.add_clause([indicator] + [-member for member in members])
            literals.append(indicator)
        return literals

    def _fired_by(self, trigger: SequentialTrigger, frames: int) -> Literal | None:
        """Literal asserting "trigger fired at some cycle < frames" (None if impossible)."""
        if frames < trigger.count:
            return None
        self.expansion.extend_to(frames)
        cond = self._condition_literals(trigger.condition, frames)
        key = (self._condition_key(trigger.condition), trigger.mode, trigger.count)
        chain = self._chains.get(key)
        if chain is None:
            chain = _TemporalChain(levels=[[] for _ in range(trigger.count)])
            self._chains[key] = chain
        build = (
            self._build_consecutive_frame
            if trigger.mode == "consecutive"
            else self._build_cumulative_frame
        )
        while len(chain.fired) < frames:
            build(chain, cond, trigger.count, len(chain.fired))
        return chain.fired[frames - 1]

    def _build_consecutive_frame(
        self, chain: _TemporalChain, cond: list[Literal], count: int, frame: int
    ) -> None:
        """Extend the shift chain by one frame: s[i][t] <-> cond[t] AND s[i-1][t-1]."""
        expansion = self.expansion
        chain.levels[0].append(cond[frame])
        for depth in range(1, count):
            if frame < depth:
                chain.levels[depth].append(None)
                continue
            previous = chain.levels[depth - 1][frame - 1]
            streak = expansion.new_variable()
            expansion.add_clause([-streak, cond[frame]])
            expansion.add_clause([-streak, previous])
            expansion.add_clause([streak, -cond[frame], -previous])
            chain.levels[depth].append(streak)
        self._append_fired(chain, chain.levels[count - 1][frame])

    def _build_cumulative_frame(
        self, chain: _TemporalChain, cond: list[Literal], count: int, frame: int
    ) -> None:
        """Extend the cardinality ladder: c[i][t] <-> c[i][t-1] OR (cond[t] AND c[i-1][t-1])."""
        expansion = self.expansion
        for depth in range(count):
            if frame < depth:  # fewer than depth+1 cycles elapsed: impossible
                chain.levels[depth].append(None)
                continue
            carried = chain.levels[depth][frame - 1] if frame > 0 else None
            below = chain.levels[depth - 1][frame - 1] if depth > 0 else None
            if depth == 0:
                if carried is None:
                    chain.levels[0].append(cond[frame])
                    continue
                reached = expansion.new_variable()
                expansion.add_clause([-carried, reached])
                expansion.add_clause([-cond[frame], reached])
                expansion.add_clause([-reached, carried, cond[frame]])
                chain.levels[0].append(reached)
                continue
            # depth >= 1: ``below`` is defined whenever this cell is reachable.
            assert below is not None
            reached = expansion.new_variable()
            if carried is None:  # first reachable cell: c = cond AND below
                expansion.add_clause([-reached, cond[frame]])
                expansion.add_clause([-reached, below])
                expansion.add_clause([reached, -cond[frame], -below])
            else:
                expansion.add_clause([-carried, reached])
                expansion.add_clause([-cond[frame], -below, reached])
                expansion.add_clause([-reached, carried, cond[frame]])
                expansion.add_clause([-reached, carried, below])
            chain.levels[depth].append(reached)
        # The top ladder row is already monotone in t ("count reached by t").
        chain.fired.append(chain.levels[count - 1][frame])

    def _append_fired(self, chain: _TemporalChain, fire: Literal | None) -> None:
        """Accumulate the monotone "fired by frame t" chain (consecutive mode)."""
        if fire is None:
            chain.fired.append(None)
            return
        previous = chain.fired[-1] if chain.fired else None
        if previous is None:
            chain.fired.append(fire)
            return
        fired = self.expansion.new_variable()
        self.expansion.add_clause([-previous, fired])
        self.expansion.add_clause([-fire, fired])
        self.expansion.add_clause([-fired, previous, fire])
        chain.fired.append(fired)

    # ------------------------------------------------------------------
    # Decoding internals
    # ------------------------------------------------------------------
    def _model_condition_bits(
        self, condition: TriggerCondition, model: dict[int, bool], frames: int
    ) -> np.ndarray:
        """Per-frame condition truth read off the circuit variables of a model."""
        bits = np.ones(frames, dtype=bool)
        for net, value in condition.requirements:
            for frame in range(frames):
                assigned = model.get(self.expansion.variable(net, frame), False)
                if assigned != bool(value):
                    bits[frame] = False
        return bits

    def _apply_preferred(self) -> None:
        if not self._preferred:
            return
        phases: dict[int, bool] = {}
        for net, value in self._preferred.items():
            for frame in range(self.expansion.num_frames):
                phases[self.expansion.variable(net, frame)] = bool(value)
        self.expansion.set_phases(phases)


__all__ = [
    "SequenceWitness",
    "SequentialJustifier",
    "condition_bits",
    "replay_fire_cycles",
    "temporal_fire_cycles",
]
