"""A CDCL (conflict-driven clause learning) SAT solver.

This is the library's replacement for the PicoSAT/pycosat solver the paper
uses.  The implementation follows the MiniSat architecture with the classic
performance stack on top:

- two-watched-literal unit propagation with **blocking literals** and flat
  per-literal watch arrays,
- first-UIP conflict analysis with clause learning and LBD (literal block
  distance) tracking,
- **EVSIDS** variable activities on an indexed max-heap
  (:class:`~repro.sat.heap.ActivityHeap`): additive bumps with a growing
  increment instead of decaying every activity, lazy heap deletion on
  assignment and re-insertion on backtrack,
- phase saving, carried across restarts,
- **Luby ("reluctant doubling") restarts** (geometric scheduling remains
  available through :class:`SolverConfig`),
- **clause-database reduction**: learned clauses are periodically forgotten
  worst-half-first by (LBD, activity), pinning reason clauses, binary
  clauses, and low-LBD "glue" clauses,
- incremental solving under assumptions.

Incremental assumptions matter for this reproduction: pairwise compatibility
of ``r`` rare nets requires ``O(r^2)`` satisfiability queries on the *same*
circuit encoding, so the encoder builds one CNF and the compatibility analysis
re-solves it under different assumption literals, keeping learned clauses.
Clause forgetting is what keeps that incremental reuse affordable on deep
time-frame unrolls, where the learned-clause set would otherwise grow without
bound across :meth:`~repro.sat.unroll.TimeFrameExpansion.extend_to` calls.

Configuration is a frozen :class:`SolverConfig`; cumulative counters are a
:class:`SolverStats` snapshot from :meth:`CdclSolver.stats`.  The legacy
``decay``/``restart_base``/``restart_growth`` keyword arguments are still
accepted for one release with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from time import perf_counter

from repro.obs.profile import hot_path
from repro.sat.cnf import CNF, Literal
from repro.sat.heap import ActivityHeap

#: Restart schedules :class:`SolverConfig` accepts.
RESTART_POLICIES = ("luby", "geometric")


@dataclass(frozen=True)
class SolverConfig:
    """Frozen CDCL tuning knobs (the solver's public configuration surface).

    Attributes:
        var_decay: EVSIDS decay; each conflict grows the bump increment by
            ``1 / var_decay`` (0 < var_decay < 1; higher = longer memory).
        clause_decay: the same growth rule for learned-clause activities,
            used as the tie-break when forgetting equal-LBD clauses.
        restart_policy: ``"luby"`` (reluctant doubling, the default) or
            ``"geometric"`` (the pre-overhaul schedule).
        restart_base: conflicts per restart unit — the Luby multiplier, or
            the first geometric limit.
        restart_growth: geometric limit multiplier (ignored under Luby).
        reduce_base: learned clauses tolerated before the first reduction.
        reduce_growth: limit increase after each reduction (so the database
            is allowed to grow slowly as the search matures).
        reduce_fraction: fraction of forgettable learned clauses deleted per
            reduction, worst (highest LBD, lowest activity) first.
        glue_lbd: clauses with LBD <= this are never forgotten ("glue").
        verify_models: re-check every SAT model against the full problem
            clause database before returning it.  Off by default — it costs
            O(formula) per SAT answer, and the pipelines that consume models
            replay their witnesses through the compiled simulation engines
            anyway; turn it on when debugging encodings.
    """

    var_decay: float = 0.95
    clause_decay: float = 0.999
    restart_policy: str = "luby"
    restart_base: int = 100
    restart_growth: float = 1.5
    reduce_base: int = 2000
    reduce_growth: int = 300
    reduce_fraction: float = 0.5
    glue_lbd: int = 2
    verify_models: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.var_decay < 1.0:
            raise ValueError(f"var_decay must be in (0, 1), got {self.var_decay}")
        if not 0.0 < self.clause_decay < 1.0:
            raise ValueError(f"clause_decay must be in (0, 1), got {self.clause_decay}")
        if self.restart_policy not in RESTART_POLICIES:
            raise ValueError(
                f"restart_policy must be one of {RESTART_POLICIES}, "
                f"got {self.restart_policy!r}"
            )
        if self.restart_base < 1:
            raise ValueError(f"restart_base must be >= 1, got {self.restart_base}")
        if self.restart_growth <= 1.0:
            raise ValueError(f"restart_growth must be > 1, got {self.restart_growth}")
        if self.reduce_base < 1:
            raise ValueError(f"reduce_base must be >= 1, got {self.reduce_base}")
        if self.reduce_growth < 0:
            raise ValueError(f"reduce_growth must be >= 0, got {self.reduce_growth}")
        if not 0.0 < self.reduce_fraction <= 1.0:
            raise ValueError(
                f"reduce_fraction must be in (0, 1], got {self.reduce_fraction}"
            )
        if self.glue_lbd < 0:
            raise ValueError(f"glue_lbd must be >= 0, got {self.glue_lbd}")

    @classmethod
    def from_mapping(cls, mapping: dict) -> "SolverConfig":
        """Build a config from a plain dict (the ``--set solver=...`` path).

        Unknown keys raise ``ValueError`` with the supported key list, so a
        typo on the CLI fails loudly instead of being silently ignored.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown SolverConfig key(s): {', '.join(unknown)}; "
                f"supported: {', '.join(sorted(known))}"
            )
        return cls(**mapping)

    def replace(self, **overrides) -> "SolverConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        """Plain-dict view (JSON-ready, stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class SolverStats:
    """Cumulative per-solver counters (monotone across queries).

    ``learned_clauses``/``deleted_clauses`` count lifetime events, not the
    current database size; ``max_trail`` is the deepest assignment stack any
    query reached.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_trail: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (JSON-ready, stable key order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Aggregate two stats snapshots (sums; ``max_trail`` takes the max)."""
        return SolverStats(
            conflicts=self.conflicts + other.conflicts,
            decisions=self.decisions + other.decisions,
            propagations=self.propagations + other.propagations,
            restarts=self.restarts + other.restarts,
            learned_clauses=self.learned_clauses + other.learned_clauses,
            deleted_clauses=self.deleted_clauses + other.deleted_clauses,
            max_trail=max(self.max_trail, other.max_trail),
        )


@dataclass
class SolverResult:
    """Outcome of a SAT query."""

    satisfiable: bool
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    stats: SolverStats | None = None

    def value(self, variable: int) -> bool:
        """Value of ``variable`` in the model (SAT results only)."""
        if self.model is None:
            raise ValueError("no model available: formula was unsatisfiable")
        return self.model.get(variable, False)


class Clause(list):
    """A clause: a literal list with learned-clause metadata riding along.

    Subclassing ``list`` keeps literal access as fast as the raw lists the
    propagation loop indexes (``clause[0]``/``clause[1]`` are the watched
    literals) while giving the clause database a place for LBD and activity.
    """

    __slots__ = ("learned", "lbd", "activity")

    def __init__(self, literals, learned: bool = False, lbd: int = 0) -> None:
        super().__init__(literals)
        self.learned = learned
        self.lbd = lbd
        self.activity = 0.0


def luby(index: int) -> int:
    """The reluctant-doubling sequence 1,1,2,1,1,2,4,... (0-based index)."""
    size, height = 1, 0
    while size < index + 1:
        height += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) >> 1
        height -= 1
        index %= size
    return 1 << height


_UNASSIGNED = -1

#: Rescale threshold/factor for EVSIDS activities (MiniSat's constants).
_ACTIVITY_LIMIT = 1e100
_ACTIVITY_RESCALE = 1e-100
_CLAUSE_ACTIVITY_LIMIT = 1e20
_CLAUSE_ACTIVITY_RESCALE = 1e-20


class CdclSolver:
    """Incremental CDCL solver over a :class:`~repro.sat.cnf.CNF` formula."""

    def __init__(
        self,
        cnf: CNF | None = None,
        *,
        config: SolverConfig | None = None,
        decay: float | None = None,
        restart_base: int | None = None,
        restart_growth: float | None = None,
    ) -> None:
        legacy = {
            "decay": decay,
            "restart_base": restart_base,
            "restart_growth": restart_growth,
        }
        supplied = {key: value for key, value in legacy.items() if value is not None}
        if supplied:
            if config is not None:
                raise ValueError(
                    "pass either config=SolverConfig(...) or the legacy "
                    f"keyword(s) {sorted(supplied)}, not both"
                )
            warnings.warn(
                "CdclSolver(decay=, restart_base=, restart_growth=) is "
                "deprecated; pass config=SolverConfig(var_decay=..., "
                "restart_policy='geometric', restart_base=..., "
                "restart_growth=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = SolverConfig(
                var_decay=decay if decay is not None else 0.95,
                restart_policy="geometric",
                restart_base=restart_base if restart_base is not None else 100,
                restart_growth=restart_growth if restart_growth is not None else 1.5,
            )
        self.config = config if config is not None else SolverConfig()

        self._num_vars = 0
        self._learned: list[Clause] = []
        self._problem: list[Clause] = []
        # Watch lists are flat arrays indexed by literal code
        # ``(var << 1) | sign`` holding ``(clause, blocking literal)`` pairs.
        # Binary clauses live in their own per-literal implication lists
        # (``falsified literal -> (implied literal, clause)``): their watches
        # never move, so propagation skips the whole replacement-search dance
        # — on Tseitin circuit encodings most clauses are binary.
        self._watches: list[list[tuple[Clause, Literal]]] = [[], []]
        self._binary: list[list[tuple[Literal, Clause]]] = [[], []]
        self._assign: list[int] = [_UNASSIGNED]  # index 0 unused
        self._level: list[int] = [0]
        self._reason: list[Clause | None] = [None]
        self._phase: list[bool] = [False]
        self._heap = ActivityHeap()
        self._trail: list[Literal] = []
        self._trail_limits: list[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._clause_inc = 1.0
        self._restarts_scheduled = 0
        self._reduce_limit = self.config.reduce_base
        self._stats = SolverStats()
        self._unsat = False
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def add_cnf(self, cnf: CNF) -> None:
        """Load all clauses of ``cnf`` into the solver."""
        self._ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: list[Literal]) -> None:
        """Add a clause; may only be called at decision level 0."""
        if self._trail_limits:
            raise RuntimeError("clauses can only be added at decision level 0")
        clause = sorted(set(literals), key=abs)
        if any(-lit in clause for lit in clause):
            return  # tautology
        self._ensure_vars(max((abs(lit) for lit in clause), default=0))
        clause = [lit for lit in clause if self._literal_value(lit) is not False]
        if any(self._literal_value(lit) is True for lit in clause):
            return
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], reason=None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        stored = Clause(clause)
        self._problem.append(stored)
        if len(stored) == 2:
            self._watch_binary(stored)
        else:
            self._watch(stored[0], stored, stored[1])
            self._watch(stored[1], stored, stored[0])

    def reserve_vars(self, num_vars: int) -> None:
        """Grow the variable space to at least ``num_vars`` (idempotent).

        Callers that allocate variables externally — e.g. the time-frame
        expansion handing out per-frame blocks and temporal auxiliary
        variables — must reserve them before using them in assumptions or
        :meth:`set_phases`; :meth:`add_clause` grows the space implicitly.
        """
        if num_vars < 0:
            raise ValueError(f"num_vars must be >= 0, got {num_vars}")
        self._ensure_vars(num_vars)

    def set_phases(self, phases: dict[int, bool]) -> None:
        """Set the preferred decision phase of selected variables.

        The solver picks this polarity the next time it branches on the
        variable (phase saving later overrides it as assignments happen).
        Callers that want a persistent bias re-apply the phases before each
        query; :class:`repro.sat.justify.Justifier` does this for rare-net
        values so that SAT witnesses opportunistically activate additional
        rare nets beyond the ones explicitly constrained.
        """
        for variable, value in phases.items():
            if not 1 <= variable <= self._num_vars:
                raise ValueError(f"unknown variable {variable}")
            self._phase[variable] = bool(value)

    def stats(self) -> SolverStats:
        """Snapshot of the cumulative solver counters (an independent copy)."""
        return replace(self._stats)

    @property
    def num_learned(self) -> int:
        """Current learned-clause database size (after any forgetting)."""
        return len(self._learned)

    def _ensure_vars(self, num_vars: int) -> None:
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._phase.append(False)
            self._watches.append([])
            self._watches.append([])
            self._binary.append([])
            self._binary.append([])
        self._heap.grow(self._num_vars)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[Literal] | None = None) -> SolverResult:
        """Solve the formula under optional assumption literals."""
        assumptions = list(assumptions or [])
        if self._unsat:
            return self._result(False)
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return self._result(False)

        config = self.config
        stats = self._stats
        # Fetch-once profiling probes: None while telemetry is off, so the
        # loop below pays a single `is None` branch per iteration.
        propagate_probe = hot_path("sat.propagate", every=64)
        decide_probe = hot_path("sat.decide", every=16)
        self._restarts_scheduled = 0  # each query restarts the schedule
        restart_limit = self._next_restart_limit()
        conflicts_since_restart = 0
        while True:
            if propagate_probe is not None and propagate_probe.sample():
                probe_start = perf_counter()
                conflict = self._propagate()
                propagate_probe.observe(perf_counter() - probe_start)
            else:
                conflict = self._propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_limits:
                    self._unsat = True
                    return self._result(False)
                learned, backjump, lbd = self._analyze(conflict)
                if not self._handle_learned(learned, backjump, lbd):
                    self._backtrack(0)
                    return self._result(False)
                self._var_inc *= 1.0 / config.var_decay
                self._clause_inc *= 1.0 / config.clause_decay
                if conflicts_since_restart >= restart_limit:
                    stats.restarts += 1
                    conflicts_since_restart = 0
                    restart_limit = self._next_restart_limit()
                    self._backtrack(0)
                    if len(self._learned) >= self._reduce_limit:
                        self._reduce_db()
                continue

            # Re-establish assumptions after any backtracking.
            status = self._enqueue_assumptions(assumptions)
            if status == "conflict":
                self._backtrack(0)
                return self._result(False)
            if status == "enqueued":
                continue

            if decide_probe is not None and decide_probe.sample():
                probe_start = perf_counter()
                variable = self._pick_branch_variable()
                decide_probe.observe(perf_counter() - probe_start)
            else:
                variable = self._pick_branch_variable()
            if variable is None:
                if len(self._trail) > stats.max_trail:
                    stats.max_trail = len(self._trail)
                model = {
                    var: self._assign[var] == 1 for var in range(1, self._num_vars + 1)
                }
                if config.verify_models:
                    self._verify_model(model)
                result = self._result(True, model)
                self._backtrack(0)
                return result
            stats.decisions += 1
            if len(self._trail) > stats.max_trail:
                stats.max_trail = len(self._trail)
            self._trail_limits.append(len(self._trail))
            literal = variable if self._phase[variable] else -variable
            self._enqueue(literal, reason=None)

    def _next_restart_limit(self) -> int:
        """Conflicts allowed before the next restart, per the active policy."""
        config = self.config
        index = self._restarts_scheduled
        self._restarts_scheduled += 1
        if config.restart_policy == "luby":
            return config.restart_base * luby(index)
        return int(config.restart_base * config.restart_growth ** index)

    # ------------------------------------------------------------------
    # Internals: assignment and propagation
    # ------------------------------------------------------------------
    def _enqueue_assumptions(self, assumptions: list[Literal]) -> str:
        """Ensure all assumptions are decided; returns 'done'/'enqueued'/'conflict'."""
        for literal in assumptions:
            value = self._literal_value(literal)
            if value is True:
                continue
            if value is False:
                return "conflict"
            self._trail_limits.append(len(self._trail))
            self._enqueue(literal, reason=None)
            return "enqueued"
        return "done"

    def _literal_value(self, literal: Literal) -> bool | None:
        assigned = self._assign[abs(literal)]
        if assigned == _UNASSIGNED:
            return None
        value = assigned == 1
        return value if literal > 0 else not value

    def _enqueue(self, literal: Literal, reason: Clause | None) -> bool:
        value = self._literal_value(literal)
        if value is not None:
            return value
        variable = abs(literal)
        self._assign[variable] = 1 if literal > 0 else 0
        self._level[variable] = len(self._trail_limits)
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _propagate(self) -> Clause | None:
        """Unit propagation; returns a conflicting clause or None.

        Binary clauses propagate through dedicated implication lists (no
        watch maintenance at all); longer clauses use blocking literals so
        the common case — the visited clause is already satisfied elsewhere
        — is a single list lookup with no clause access, and an in-place
        two-pointer sweep compacts each watch list without allocating a
        replacement.  Unit enqueues are inlined: the watched literal is
        known to be unassigned at that point.
        """
        trail = self._trail
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        watches = self._watches
        binary = self._binary
        # Propagation never opens a decision level, so this is loop-invariant.
        current_level = len(self._trail_limits)
        head = self._queue_head
        start = head
        while head < len(trail):
            literal = trail[head]
            head += 1
            if literal > 0:
                falsified = -literal
                code = (literal << 1) | 1
            else:
                falsified = -literal
                code = falsified << 1
            for implied, clause in binary[code]:
                variable = implied if implied > 0 else -implied
                value = assign[variable]
                if value == _UNASSIGNED:
                    assign[variable] = 1 if implied > 0 else 0
                    level[variable] = current_level
                    reason[variable] = clause
                    phase[variable] = implied > 0
                    trail.append(implied)
                elif (value == 1) != (implied > 0):
                    self._queue_head = head
                    self._stats.propagations += head - start
                    return clause
            watch_list = watches[code]
            keep = 0
            position = 0
            size = len(watch_list)
            while position < size:
                entry = watch_list[position]
                position += 1
                blocker = entry[1]
                # Blocking literal already true: clause satisfied, keep as-is.
                blocker_value = assign[blocker if blocker > 0 else -blocker]
                if blocker_value != _UNASSIGNED and (blocker_value == 1) == (blocker > 0):
                    watch_list[keep] = entry
                    keep += 1
                    continue
                clause = entry[0]
                # Ensure the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0] = clause[1]
                    clause[1] = falsified
                first = clause[0]
                first_variable = first if first > 0 else -first
                first_value = assign[first_variable]
                if first_value != _UNASSIGNED and (first_value == 1) == (first > 0):
                    watch_list[keep] = (clause, first)
                    keep += 1
                    continue
                moved = False
                for alt_index in range(2, len(clause)):
                    alternative = clause[alt_index]
                    alt_value = assign[alternative if alternative > 0 else -alternative]
                    if alt_value == _UNASSIGNED or (alt_value == 1) == (alternative > 0):
                        clause[1] = alternative
                        clause[alt_index] = falsified
                        if alternative > 0:
                            watches[alternative << 1].append((clause, first))
                        else:
                            watches[(-alternative << 1) | 1].append((clause, first))
                        moved = True
                        break
                if moved:
                    continue
                watch_list[keep] = (clause, first)
                keep += 1
                if first_value != _UNASSIGNED:
                    # Conflict: slide the unvisited tail down and stop.
                    watch_list[keep:] = watch_list[position:size]
                    self._queue_head = head
                    self._stats.propagations += head - start
                    return clause
                # Unit: ``first`` is unassigned — inline the enqueue.
                assign[first_variable] = 1 if first > 0 else 0
                level[first_variable] = current_level
                reason[first_variable] = clause
                phase[first_variable] = first > 0
                trail.append(first)
            del watch_list[keep:]
        self._queue_head = head
        self._stats.propagations += head - start
        return None

    def _watch(self, literal: Literal, clause: Clause, blocker: Literal) -> None:
        if literal > 0:
            self._watches[literal << 1].append((clause, blocker))
        else:
            self._watches[(-literal << 1) | 1].append((clause, blocker))

    def _watch_binary(self, clause: Clause) -> None:
        """Register a two-literal clause in both implication lists."""
        first, second = clause[0], clause[1]
        for falsified, implied in ((first, second), (second, first)):
            if falsified > 0:
                self._binary[falsified << 1].append((implied, clause))
            else:
                self._binary[(-falsified << 1) | 1].append((implied, clause))

    def _unwatch(self, literal: Literal, clause: Clause) -> None:
        watch_list = (
            self._watches[literal << 1]
            if literal > 0
            else self._watches[(-literal << 1) | 1]
        )
        for index, (watched, _) in enumerate(watch_list):
            if watched is clause:
                watch_list[index] = watch_list[-1]
                watch_list.pop()
                return
        raise RuntimeError("internal solver error: clause missing from watch list")

    # ------------------------------------------------------------------
    # Internals: conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: Clause) -> tuple[list[Literal], int, int]:
        """First-UIP analysis: returns (learned clause, backjump level, LBD)."""
        current_level = len(self._trail_limits)
        learned: list[Literal] = []
        seen: set[int] = set()
        counter = 0
        clause: Clause | None = conflict
        trail_index = len(self._trail) - 1
        asserting_literal: Literal | None = None

        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            for literal in clause:
                variable = abs(literal)
                if variable in seen or self._level[variable] == 0:
                    continue
                seen.add(variable)
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(literal)
            # Find the next marked literal on the trail to resolve.  Variables
            # stay marked in ``seen`` once visited so a later reason clause
            # cannot re-introduce (and re-count) an already-resolved variable.
            while True:
                literal = self._trail[trail_index]
                trail_index -= 1
                if abs(literal) in seen and self._level[abs(literal)] == current_level:
                    break
            variable = abs(literal)
            counter -= 1
            if counter == 0:
                asserting_literal = -literal
                break
            clause = self._reason[variable]

        learned.insert(0, asserting_literal)
        if len(learned) == 1:
            backjump = 0
        else:
            backjump = max(self._level[abs(lit)] for lit in learned[1:])
        lbd = len({self._level[abs(lit)] for lit in learned})
        return learned, backjump, lbd

    def _handle_learned(self, learned: list[Literal], backjump: int, lbd: int) -> bool:
        """Backjump, install the learned clause, and assert its first literal."""
        self._backtrack(backjump)
        self._stats.learned_clauses += 1
        if len(learned) == 1:
            return self._enqueue(learned[0], reason=None)
        # Keep the two-watched-literal invariant: the second watcher must be a
        # literal assigned at the backjump level so that un-assigning it later
        # re-triggers a visit of this clause.
        deepest = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
        learned[1], learned[deepest] = learned[deepest], learned[1]
        stored = Clause(learned, learned=True, lbd=lbd)
        stored.activity = self._clause_inc
        self._learned.append(stored)
        if len(stored) == 2:
            self._watch_binary(stored)
        else:
            self._watch(stored[0], stored, stored[1])
            self._watch(stored[1], stored, stored[0])
        return self._enqueue(stored[0], reason=stored)

    def _reduce_db(self) -> int:
        """Forget the worst learned clauses; returns how many were deleted.

        Called at restart points (so the trail is short), this removes
        ``reduce_fraction`` of the *forgettable* learned clauses, worst
        first — highest LBD, then lowest activity.  Three classes are
        pinned and never deleted:

        - **reason clauses** of any currently-assigned variable (deleting
          one would orphan the implication graph),
        - **glue clauses** (LBD <= ``glue_lbd``), which encode tight
          cross-level dependencies and are cheap to keep,
        - **binary clauses**, whose watch cost is negligible.
        """
        locked = {
            id(reason) for reason in self._reason if reason is not None and reason.learned
        }
        config = self.config
        forgettable = [
            clause
            for clause in self._learned
            if id(clause) not in locked
            and clause.lbd > config.glue_lbd
            and len(clause) > 2
        ]
        victims = int(len(forgettable) * config.reduce_fraction)
        if victims == 0:
            self._reduce_limit += config.reduce_growth
            return 0
        forgettable.sort(key=lambda clause: (-clause.lbd, clause.activity))
        doomed = {id(clause) for clause in forgettable[:victims]}
        for clause in forgettable[:victims]:
            self._unwatch(clause[0], clause)
            self._unwatch(clause[1], clause)
        self._learned = [clause for clause in self._learned if id(clause) not in doomed]
        self._stats.deleted_clauses += victims
        self._reduce_limit += config.reduce_growth
        return victims

    def _verify_model(self, model: dict[int, bool]) -> None:
        """Sanity check: every problem clause must be satisfied by the model."""
        for clause in self._problem:
            if not any(model[abs(lit)] == (lit > 0) for lit in clause):
                raise RuntimeError(
                    "internal solver error: model does not satisfy a clause"
                )

    def _bump_activity(self, variable: int) -> None:
        if self._heap.bump(variable, self._var_inc) > _ACTIVITY_LIMIT:
            self._heap.rescale(_ACTIVITY_RESCALE)
            self._var_inc *= _ACTIVITY_RESCALE

    def _bump_clause(self, clause: Clause) -> None:
        clause.activity += self._clause_inc
        if clause.activity > _CLAUSE_ACTIVITY_LIMIT:
            for learned in self._learned:
                learned.activity *= _CLAUSE_ACTIVITY_RESCALE
            self._clause_inc *= _CLAUSE_ACTIVITY_RESCALE

    # ------------------------------------------------------------------
    # Internals: decisions, backtracking
    # ------------------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_limits) <= level:
            return
        limit = self._trail_limits[level]
        assign = self._assign
        reason = self._reason
        tail = self._trail[limit:]
        for literal in tail:
            variable = literal if literal > 0 else -literal
            assign[variable] = _UNASSIGNED
            reason[variable] = None
        self._heap.push_many(tail)
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._queue_head = min(self._queue_head, len(self._trail))

    def _pick_branch_variable(self) -> int | None:
        heap = self._heap
        assign = self._assign
        while True:
            variable = heap.pop()
            if variable is None or assign[variable] == _UNASSIGNED:
                return variable

    def _result(self, satisfiable: bool, model: dict[int, bool] | None = None) -> SolverResult:
        snapshot = self.stats()
        return SolverResult(
            satisfiable=satisfiable,
            model=model,
            conflicts=snapshot.conflicts,
            decisions=snapshot.decisions,
            propagations=snapshot.propagations,
            stats=snapshot,
        )


def solve_cnf(
    cnf: CNF,
    assumptions: list[Literal] | None = None,
    config: SolverConfig | None = None,
) -> SolverResult:
    """One-shot convenience wrapper: build a solver, load ``cnf``, solve."""
    return CdclSolver(cnf, config=config).solve(assumptions)


__all__ = [
    "RESTART_POLICIES",
    "CdclSolver",
    "SolverConfig",
    "SolverResult",
    "SolverStats",
    "luby",
    "solve_cnf",
]
