"""A CDCL (conflict-driven clause learning) SAT solver.

This is the library's replacement for the PicoSAT/pycosat solver the paper
uses.  The implementation follows the MiniSat architecture:

- two-watched-literal unit propagation,
- first-UIP conflict analysis with clause learning,
- VSIDS-style variable activities with exponential decay,
- phase saving,
- geometric restarts,
- incremental solving under assumptions.

Incremental assumptions matter for this reproduction: pairwise compatibility
of ``r`` rare nets requires ``O(r^2)`` satisfiability queries on the *same*
circuit encoding, so the encoder builds one CNF and the compatibility analysis
re-solves it under different assumption literals, keeping learned clauses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sat.cnf import CNF, Literal


@dataclass
class SolverResult:
    """Outcome of a SAT query."""

    satisfiable: bool
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def value(self, variable: int) -> bool:
        """Value of ``variable`` in the model (SAT results only)."""
        if self.model is None:
            raise ValueError("no model available: formula was unsatisfiable")
        return self.model.get(variable, False)


_UNASSIGNED = -1


class CdclSolver:
    """Incremental CDCL solver over a :class:`~repro.sat.cnf.CNF` formula."""

    def __init__(self, cnf: CNF | None = None, *, decay: float = 0.95,
                 restart_base: int = 100, restart_growth: float = 1.5) -> None:
        self._num_vars = 0
        self._clauses: list[list[Literal]] = []
        self._watches: dict[Literal, list[int]] = {}
        self._assign: list[int] = [_UNASSIGNED]  # index 0 unused
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._trail: list[Literal] = []
        self._trail_limits: list[int] = []
        self._queue_head = 0
        self._decay = decay
        self._bump = 1.0
        self._restart_base = restart_base
        self._restart_growth = restart_growth
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._unsat = False
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def add_cnf(self, cnf: CNF) -> None:
        """Load all clauses of ``cnf`` into the solver."""
        self._ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: list[Literal]) -> None:
        """Add a clause; may only be called at decision level 0."""
        if self._trail_limits:
            raise RuntimeError("clauses can only be added at decision level 0")
        clause = sorted(set(literals), key=abs)
        if any(-lit in clause for lit in clause):
            return  # tautology
        self._ensure_vars(max((abs(lit) for lit in clause), default=0))
        clause = [lit for lit in clause if self._literal_value(lit) is not False]
        if any(self._literal_value(lit) is True for lit in clause):
            return
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], reason=-1):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)

    def reserve_vars(self, num_vars: int) -> None:
        """Grow the variable space to at least ``num_vars`` (idempotent).

        Callers that allocate variables externally — e.g. the time-frame
        expansion handing out per-frame blocks and temporal auxiliary
        variables — must reserve them before using them in assumptions or
        :meth:`set_phases`; :meth:`add_clause` grows the space implicitly.
        """
        if num_vars < 0:
            raise ValueError(f"num_vars must be >= 0, got {num_vars}")
        self._ensure_vars(num_vars)

    def set_phases(self, phases: dict[int, bool]) -> None:
        """Set the preferred decision phase of selected variables.

        The solver picks this polarity the next time it branches on the
        variable (phase saving later overrides it as assignments happen).
        Callers that want a persistent bias re-apply the phases before each
        query; :class:`repro.sat.justify.Justifier` does this for rare-net
        values so that SAT witnesses opportunistically activate additional
        rare nets beyond the ones explicitly constrained.
        """
        for variable, value in phases.items():
            if not 1 <= variable <= self._num_vars:
                raise ValueError(f"unknown variable {variable}")
            self._phase[variable] = bool(value)

    def _ensure_vars(self, num_vars: int) -> None:
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(-1)
            self._phase.append(False)
            self._activity.append(0.0)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[Literal] | None = None) -> SolverResult:
        """Solve the formula under optional assumption literals."""
        assumptions = list(assumptions or [])
        if self._unsat:
            return self._result(False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return self._result(False)

        restart_limit = self._restart_base
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return self._result(False)
                learned, backjump = self._analyze(conflict)
                if not self._handle_learned(learned, backjump):
                    self._backtrack(0)
                    return self._result(False)
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * self._restart_growth)
                    self._backtrack(0)
                continue

            # Re-establish assumptions after any backtracking.
            status = self._enqueue_assumptions(assumptions)
            if status == "conflict":
                self._backtrack(0)
                return self._result(False)
            if status == "enqueued":
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                model = {
                    var: self._assign[var] == 1 for var in range(1, self._num_vars + 1)
                }
                self._verify_model(model)
                result = self._result(True, model)
                self._backtrack(0)
                return result
            self._decisions += 1
            self._new_decision_level()
            literal = variable if self._phase[variable] else -variable
            self._enqueue(literal, reason=-1)

    # ------------------------------------------------------------------
    # Internals: assignment and propagation
    # ------------------------------------------------------------------
    def _enqueue_assumptions(self, assumptions: list[Literal]) -> str:
        """Ensure all assumptions are decided; returns 'done'/'enqueued'/'conflict'."""
        for literal in assumptions:
            value = self._literal_value(literal)
            if value is True:
                continue
            if value is False:
                return "conflict"
            self._new_decision_level()
            self._enqueue(literal, reason=-1)
            return "enqueued"
        return "done"

    def _literal_value(self, literal: Literal) -> bool | None:
        assigned = self._assign[abs(literal)]
        if assigned == _UNASSIGNED:
            return None
        value = assigned == 1
        return value if literal > 0 else not value

    def _enqueue(self, literal: Literal, reason: int) -> bool:
        value = self._literal_value(literal)
        if value is not None:
            return value
        variable = abs(literal)
        self._assign[variable] = 1 if literal > 0 else 0
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._phase[variable] = literal > 0
        self._trail.append(literal)
        return True

    def _propagate(self) -> list[Literal] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            literal = self._trail[self._queue_head]
            self._queue_head += 1
            self._propagations += 1
            falsified = -literal
            watch_list = self._watches.get(falsified, [])
            new_watch_list: list[int] = []
            conflict: list[Literal] | None = None
            for position, clause_index in enumerate(watch_list):
                clause = self._clauses[clause_index]
                # Ensure the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._literal_value(first) is True:
                    new_watch_list.append(clause_index)
                    continue
                moved = False
                for alternative_index in range(2, len(clause)):
                    alternative = clause[alternative_index]
                    if self._literal_value(alternative) is not False:
                        clause[1], clause[alternative_index] = clause[alternative_index], clause[1]
                        self._watch(clause[1], clause_index)
                        moved = True
                        break
                if moved:
                    continue
                new_watch_list.append(clause_index)
                if self._literal_value(first) is False:
                    conflict = clause
                    new_watch_list.extend(watch_list[position + 1:])
                    break
                self._enqueue(first, reason=clause_index)
            self._watches[falsified] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    def _watch(self, literal: Literal, clause_index: int) -> None:
        self._watches.setdefault(literal, []).append(clause_index)

    # ------------------------------------------------------------------
    # Internals: conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list[Literal]) -> tuple[list[Literal], int]:
        """First-UIP analysis: returns (learned clause, backjump level)."""
        current_level = self._decision_level()
        learned: list[Literal] = []
        seen: set[int] = set()
        counter = 0
        clause: list[Literal] | None = conflict
        trail_index = len(self._trail) - 1
        asserting_literal: Literal | None = None

        while True:
            assert clause is not None
            for literal in clause:
                variable = abs(literal)
                if variable in seen or self._level[variable] == 0:
                    continue
                seen.add(variable)
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(literal)
            # Find the next marked literal on the trail to resolve.  Variables
            # stay marked in ``seen`` once visited so a later reason clause
            # cannot re-introduce (and re-count) an already-resolved variable.
            while True:
                literal = self._trail[trail_index]
                trail_index -= 1
                if abs(literal) in seen and self._level[abs(literal)] == current_level:
                    break
            variable = abs(literal)
            counter -= 1
            if counter == 0:
                asserting_literal = -literal
                break
            reason_index = self._reason[variable]
            clause = self._clauses[reason_index] if reason_index >= 0 else []

        learned.insert(0, asserting_literal)
        if len(learned) == 1:
            backjump = 0
        else:
            backjump = max(self._level[abs(lit)] for lit in learned[1:])
        self._bump *= 1.0 / self._decay
        if self._bump > 1e100:
            self._rescale_activity()
        return learned, backjump

    def _handle_learned(self, learned: list[Literal], backjump: int) -> bool:
        """Backjump, install the learned clause, and assert its first literal."""
        self._backtrack(backjump)
        if len(learned) == 1:
            if not self._enqueue(learned[0], reason=-1):
                return False
            return True
        # Keep the two-watched-literal invariant: the second watcher must be a
        # literal assigned at the backjump level so that un-assigning it later
        # re-triggers a visit of this clause.
        deepest = max(range(1, len(learned)), key=lambda i: self._level[abs(learned[i])])
        learned[1], learned[deepest] = learned[deepest], learned[1]
        index = len(self._clauses)
        self._clauses.append(learned)
        self._watch(learned[0], index)
        self._watch(learned[1], index)
        return self._enqueue(learned[0], reason=index)

    def _verify_model(self, model: dict[int, bool]) -> None:
        """Sanity check: every clause must be satisfied by the model."""
        for clause in self._clauses:
            if not any(model[abs(lit)] == (lit > 0) for lit in clause):
                raise RuntimeError(
                    "internal solver error: model does not satisfy a clause"
                )

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._bump

    def _rescale_activity(self) -> None:
        self._activity = [a * 1e-100 for a in self._activity]
        self._bump *= 1e-100

    # ------------------------------------------------------------------
    # Internals: decisions, backtracking
    # ------------------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _new_decision_level(self) -> None:
        self._trail_limits.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        for literal in reversed(self._trail[limit:]):
            variable = abs(literal)
            self._assign[variable] = _UNASSIGNED
            self._reason[variable] = -1
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._queue_head = min(self._queue_head, len(self._trail))

    def _pick_branch_variable(self) -> int | None:
        best_variable = None
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if self._assign[variable] == _UNASSIGNED and self._activity[variable] > best_activity:
                best_variable = variable
                best_activity = self._activity[variable]
        return best_variable

    def _result(self, satisfiable: bool, model: dict[int, bool] | None = None) -> SolverResult:
        return SolverResult(
            satisfiable=satisfiable,
            model=model,
            conflicts=self._conflicts,
            decisions=self._decisions,
            propagations=self._propagations,
        )


def solve_cnf(cnf: CNF, assumptions: list[Literal] | None = None) -> SolverResult:
    """One-shot convenience wrapper: build a solver, load ``cnf``, solve."""
    return CdclSolver(cnf).solve(assumptions)


__all__ = ["CdclSolver", "SolverResult", "solve_cnf"]
