"""SAT substrate: CNF structures, a CDCL solver, and circuit encodings.

The paper uses the PicoSAT solver (via ``pycosat``) for two tasks: checking
whether a set of rare nets is *compatible* (can simultaneously take their rare
values) and generating an input pattern that witnesses a compatible set.  This
subpackage provides both capabilities on top of a from-scratch CDCL solver.
"""

from repro.sat.cnf import CNF, Literal
from repro.sat.solver import CdclSolver, SolverResult
from repro.sat.encode import CircuitEncoder
from repro.sat.justify import Justifier

__all__ = [
    "CNF",
    "Literal",
    "CdclSolver",
    "SolverResult",
    "CircuitEncoder",
    "Justifier",
]
