"""SAT substrate: CNF structures, a CDCL solver, and circuit encodings.

The paper uses the PicoSAT solver (via ``pycosat``) for two tasks: checking
whether a set of rare nets is *compatible* (can simultaneously take their rare
values) and generating an input pattern that witnesses a compatible set.  This
subpackage provides both capabilities on top of a from-scratch CDCL solver,
and extends them across clock cycles: :class:`TimeFrameExpansion` unrolls a
sequential netlist's transition relation k cycles into one incrementally
extendable CNF, and :class:`SequentialJustifier` justifies multi-cycle
(consecutive / cumulative count-k) triggers on it, extracting replay-verified
witness sequences.

The public solver surface is :class:`CdclSolver` configured through a frozen
:class:`SolverConfig` (EVSIDS decay, Luby/geometric restarts, clause-database
reduction) and observed through cumulative :class:`SolverStats` — every
higher-level entry point (:class:`Justifier`, :class:`SequentialJustifier`,
:class:`TimeFrameExpansion`) accepts a ``config`` and exposes ``stats()``.
"""

from repro.sat.cnf import CNF, Literal
from repro.sat.heap import ActivityHeap
from repro.sat.solver import (
    RESTART_POLICIES,
    CdclSolver,
    SolverConfig,
    SolverResult,
    SolverStats,
    luby,
    solve_cnf,
)
from repro.sat.encode import CircuitEncoder
from repro.sat.justify import Justifier
from repro.sat.unroll import TimeFrameExpansion
from repro.sat.temporal import (
    SequenceWitness,
    SequentialJustifier,
    replay_fire_cycles,
    temporal_fire_cycles,
)

__all__ = [
    "ActivityHeap",
    "CNF",
    "Literal",
    "RESTART_POLICIES",
    "CdclSolver",
    "SolverConfig",
    "SolverResult",
    "SolverStats",
    "luby",
    "solve_cnf",
    "CircuitEncoder",
    "Justifier",
    "TimeFrameExpansion",
    "SequenceWitness",
    "SequentialJustifier",
    "replay_fire_cycles",
    "temporal_fire_cycles",
]
