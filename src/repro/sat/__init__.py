"""SAT substrate: CNF structures, a CDCL solver, and circuit encodings.

The paper uses the PicoSAT solver (via ``pycosat``) for two tasks: checking
whether a set of rare nets is *compatible* (can simultaneously take their rare
values) and generating an input pattern that witnesses a compatible set.  This
subpackage provides both capabilities on top of a from-scratch CDCL solver,
and extends them across clock cycles: :class:`TimeFrameExpansion` unrolls a
sequential netlist's transition relation k cycles into one incrementally
extendable CNF, and :class:`SequentialJustifier` justifies multi-cycle
(consecutive / cumulative count-k) triggers on it, extracting replay-verified
witness sequences.
"""

from repro.sat.cnf import CNF, Literal
from repro.sat.solver import CdclSolver, SolverResult
from repro.sat.encode import CircuitEncoder
from repro.sat.justify import Justifier
from repro.sat.unroll import TimeFrameExpansion
from repro.sat.temporal import (
    SequenceWitness,
    SequentialJustifier,
    replay_fire_cycles,
    temporal_fire_cycles,
)

__all__ = [
    "CNF",
    "Literal",
    "CdclSolver",
    "SolverResult",
    "CircuitEncoder",
    "Justifier",
    "TimeFrameExpansion",
    "SequenceWitness",
    "SequentialJustifier",
    "replay_fire_cycles",
    "temporal_fire_cycles",
]
