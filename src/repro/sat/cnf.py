"""CNF formula representation and DIMACS I/O.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negated variable.  :class:`CNF` is a thin,
append-only container; the solver consumes its clause list directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

Literal = int


@dataclass
class CNF:
    """A CNF formula: a number of variables and a list of clauses."""

    num_vars: int = 0
    clauses: list[list[Literal]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate and return a fresh variable index (1-based)."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: list[Literal] | tuple[Literal, ...]) -> None:
        """Append a clause, validating its literals."""
        clause = list(literals)
        if not clause:
            raise ValueError("empty clause added to CNF (formula is trivially UNSAT)")
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if abs(literal) > self.num_vars:
                raise ValueError(
                    f"literal {literal} references variable {abs(literal)} "
                    f"but only {self.num_vars} variables are allocated"
                )
        self.clauses.append(clause)

    def add_clauses(self, clauses: list[list[Literal]]) -> None:
        """Append several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def copy(self) -> "CNF":
        """Structural copy (clauses are copied, literals shared)."""
        return CNF(num_vars=self.num_vars, clauses=[list(c) for c in self.clauses])

    # ------------------------------------------------------------------
    # DIMACS
    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise to DIMACS CNF text."""
        lines = [f"p cnf {self.num_vars} {self.num_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def write_dimacs(self, path: str | Path) -> None:
        """Write DIMACS CNF to a file."""
        Path(path).write_text(self.to_dimacs())

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text."""
        cnf = cls()
        declared_vars = 0
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {raw_line!r}")
                declared_vars = int(parts[2])
                cnf.num_vars = declared_vars
                continue
            literals = [int(token) for token in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            if not literals:
                continue
            highest = max(abs(lit) for lit in literals)
            if highest > cnf.num_vars:
                cnf.num_vars = highest
            cnf.add_clause(literals)
        return cnf


__all__ = ["CNF", "Literal"]
