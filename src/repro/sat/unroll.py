"""Time-frame expansion: the sequential transition relation as one CNF.

The combinational flow encodes the scan-cut core once
(:class:`~repro.sat.encode.CircuitEncoder`) and treats flip-flop Q nets as
free pseudo inputs.  That view answers *single-cycle* questions only: it
happily assigns the state register any value, including states the machine
can never reach from reset.  :class:`TimeFrameExpansion` removes that
assumption by unrolling the transition relation ``k`` clock cycles:

- the core's CNF template is instantiated once per *frame* (clock cycle)
  under a per-frame variable map — frame ``t``'s copy of core variable ``v``
  lives in a dedicated variable block, so every net has one CNF variable per
  cycle;
- frame 0's flip-flop Q variables are pinned to the reset state (all-zero by
  default, matching :meth:`repro.circuits.scan.SequentialInterface
  .reset_assignment`) with unit clauses;
- between consecutive frames, *state-transfer* clauses assert that frame
  ``t + 1``'s Q variable equals frame ``t``'s D variable, exactly the
  clocking rule of :class:`~repro.simulation.compiled
  .CompiledSequentialNetlist`.

A model of the unrolled formula is therefore a complete, replayable
execution: per-cycle primary-input values (:meth:`decode_inputs`) plus every
internal net's value at every cycle, all consistent with stepping the real
machine from reset.

Depth extension is **incremental**: :meth:`extend_to` appends frames to the
same :class:`~repro.sat.solver.CdclSolver`, keeping learned clauses, instead
of re-encoding from scratch — the sequential analogue of the incremental
assumption-based querying the pairwise compatibility phase relies on.
Temporal layers on top (:mod:`repro.sat.temporal`) allocate auxiliary
variables through :meth:`new_variable`, which shares one allocator with the
frame blocks so extension and auxiliary allocation can interleave freely.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.scan import ensure_combinational, sequential_interface
from repro.sat.cnf import Literal
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import CdclSolver, SolverConfig, SolverResult, SolverStats


class TimeFrameExpansion:
    """Incremental k-cycle unrolling of a sequential netlist's CNF encoding."""

    def __init__(
        self,
        netlist: Netlist,
        num_frames: int = 1,
        initial_state: dict[str, int] | None = None,
        config: SolverConfig | None = None,
    ) -> None:
        if not netlist.is_sequential:
            raise ValueError(
                "TimeFrameExpansion requires a sequential netlist; combinational "
                "circuits have no transition relation to unroll (use CircuitEncoder)"
            )
        if num_frames < 1:
            raise ValueError(f"num_frames must be >= 1, got {num_frames}")
        self.netlist = netlist
        self.interface = sequential_interface(netlist)
        self._core = ensure_combinational(netlist)
        self._encoder = CircuitEncoder(self._core)
        self._template = self._encoder.cnf
        self._frame_size = self._template.num_vars
        self.config = config or SolverConfig()
        self._solver = CdclSolver(config=self.config)
        self._frame_base: list[int] = []
        self._next_var = 0
        self.num_queries = 0
        state = self.interface.reset_assignment()
        if initial_state:
            unknown = sorted(set(initial_state) - set(state))
            if unknown:
                raise KeyError(
                    f"initial state names non-state nets: {', '.join(unknown)}"
                )
            for net, value in initial_state.items():
                if value not in (0, 1):
                    raise ValueError(
                        f"initial state for {net!r} must be 0 or 1, got {value}"
                    )
                state[net] = value
        self._initial_state = state
        self.extend_to(num_frames)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of unrolled clock cycles."""
        return len(self._frame_base)

    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary inputs: the per-cycle stimulus of the unrolled machine."""
        return self.interface.inputs

    def variable(self, net: str, frame: int) -> int:
        """CNF variable of ``net`` at clock cycle ``frame``."""
        if not 0 <= frame < self.num_frames:
            raise IndexError(
                f"frame {frame} out of range (expansion has {self.num_frames} frames)"
            )
        return self._frame_base[frame] + self._encoder.variable(net)

    def literal(self, net: str, value: int, frame: int) -> Literal:
        """Literal asserting ``net`` equals ``value`` at cycle ``frame``."""
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value}")
        variable = self.variable(net, frame)
        return variable if value == 1 else -variable

    def assumptions_for(self, assignment: dict[str, int], frame: int) -> list[Literal]:
        """Assumption literals for a net -> value mapping at one cycle."""
        return [self.literal(net, value, frame) for net, value in assignment.items()]

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def extend_to(self, num_frames: int) -> "TimeFrameExpansion":
        """Unroll up to ``num_frames`` cycles, reusing the existing solver.

        Already-built frames are kept (along with every learned clause); a
        request smaller than the current depth is a no-op.  Returns ``self``
        for chaining.
        """
        if num_frames < 1:
            raise ValueError(f"num_frames must be >= 1, got {num_frames}")
        while self.num_frames < num_frames:
            frame = self.num_frames
            base = self._next_var
            self._next_var += self._frame_size
            self._solver.reserve_vars(self._next_var)
            self._frame_base.append(base)
            for clause in self._template.clauses:
                self._solver.add_clause(
                    [lit + base if lit > 0 else lit - base for lit in clause]
                )
            if frame == 0:
                for net, value in self._initial_state.items():
                    self._solver.add_clause([self.literal(net, value, 0)])
            else:
                for q, d in zip(self.interface.state, self.interface.next_state):
                    q_var = self.variable(q, frame)
                    d_var = self.variable(d, frame - 1)
                    self._solver.add_clause([-q_var, d_var])
                    self._solver.add_clause([q_var, -d_var])
        return self

    def new_variable(self) -> int:
        """Allocate one fresh auxiliary variable (shared with frame blocks)."""
        self._next_var += 1
        self._solver.reserve_vars(self._next_var)
        return self._next_var

    def add_clause(self, literals: list[Literal]) -> None:
        """Add a clause over frame and/or auxiliary variables."""
        self._solver.add_clause(literals)

    def set_phases(self, phases: dict[int, bool]) -> None:
        """Set preferred decision phases (see :meth:`CdclSolver.set_phases`)."""
        self._solver.set_phases(phases)

    # ------------------------------------------------------------------
    # Solving and decoding
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[Literal] | None = None) -> SolverResult:
        """Solve the unrolled formula under optional assumption literals."""
        self.num_queries += 1
        return self._solver.solve(assumptions)

    def stats(self) -> SolverStats:
        """Cumulative solver statistics across every query so far."""
        return self._solver.stats()

    def decode_inputs(self, model: dict[int, bool]) -> np.ndarray:
        """Per-cycle primary-input values of a model.

        Returns a ``(num_frames, num_inputs)`` uint8 array whose row ``t`` is
        the stimulus the model applies at clock cycle ``t`` — directly usable
        as one sequence of a :class:`~repro.core.patterns.SequenceSet`.
        """
        inputs = self.interface.inputs
        sequence = np.zeros((self.num_frames, len(inputs)), dtype=np.uint8)
        for frame in range(self.num_frames):
            for column, net in enumerate(inputs):
                sequence[frame, column] = int(model.get(self.variable(net, frame), False))
        return sequence

    def decode_net(self, model: dict[int, bool], net: str) -> list[int]:
        """The per-cycle values the model assigns to one net."""
        return [
            int(model.get(self.variable(net, frame), False))
            for frame in range(self.num_frames)
        ]


__all__ = ["TimeFrameExpansion"]
