"""Logic simulation, signal probabilities, rare nets, and testability.

The hot path is the compiled engine (:mod:`repro.simulation.compiled`);
:class:`BitParallelSimulator` remains as a dict-API compatibility shim.
"""

from repro.simulation.compiled import (
    CompiledNetlist,
    CompiledSequentialNetlist,
    batched_conjunctions,
    compile_netlist,
    compile_sequential_netlist,
    conjunction_words,
)
from repro.simulation.logic_sim import (
    BitParallelSimulator,
    simulate_pattern,
    simulate_sequences,
)
from repro.simulation.probability import (
    cop_probabilities,
    estimate_sequential_signal_probabilities,
    estimate_signal_probabilities,
)
from repro.simulation.rare_nets import RareNet, extract_rare_nets
from repro.simulation.testability import scoap_testability

__all__ = [
    "BitParallelSimulator",
    "CompiledNetlist",
    "CompiledSequentialNetlist",
    "compile_netlist",
    "compile_sequential_netlist",
    "batched_conjunctions",
    "conjunction_words",
    "simulate_pattern",
    "simulate_sequences",
    "estimate_signal_probabilities",
    "estimate_sequential_signal_probabilities",
    "cop_probabilities",
    "RareNet",
    "extract_rare_nets",
    "scoap_testability",
]
