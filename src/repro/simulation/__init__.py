"""Logic simulation, signal probabilities, rare nets, and testability."""

from repro.simulation.logic_sim import BitParallelSimulator, simulate_pattern
from repro.simulation.probability import estimate_signal_probabilities, cop_probabilities
from repro.simulation.rare_nets import RareNet, extract_rare_nets
from repro.simulation.testability import scoap_testability

__all__ = [
    "BitParallelSimulator",
    "simulate_pattern",
    "estimate_signal_probabilities",
    "cop_probabilities",
    "RareNet",
    "extract_rare_nets",
    "scoap_testability",
]
