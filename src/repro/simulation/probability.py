"""Signal-probability estimation.

Two estimators are provided:

- :func:`estimate_signal_probabilities` — Monte-Carlo estimation by random
  logic simulation, matching the paper's flow (step ❶ in Figure 4: "logic
  simulations" feed the rareness filter).
- :func:`cop_probabilities` — the analytic COP (Controllability-Observability
  Program) propagation that treats gate inputs as independent.  It is exact on
  fan-out-free circuits and serves as a fast cross-check and as an input to
  the SCOAP-flavoured heuristics used by the TGRL baseline.

For raw sequential circuits,
:func:`estimate_sequential_signal_probabilities` replaces the full-scan
assumption (every flip-flop uniformly random) with the *reached* state
distribution: random input sequences are clocked from reset and activation
counts are aggregated across cycles, so a net that is rare only because the
state machine rarely visits the enabling states is measured as such.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.simulation.compiled import compile_netlist, compile_sequential_netlist
from repro.utils.rng import RngLike


def estimate_signal_probabilities(
    netlist: Netlist,
    num_patterns: int = 4096,
    seed: RngLike = None,
) -> dict[str, float]:
    """Estimate P(net = 1) for every net by simulating random patterns.

    Runs on the compiled engine: the netlist is lowered once (and cached), the
    random words are evaluated matrix-at-once, and the per-net popcounts come
    back as a single vectorised ``bitwise_count``.
    """
    if num_patterns <= 0:
        raise ValueError(f"num_patterns must be positive, got {num_patterns}")
    compiled = compile_netlist(netlist)
    counts = compiled.count_ones(num_patterns, seed=seed)
    return {
        net: int(counts[index]) / num_patterns
        for index, net in enumerate(compiled.net_names)
    }


def estimate_sequential_signal_probabilities(
    netlist: Netlist,
    cycles: int,
    num_sequences: int = 4096,
    seed: RngLike = None,
) -> dict[str, float]:
    """Estimate state-dependent P(net = 1) on a raw sequential netlist.

    ``num_sequences`` random input sequences of length ``cycles`` are stepped
    from the all-zero reset state on the multi-cycle compiled engine; each
    net's probability is its 1-count aggregated over **all** cycles divided by
    ``num_sequences * cycles``.  Flip-flop Q nets therefore reflect the state
    distribution the machine actually reaches within ``cycles`` clocks of
    reset — typically far more biased than the uniform pseudo-input
    assumption of the full-scan view.
    """
    if num_sequences <= 0:
        raise ValueError(f"num_sequences must be positive, got {num_sequences}")
    compiled = compile_sequential_netlist(netlist)
    counts = compiled.count_ones_per_cycle(num_sequences, cycles, seed=seed)
    total = num_sequences * cycles
    aggregated = counts.sum(axis=0)
    return {
        net: int(aggregated[index]) / total
        for index, net in enumerate(compiled.net_names)
    }


def cop_probabilities(netlist: Netlist, input_probability: float = 0.5) -> dict[str, float]:
    """Analytic signal probabilities assuming independent gate inputs (COP).

    Args:
        netlist: combinational netlist.
        input_probability: P(input = 1) for every controllable net.
    """
    if not 0.0 <= input_probability <= 1.0:
        raise ValueError(f"input_probability must be in [0, 1], got {input_probability}")
    probabilities: dict[str, float] = {
        net: input_probability for net in netlist.combinational_sources()
    }
    for gate in netlist.topological_gates():
        operand_probabilities = [probabilities[net] for net in gate.inputs]
        probabilities[gate.output] = _gate_probability(gate.gate_type, operand_probabilities)
    return probabilities


def _gate_probability(gate_type: GateType, operands: list[float]) -> float:
    """Probability that a gate output is 1 given independent input probabilities."""
    if gate_type in (GateType.AND, GateType.NAND):
        value = 1.0
        for p in operands:
            value *= p
        return 1.0 - value if gate_type is GateType.NAND else value
    if gate_type in (GateType.OR, GateType.NOR):
        value = 1.0
        for p in operands:
            value *= 1.0 - p
        return value if gate_type is GateType.NOR else 1.0 - value
    if gate_type in (GateType.XOR, GateType.XNOR):
        value = 0.0
        for p in operands:
            value = value * (1.0 - p) + (1.0 - value) * p
        return 1.0 - value if gate_type is GateType.XNOR else value
    if gate_type is GateType.NOT:
        return 1.0 - operands[0]
    if gate_type is GateType.BUF:
        return operands[0]
    raise ValueError(f"unknown gate type {gate_type!r}")


__all__ = [
    "estimate_signal_probabilities",
    "estimate_sequential_signal_probabilities",
    "cop_probabilities",
]
