"""Compiled bit-parallel simulation engine.

:class:`CompiledNetlist` lowers a :class:`~repro.circuits.netlist.Netlist`
once into flat numpy index arrays and then evaluates every net on a single
``(num_nets, num_words)`` ``uint64`` value matrix:

- every net gets a dense integer id (sources first, then gate outputs);
- gates are levelised and grouped by ``(level, word-op, fan-in)``; each group
  stores one ``(fanin, group_size)`` operand-id buffer and one output-id
  vector, so a whole group evaluates as a single ``ufunc.reduce`` over a
  fancy-indexed operand block — there is no per-gate Python dispatch on the
  hot path;
- compilation results are cached on the netlist itself (via
  :meth:`Netlist.memo`), so repeated simulations of the same structure —
  signal-probability estimation, baseline pattern search, Trojan-coverage
  evaluation — share one compiled artefact that is invalidated automatically
  when the netlist mutates.

The engine also exposes the packed value matrix directly, which enables
*batched multi-Trojan evaluation*: a whole population of trigger conjunctions
is checked against one clean-netlist simulation by AND-reducing the packed
rows of the trigger nets (see :func:`batched_conjunctions` and
:mod:`repro.trojan.evaluation`), instead of simulating one infected netlist
per Trojan.

Levelised-group layout (the invariant everything above relies on):

- the schedule is a tuple of :class:`_GateGroup` sorted by ``(level,
  reduction ufunc)``; because every operand of a level-``L`` gate has level
  ``< L``, each group only reads rows that earlier groups (or the sources)
  have already written, so groups can execute strictly in schedule order with
  no further dependency tracking;
- within a group, ``operands`` is a ``(fanin, group_size)`` int64 id matrix
  padded with the hidden constant rows (``const0``/``const1`` live *after*
  the real nets at ids ``num_nets`` and ``num_nets + 1``) up to the group's
  widest gate, so one fancy-index + ``ufunc.reduce(axis=0)`` evaluates the
  whole group;
- inverting gate types are folded into a per-column XOR mask rather than
  separate groups, so a level compiles to at most one group per reduction
  family (AND, OR, XOR).

**Sequential circuits.** :class:`CompiledSequentialNetlist` extends the same
machinery across clock cycles: the flip-flop boundary is cut (the full-scan
combinational core is compiled once), a ``(num_state_bits, num_words)``
uint64 state matrix carries 64 *pattern sequences* per word, and each clock
cycle is one ``run_packed`` call whose next-state rows are gathered back into
the state matrix.  The per-cycle value matrices stack into a
``(cycles, num_nets, num_words)`` tensor that the state-dependent rare-net
extraction and the multi-cycle Trojan evaluator consume directly (see
:func:`conjunction_words` for the packed per-cycle trigger primitive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.gates import Gate, GateType
from repro.circuits.netlist import Netlist
from repro.obs.profile import hot_path, timed
from repro.utils.rng import RngLike, make_rng
from time import perf_counter

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_MEMO_KEY = "compiled_netlist"
_SEQUENTIAL_MEMO_KEY = "compiled_sequential_netlist"

#: Word-level reduction family implementing each gate type, plus an inversion
#: flag.  BUF/NOT join the AND family (an AND over one operand is the
#: identity), so a whole level usually compiles to at most three groups.
_OPCODES: dict[GateType, tuple[np.ufunc, bool]] = {
    GateType.AND: (np.bitwise_and, False),
    GateType.NAND: (np.bitwise_and, True),
    GateType.OR: (np.bitwise_or, False),
    GateType.NOR: (np.bitwise_or, True),
    GateType.XOR: (np.bitwise_xor, False),
    GateType.XNOR: (np.bitwise_xor, True),
    GateType.BUF: (np.bitwise_and, False),
    GateType.NOT: (np.bitwise_and, True),
}

#: Identity element of each reduction family, used to pad narrow gates up to
#: the group fan-in (AND pads with constant 1, OR/XOR with constant 0).
_PAD_WITH_ONES = {np.bitwise_and: True, np.bitwise_or: False, np.bitwise_xor: False}


@dataclass(frozen=True)
class _GateGroup:
    """One batch of same-family gates evaluated by a single numpy reduction.

    Inverting gate types (NAND/NOR/XNOR/NOT) are folded into ``invert_mask``,
    a per-gate uint64 vector XOR-ed into the reduced result, so mixed
    inverting/non-inverting gates share one group.
    """

    reduce: np.ufunc
    operands: np.ndarray  # (fanin, group_size) int64 net ids
    outputs: np.ndarray  # (group_size,) int64 net ids
    invert_mask: np.ndarray | None  # (group_size, 1) uint64, or None


class CompiledNetlist:
    """A netlist lowered to flat index buffers for matrix-at-once simulation."""

    def __init__(self, netlist: Netlist) -> None:
        if netlist.is_sequential:
            raise ValueError(
                "CompiledNetlist requires a combinational netlist; apply "
                "full-scan conversion first (repro.circuits.scan.ensure_combinational)"
            )
        self.netlist = netlist
        self._sources: tuple[str, ...] = netlist.combinational_sources()
        order = netlist.topological_gates()
        names = list(self._sources) + [gate.output for gate in order]
        self._index: dict[str, int] = {net: i for i, net in enumerate(names)}
        if len(self._index) != len(names):
            raise ValueError("netlist has duplicate net names across sources and gates")
        self.net_names: tuple[str, ...] = tuple(names)
        self.num_sources = len(self._sources)
        self.num_nets = len(names)
        # Two hidden constant rows (all-zeros / all-ones) appended after the
        # real nets serve as reduction-identity padding operands.
        self._const0_id = self.num_nets
        self._const1_id = self.num_nets + 1
        self._schedule, self._levelized = self._build_schedule(order, netlist.levels())

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def sources(self) -> tuple[str, ...]:
        """Controllable nets (primary inputs; pseudo inputs after scan)."""
        return self._sources

    def index_of(self, net: str) -> int:
        """Dense id of ``net`` (row index in the value matrix)."""
        try:
            return self._index[net]
        except KeyError:
            raise KeyError(
                f"net {net!r} does not exist in netlist {self.netlist.name!r}"
            ) from None

    def __contains__(self, net: str) -> bool:
        return net in self._index

    def levelized_gates(self) -> tuple[Gate, ...]:
        """Gates in the compiled evaluation order (levelised, group-batched)."""
        return self._levelized

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate packed input words into a ``(num_nets, num_words)`` matrix.

        ``packed_inputs`` must have shape ``(num_sources, num_words)``; row
        ``i`` of the result holds the packed values of net ``net_names[i]``.
        """
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim != 2 or packed_inputs.shape[0] != self.num_sources:
            raise ValueError(
                f"packed inputs must have shape ({self.num_sources}, num_words), "
                f"got {packed_inputs.shape}"
            )
        num_words = packed_inputs.shape[1]
        # Fetched per call (every=1): one combinational sweep is orders of
        # magnitude heavier than the probe, so sampling is unnecessary here.
        step_probe = hot_path("sim.step", every=1)
        timing = step_probe is not None and step_probe.sample()
        if timing:
            probe_start = perf_counter()
        values = np.empty((self.num_nets + 2, num_words), dtype=np.uint64)
        values[: self.num_sources] = packed_inputs
        values[self._const0_id] = 0
        values[self._const1_id] = _ALL_ONES
        for group in self._schedule:
            block = values[group.operands]  # (fanin, size, num_words), a copy
            out = group.reduce.reduce(block, axis=0)
            if group.invert_mask is not None:
                out ^= group.invert_mask
            values[group.outputs] = out
        if timing:
            step_probe.observe(perf_counter() - probe_start)
        return values[: self.num_nets]

    def run_patterns(self, patterns: np.ndarray) -> tuple[np.ndarray, int]:
        """Pack and simulate a ``(num_patterns, num_sources)`` 0/1 array.

        Returns ``(matrix, num_patterns)`` with ``matrix`` as in
        :meth:`run_packed`.
        """
        from repro.simulation.logic_sim import pack_patterns

        patterns = np.atleast_2d(np.asarray(patterns))
        if patterns.shape[1] != self.num_sources:
            raise ValueError(
                f"pattern width {patterns.shape[1]} does not match the number of "
                f"controllable nets ({self.num_sources})"
            )
        packed, num_patterns = pack_patterns(patterns)
        return self.run_packed(packed), num_patterns

    def count_ones(self, num_patterns: int, seed: RngLike = None) -> np.ndarray:
        """Per-net count of 1-values over ``num_patterns`` random patterns.

        Random input words are drawn directly in packed form; the result is an
        ``int64`` vector aligned with :attr:`net_names`.  The RNG draw matches
        the historical :meth:`BitParallelSimulator.count_ones` exactly, so
        seeded probability estimates are reproducible across engines.
        """
        if num_patterns <= 0:
            return np.zeros(self.num_nets, dtype=np.int64)
        rng = make_rng(seed)
        num_words = max(1, (num_patterns + _WORD_BITS - 1) // _WORD_BITS)
        packed = rng.integers(
            0, 2**64 - 1, size=(self.num_sources, num_words),
            dtype=np.uint64, endpoint=True,
        )
        tail_bits = num_patterns - (num_words - 1) * _WORD_BITS
        if 0 < tail_bits < _WORD_BITS:
            packed[:, -1] &= np.uint64((1 << tail_bits) - 1)
        values = self.run_packed(packed)
        if 0 < tail_bits < _WORD_BITS:
            values[:, -1] &= np.uint64((1 << tail_bits) - 1)
        return np.bitwise_count(values).sum(axis=1, dtype=np.int64)

    def activations(
        self, patterns: np.ndarray, requirements: list[tuple[str, int]]
    ) -> np.ndarray:
        """Boolean matrix ``[pattern, requirement]``: net takes the required value.

        One simulation of the pattern block answers all ``(net, value)``
        requirements at once; only the requested rows are unpacked.
        """
        matrix, num_patterns = self.run_patterns(patterns)
        if not requirements:
            return np.zeros((num_patterns, 0), dtype=bool)
        ids = np.fromiter(
            (self.index_of(net) for net, _ in requirements), dtype=np.int64
        )
        rare_one = np.fromiter(
            (value == 1 for _, value in requirements), dtype=bool
        )
        words = matrix[ids]
        words[~rare_one] = ~words[~rare_one]
        return unpack_matrix(words, num_patterns).T.astype(bool)

    def values_dict(
        self, matrix: np.ndarray, num_patterns: int
    ) -> dict[str, np.ndarray]:
        """Unpack a value matrix into the legacy net -> 0/1 vector mapping."""
        bits = unpack_matrix(matrix, num_patterns)
        return {net: bits[index] for index, net in enumerate(self.net_names)}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_schedule(
        self, order: tuple[Gate, ...], levels: dict[str, int]
    ) -> tuple[tuple[_GateGroup, ...], tuple[Gate, ...]]:
        grouped: dict[tuple[int, np.ufunc], list[Gate]] = {}
        for gate in order:
            reduce, _ = _OPCODES[gate.gate_type]
            grouped.setdefault((levels[gate.output], reduce), []).append(gate)
        schedule: list[_GateGroup] = []
        levelized: list[Gate] = []
        for key in sorted(grouped, key=lambda k: (k[0], k[1].__name__)):
            gates = grouped[key]
            _, reduce = key
            fanin = max(gate.fanin for gate in gates)
            pad_id = self._const1_id if _PAD_WITH_ONES[reduce] else self._const0_id
            operands = np.full((fanin, len(gates)), pad_id, dtype=np.int64)
            outputs = np.empty(len(gates), dtype=np.int64)
            invert_mask = np.zeros((len(gates), 1), dtype=np.uint64)
            any_inverting = False
            for column, gate in enumerate(gates):
                outputs[column] = self._index[gate.output]
                if _OPCODES[gate.gate_type][1]:
                    invert_mask[column, 0] = _ALL_ONES
                    any_inverting = True
                for row, source in enumerate(gate.inputs):
                    source_id = self._index.get(source)
                    if source_id is None:
                        raise KeyError(
                            f"gate {gate.output!r} reads undriven net {source!r}"
                        )
                    operands[row, column] = source_id
            schedule.append(
                _GateGroup(
                    reduce=reduce,
                    operands=operands,
                    outputs=outputs,
                    invert_mask=invert_mask if any_inverting else None,
                )
            )
            levelized.extend(gates)
        return tuple(schedule), tuple(levelized)


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile ``netlist``, reusing the cached artefact when structure allows.

    The compiled view is memoised on the netlist and dropped automatically on
    any structural mutation, so callers can invoke this freely on hot paths.
    """
    return netlist.memo(_MEMO_KEY, lambda: CompiledNetlist(netlist))


class CompiledSequentialNetlist:
    """A sequential netlist lowered for multi-cycle matrix-at-once simulation.

    The flip-flop boundary is cut once: the combinational core (identical to
    the full-scan view, so net names and ids match the combinational flow) is
    compiled to the levelised group schedule, and clocking is a state-matrix
    update.  A ``(num_state_bits, num_words)`` uint64 state matrix carries 64
    independent *pattern sequences* per word; every clock cycle evaluates the
    core once on ``[per-cycle inputs; current state]`` and gathers the
    flip-flop D rows of the result back into the state matrix.

    All sequences start from the all-zero reset state unless an explicit
    ``initial_state`` is given, and all sequences advance in lockstep — cycle
    ``t`` of every packed lane is simulated by the same ``run_packed`` call.
    """

    def __init__(self, netlist: Netlist) -> None:
        from repro.circuits.scan import ensure_combinational, sequential_interface

        if not netlist.is_sequential:
            raise ValueError(
                "CompiledSequentialNetlist requires a sequential netlist; "
                "combinational circuits have no state to step (use CompiledNetlist)"
            )
        self.netlist = netlist
        self.interface = sequential_interface(netlist)
        self._core_netlist = ensure_combinational(netlist)
        self._core = compile_netlist(self._core_netlist)
        if self._core.sources != self.interface.inputs + self.interface.state:
            raise ValueError(
                "full-scan source ordering does not match the sequential "
                "interface (inputs followed by flip-flop Q nets)"
            )
        self.net_names: tuple[str, ...] = self._core.net_names
        self.num_nets = self._core.num_nets
        self.num_inputs = len(self.interface.inputs)
        self.num_state_bits = self.interface.num_state_bits
        self._next_state_rows = np.fromiter(
            (self._core.index_of(d) for d in self.interface.next_state),
            dtype=np.int64,
            count=self.num_state_bits,
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary inputs: the per-cycle stimulus of a test sequence."""
        return self.interface.inputs

    def index_of(self, net: str) -> int:
        """Dense id of ``net`` (row index within each cycle's value matrix)."""
        return self._core.index_of(net)

    def __contains__(self, net: str) -> bool:
        return net in self._core

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run_packed_sequence(
        self, packed_inputs: np.ndarray, initial_state: np.ndarray | None = None
    ) -> np.ndarray:
        """Step packed input words across clock cycles.

        ``packed_inputs`` must have shape ``(cycles, num_inputs, num_words)``;
        bit lane ``b`` of word ``w`` across all cycles forms one input
        sequence.  ``initial_state`` is an optional packed
        ``(num_state_bits, num_words)`` state matrix (default: all-zero
        reset).  Returns a ``(cycles, num_nets, num_words)`` tensor whose
        slice ``[t]`` is the value matrix of cycle ``t``.
        """
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim != 3 or packed_inputs.shape[1] != self.num_inputs:
            raise ValueError(
                f"packed sequence inputs must have shape (cycles, "
                f"{self.num_inputs}, num_words), got {packed_inputs.shape}"
            )
        cycles, _, num_words = packed_inputs.shape
        if cycles == 0:
            raise ValueError("a sequence needs at least one clock cycle")
        if initial_state is None:
            state = np.zeros((self.num_state_bits, num_words), dtype=np.uint64)
        else:
            state = np.asarray(initial_state, dtype=np.uint64)
            if state.shape != (self.num_state_bits, num_words):
                raise ValueError(
                    f"initial state must have shape ({self.num_state_bits}, "
                    f"{num_words}), got {state.shape}"
                )
        values = np.empty((cycles, self.num_nets, num_words), dtype=np.uint64)
        sources = np.empty((self.num_inputs + self.num_state_bits, num_words), dtype=np.uint64)
        with timed("sim.sequence"):
            for cycle in range(cycles):
                sources[: self.num_inputs] = packed_inputs[cycle]
                sources[self.num_inputs:] = state
                values[cycle] = self._core.run_packed(sources)
                state = values[cycle][self._next_state_rows]
        return values

    def run_sequences(
        self, sequences: np.ndarray, initial_state: np.ndarray | None = None
    ) -> tuple[np.ndarray, int]:
        """Pack and simulate a ``(num_sequences, cycles, num_inputs)`` 0/1 array.

        ``initial_state`` is an optional unpacked ``(num_sequences,
        num_state_bits)`` 0/1 array (default: reset).  Returns
        ``(tensor, num_sequences)`` with ``tensor`` as in
        :meth:`run_packed_sequence`.
        """
        from repro.simulation.logic_sim import pack_patterns

        sequences = np.asarray(sequences)
        if sequences.ndim != 3 or sequences.shape[2] != self.num_inputs:
            raise ValueError(
                f"sequences must have shape (num_sequences, cycles, "
                f"{self.num_inputs}), got {sequences.shape}"
            )
        num_sequences, cycles, _ = sequences.shape
        if cycles == 0:
            raise ValueError("a sequence needs at least one clock cycle")
        packed_cycles = [pack_patterns(sequences[:, cycle, :])[0] for cycle in range(cycles)]
        packed = np.stack(packed_cycles)
        packed_state = None
        if initial_state is not None:
            initial_state = np.asarray(initial_state)
            if initial_state.shape != (num_sequences, self.num_state_bits):
                raise ValueError(
                    f"initial state must have shape ({num_sequences}, "
                    f"{self.num_state_bits}), got {initial_state.shape}"
                )
            packed_state = pack_patterns(initial_state)[0]
        return self.run_packed_sequence(packed, initial_state=packed_state), num_sequences

    def count_ones_per_cycle(
        self, num_sequences: int, cycles: int, seed: RngLike = None
    ) -> np.ndarray:
        """Per-cycle, per-net count of 1-values over random input sequences.

        Draws ``num_sequences`` random input sequences of length ``cycles``
        directly in packed form, steps them from reset, and returns an
        ``int64`` matrix of shape ``(cycles, num_nets)`` aligned with
        :attr:`net_names`.  This is the substrate of state-dependent rare-net
        extraction: activation counts are taken under the circuit's *reached*
        state distribution instead of the full-scan assumption that every
        flip-flop is directly controllable.
        """
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if num_sequences <= 0:
            return np.zeros((cycles, self.num_nets), dtype=np.int64)
        rng = make_rng(seed)
        num_words = max(1, (num_sequences + _WORD_BITS - 1) // _WORD_BITS)
        packed = rng.integers(
            0, 2**64 - 1, size=(cycles, self.num_inputs, num_words),
            dtype=np.uint64, endpoint=True,
        )
        tail_bits = num_sequences - (num_words - 1) * _WORD_BITS
        if 0 < tail_bits < _WORD_BITS:
            packed[:, :, -1] &= np.uint64((1 << tail_bits) - 1)
        values = self.run_packed_sequence(packed)
        if 0 < tail_bits < _WORD_BITS:
            values[:, :, -1] &= np.uint64((1 << tail_bits) - 1)
        return np.bitwise_count(values).sum(axis=2, dtype=np.int64)


def compile_sequential_netlist(netlist: Netlist) -> CompiledSequentialNetlist:
    """Compile a sequential ``netlist`` for multi-cycle simulation (memoised).

    Like :func:`compile_netlist`, the artefact lives in the netlist's memo
    cache and is invalidated automatically on structural mutation.
    """
    return netlist.memo(
        _SEQUENTIAL_MEMO_KEY, lambda: CompiledSequentialNetlist(netlist)
    )


def unpack_matrix(words: np.ndarray, num_patterns: int) -> np.ndarray:
    """Unpack ``(rows, num_words)`` uint64 words into ``(rows, num_patterns)`` bits."""
    words = np.atleast_2d(np.asarray(words, dtype=np.uint64))
    if num_patterns <= 0:
        return np.zeros((words.shape[0], 0), dtype=np.uint8)
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    bits = ((words[:, :, None] >> shifts[None, None, :]) & np.uint64(1)).astype(np.uint8)
    return bits.reshape(words.shape[0], -1)[:, :num_patterns]


def batched_conjunctions(
    matrix: np.ndarray,
    conjunctions: list[tuple[np.ndarray, np.ndarray]],
    num_patterns: int,
) -> np.ndarray:
    """Evaluate many value conjunctions on one packed value matrix.

    Each conjunction is ``(net_ids, required_values)``; the result is a
    boolean ``(num_conjunctions, num_patterns)`` activation matrix.  This is
    the batched multi-Trojan primitive: conjunctions of equal width are
    stacked and AND-reduced together, so the cost of evaluating a whole
    Trojan population is a handful of numpy reductions over rows of a single
    clean-netlist simulation.
    """
    activations = np.zeros((len(conjunctions), num_patterns), dtype=bool)
    if not conjunctions or num_patterns == 0:
        return activations
    fired = conjunction_words(matrix, conjunctions)
    return unpack_matrix(fired, num_patterns).astype(bool)


def conjunction_words(
    matrix: np.ndarray, conjunctions: list[tuple[np.ndarray, np.ndarray]]
) -> np.ndarray:
    """Packed activation words of many conjunctions on one value matrix.

    The packed counterpart of :func:`batched_conjunctions`: the result has
    shape ``(num_conjunctions, num_words)`` and bit ``b`` of word ``w`` in row
    ``t`` is 1 iff pattern ``w * 64 + b`` fires conjunction ``t``.  The
    multi-cycle Trojan evaluator calls this once per clock cycle and combines
    the per-cycle words with bit-plane accumulators, so pattern-sequence
    lanes stay packed end to end.
    """
    num_words = matrix.shape[1]
    fired = np.zeros((len(conjunctions), num_words), dtype=np.uint64)
    by_width: dict[int, list[int]] = {}
    for position, (ids, _) in enumerate(conjunctions):
        by_width.setdefault(len(ids), []).append(position)
    for _width, positions in by_width.items():
        ids = np.stack([conjunctions[p][0] for p in positions])  # (T, width)
        required = np.stack([conjunctions[p][1] for p in positions])  # (T, width)
        words = matrix[ids]  # (T, width, num_words), a copy
        flip = required == 0
        words[flip] = ~words[flip]
        fired[positions] = np.bitwise_and.reduce(words, axis=1)  # (T, num_words)
    return fired


__all__ = [
    "CompiledNetlist",
    "CompiledSequentialNetlist",
    "compile_netlist",
    "compile_sequential_netlist",
    "batched_conjunctions",
    "conjunction_words",
    "unpack_matrix",
]
