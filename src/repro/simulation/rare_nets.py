"""Rare-net extraction.

A net is *rare* at threshold ``theta`` when the probability of it taking one
of its logic values under random stimuli is below ``theta`` (footnote 1 of the
paper).  The value it is biased *against* is its **rare value** — the value a
Trojan trigger would require it to take.

Rare nets are the action space of the DETERRENT agent and the sampling space
for Trojan trigger insertion, so this module is the interface between the
circuit substrate and everything above it.  Probability estimation runs on
the compiled simulation engine (:mod:`repro.simulation.compiled`), so
repeated extractions on the same netlist reuse one compiled artefact.

Passing ``cycles=N`` switches to *state-dependent* extraction on a raw
sequential netlist: activation counts are aggregated over ``N`` clock cycles
of random input sequences stepped from reset, so rareness reflects the state
distribution the machine actually reaches rather than the full-scan
assumption that every flip-flop is uniformly random.  Flip-flop Q nets are
legitimate rare nets in this mode (state bits are exactly where sequential
Trojans hide their triggers); only primary inputs stay excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Netlist
from repro.simulation.probability import (
    estimate_sequential_signal_probabilities,
    estimate_signal_probabilities,
)
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class RareNet:
    """A rare net: the net name, its rare value, and that value's probability."""

    net: str
    rare_value: int
    probability: float

    def __post_init__(self) -> None:
        if self.rare_value not in (0, 1):
            raise ValueError(f"rare_value must be 0 or 1, got {self.rare_value}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")


def extract_rare_nets(
    netlist: Netlist,
    threshold: float = 0.1,
    num_patterns: int = 4096,
    seed: RngLike = None,
    probabilities: dict[str, float] | None = None,
    exclude_sources: bool = True,
    cycles: int | None = None,
) -> list[RareNet]:
    """Identify rare nets of ``netlist`` at ``threshold``.

    Args:
        netlist: combinational (or full-scan converted) netlist — or, with
            ``cycles`` set, a raw sequential netlist.
        threshold: rareness threshold; a net is rare if min(P(0), P(1)) < threshold.
        num_patterns: random patterns (or, with ``cycles``, random input
            *sequences*) used for probability estimation when
            ``probabilities`` is not supplied.
        seed: RNG seed for the probability estimation.
        probabilities: optional precomputed P(net = 1) mapping.
        exclude_sources: drop primary/pseudo inputs (they are trivially
            controllable and never used as trigger nets).  With ``cycles``,
            flip-flop Q nets are *kept*: state bits are not directly
            controllable in the sequential view, so state-dependent rareness
            on them is meaningful.
        cycles: when set, use state-dependent extraction — aggregate per-cycle
            activation counts over ``cycles`` clock cycles of random sequences
            stepped from reset (requires a sequential netlist).

    Returns:
        Rare nets sorted by ascending probability then name (most biased first).

    A zero estimated probability over a finite sample does not prove the rare
    value is unreachable, so such nets are kept; the SAT-based compatibility
    analysis is the authoritative filter for truly constant (redundant) nets.
    """
    if not 0.0 < threshold <= 0.5:
        raise ValueError(f"threshold must be in (0, 0.5], got {threshold}")
    if cycles is not None:
        if not netlist.is_sequential:
            raise ValueError(
                "cycles-based extraction requires a sequential netlist; "
                f"{netlist.name!r} has no flip-flops"
            )
        if probabilities is None:
            probabilities = estimate_sequential_signal_probabilities(
                netlist, cycles=cycles, num_sequences=num_patterns, seed=seed
            )
        sources = set(netlist.inputs) if exclude_sources else set()
    else:
        if probabilities is None:
            probabilities = estimate_signal_probabilities(netlist, num_patterns, seed=seed)
        sources = set(netlist.combinational_sources()) if exclude_sources else set()
    rare: list[RareNet] = []
    for net, p_one in probabilities.items():
        if net in sources:
            continue
        p_zero = 1.0 - p_one
        rare_value, rare_probability = (1, p_one) if p_one < p_zero else (0, p_zero)
        if rare_probability < threshold:
            rare.append(RareNet(net=net, rare_value=rare_value, probability=rare_probability))
    rare.sort(key=lambda item: (item.probability, item.net))
    return rare


def rare_net_names(rare_nets: list[RareNet]) -> list[str]:
    """Convenience accessor: just the net names, preserving order."""
    return [item.net for item in rare_nets]


def rare_value_map(rare_nets: list[RareNet]) -> dict[str, int]:
    """Mapping net name -> rare value."""
    return {item.net: item.rare_value for item in rare_nets}


__all__ = ["RareNet", "extract_rare_nets", "rare_net_names", "rare_value_map"]
