"""Bit-parallel gate-level logic simulation (compatibility shim + packing).

The simulator packs 64 test patterns per machine word (numpy ``uint64``) and
evaluates the netlist once in topological order, so simulating ``P`` patterns
costs ``O(gates * P / 64)`` word operations.  This is the substitute for the
Synopsys VCS simulations the paper uses for rare-net extraction and for
evaluating test patterns on Trojan-infected netlists.

Since the compiled-engine refactor, the hot path lives in
:mod:`repro.simulation.compiled`: a :class:`CompiledNetlist` lowers the
netlist once into flat index buffers and evaluates all nets on a single
``(num_nets, num_words)`` matrix with grouped numpy reductions.
:class:`BitParallelSimulator` is kept as a thin compatibility shim over that
engine — it preserves the historical dict-of-arrays API that tests, examples,
and external callers rely on.  Construct it with ``engine="reference"`` to
get the original per-gate Python interpreter instead; that path exists for
differential testing and as the baseline of the engine micro-benchmark, not
for production use.

Sequential netlists must be converted to their full-scan combinational view
first (:func:`repro.circuits.scan.ensure_combinational`); the simulator
rejects netlists that still contain flip-flops to avoid silently wrong
results.  For raw (non-scan) sequential circuits, :func:`simulate_sequences`
is the naive cycle loop: it clocks the full-scan core one cycle at a time,
carrying flip-flop state between cycles as plain 0/1 arrays.  It is the
reference oracle the multi-cycle engine
(:class:`repro.simulation.compiled.CompiledSequentialNetlist`) is tested
against, and the ground-truth simulator for Trojan-infected sequential
netlists.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.simulation.compiled import compile_netlist, unpack_matrix
from repro.utils.rng import RngLike, make_rng

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def pack_patterns(patterns: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack a ``(num_patterns, num_inputs)`` 0/1 array into uint64 words.

    Returns ``(packed, num_patterns)`` where ``packed`` has shape
    ``(num_inputs, num_words)`` and bit ``p % 64`` of word ``p // 64`` holds
    pattern ``p``'s value for that input.  Inputs are validated to be 0/1:
    any other value (e.g. a stray 2) would otherwise corrupt neighbouring
    bit lanes through the packing arithmetic.
    """
    patterns = np.asarray(patterns)
    if patterns.ndim != 2:
        raise ValueError(f"patterns must be 2-D, got shape {patterns.shape}")
    if patterns.size and not np.all((patterns == 0) | (patterns == 1)):
        offending = patterns[(patterns != 0) & (patterns != 1)].ravel()[0]
        raise ValueError(
            f"patterns must contain only 0/1 values, found {offending!r}"
        )
    num_patterns, num_inputs = patterns.shape
    num_words = max(1, (num_patterns + _WORD_BITS - 1) // _WORD_BITS)
    padded = np.zeros((num_inputs, num_words * _WORD_BITS), dtype=np.uint8)
    if num_patterns:
        padded[:, :num_patterns] = patterns.T
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    packed = packed_bytes.view(np.dtype("<u8"))
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        packed = packed.astype(np.uint64)
    return np.ascontiguousarray(packed, dtype=np.uint64), num_patterns


def unpack_values(words: np.ndarray, num_patterns: int) -> np.ndarray:
    """Unpack uint64 words back into a 0/1 vector of length ``num_patterns``.

    ``num_patterns=0`` is handled explicitly and yields an empty vector.
    """
    words = np.asarray(words, dtype=np.uint64)
    if num_patterns <= 0:
        return np.zeros(0, dtype=np.uint8)
    return unpack_matrix(words[None, :], num_patterns)[0]


class BitParallelSimulator:
    """Levelised 64-way bit-parallel simulator for a combinational netlist.

    A thin shim over :class:`repro.simulation.compiled.CompiledNetlist` that
    keeps the historical per-net dict API.  ``engine="reference"`` selects
    the original per-gate Python loop (slow; used as the differential-testing
    oracle and the micro-benchmark baseline).
    """

    def __init__(self, netlist: Netlist, engine: str = "compiled") -> None:
        if netlist.is_sequential:
            raise ValueError(
                "BitParallelSimulator requires a combinational netlist; apply "
                "full-scan conversion first (repro.circuits.scan.ensure_combinational)"
            )
        if engine not in ("compiled", "reference"):
            raise ValueError(
                f"engine must be 'compiled' or 'reference', got {engine!r}"
            )
        self.netlist = netlist
        self.engine = engine
        self._sources = netlist.combinational_sources()
        self._source_index = {net: i for i, net in enumerate(self._sources)}
        self._order = netlist.topological_gates()
        self._compiled = compile_netlist(netlist) if engine == "compiled" else None

    @property
    def sources(self) -> tuple[str, ...]:
        """Controllable nets (primary inputs; pseudo inputs after scan)."""
        return self._sources

    # ------------------------------------------------------------------
    # Simulation entry points
    # ------------------------------------------------------------------
    def run_packed(self, packed_inputs: np.ndarray) -> dict[str, np.ndarray]:
        """Simulate packed input words; returns packed words for every net."""
        if self._compiled is not None:
            matrix = self._compiled.run_packed(packed_inputs)
            # net_names is ordered sources-then-topological-gates, matching
            # the historical dict ordering of this method.
            return dict(zip(self._compiled.net_names, matrix))
        num_words = packed_inputs.shape[1]
        values = {}
        for index, net in enumerate(self._sources):
            values[net] = np.asarray(packed_inputs[index], dtype=np.uint64).copy()
        for gate in self._order:
            values[gate.output] = _evaluate_packed(
                gate.gate_type, [values[s] for s in gate.inputs], num_words
            )
        return values

    def run_patterns(self, patterns: np.ndarray) -> dict[str, np.ndarray]:
        """Simulate a ``(num_patterns, num_sources)`` 0/1 array.

        Returns a mapping net -> 0/1 vector of length ``num_patterns``.
        """
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.uint8))
        if patterns.shape[1] != len(self._sources):
            raise ValueError(
                f"pattern width {patterns.shape[1]} does not match the number of "
                f"controllable nets ({len(self._sources)})"
            )
        packed, num_patterns = pack_patterns(patterns)
        packed_values = self.run_packed(packed)
        return {
            net: unpack_values(words, num_patterns)
            for net, words in packed_values.items()
        }

    def run_random(
        self, num_patterns: int, seed: RngLike = None
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Simulate ``num_patterns`` uniformly random patterns.

        Returns ``(patterns, values)`` where ``patterns`` is the generated
        0/1 array and ``values`` maps each net to its 0/1 response vector.
        """
        rng = make_rng(seed)
        patterns = rng.integers(0, 2, size=(num_patterns, len(self._sources)), dtype=np.uint8)
        return patterns, self.run_patterns(patterns)

    def count_ones(self, num_patterns: int, seed: RngLike = None) -> dict[str, int]:
        """Count, per net, how many of ``num_patterns`` random patterns set it to 1.

        This is the fast path used by signal-probability estimation: random
        input words are generated directly in packed form and only popcounts
        are kept, so memory stays ``O(nets)``.  The RNG draw is identical in
        both engines, keeping seeded estimates reproducible.
        """
        if self._compiled is not None:
            counts = self._compiled.count_ones(num_patterns, seed=seed)
            return {
                net: int(counts[index])
                for index, net in enumerate(self._compiled.net_names)
            }
        if num_patterns <= 0:
            values = self.run_packed(np.zeros((len(self._sources), 1), dtype=np.uint64))
            return {net: 0 for net in values}
        rng = make_rng(seed)
        num_words = max(1, (num_patterns + _WORD_BITS - 1) // _WORD_BITS)
        packed = rng.integers(
            0, 2**64 - 1, size=(len(self._sources), num_words),
            dtype=np.uint64, endpoint=True,
        )
        tail_bits = num_patterns - (num_words - 1) * _WORD_BITS
        tail_mask = None
        if 0 < tail_bits < _WORD_BITS:
            tail_mask = np.uint64((1 << tail_bits) - 1)
            packed[:, -1] &= tail_mask
        values = self.run_packed(packed)
        counts: dict[str, int] = {}
        for net, words in values.items():
            if tail_mask is not None:
                words = words.copy()
                words[-1] &= tail_mask
            counts[net] = int(np.bitwise_count(words).sum())
        return counts


def _evaluate_packed(
    gate_type: GateType, operands: list[np.ndarray], num_words: int
) -> np.ndarray:
    """Evaluate one gate on packed 64-bit words (reference engine only)."""
    result = operands[0].astype(np.uint64, copy=True)
    if gate_type in (GateType.AND, GateType.NAND):
        for operand in operands[1:]:
            result &= operand
        if gate_type is GateType.NAND:
            result = ~result
    elif gate_type in (GateType.OR, GateType.NOR):
        for operand in operands[1:]:
            result |= operand
        if gate_type is GateType.NOR:
            result = ~result
    elif gate_type in (GateType.XOR, GateType.XNOR):
        for operand in operands[1:]:
            result ^= operand
        if gate_type is GateType.XNOR:
            result = ~result
    elif gate_type is GateType.NOT:
        result = ~result
    elif gate_type is GateType.BUF:
        pass
    else:  # pragma: no cover - all gate types are handled above
        raise ValueError(f"unknown gate type {gate_type!r}")
    return result & np.full(num_words, _ALL_ONES, dtype=np.uint64)


def simulate_sequences(
    netlist: Netlist,
    sequences: np.ndarray,
    initial_state: np.ndarray | None = None,
    engine: str = "compiled",
) -> dict[str, np.ndarray]:
    """Naive multi-cycle simulation: clock the full-scan core one cycle at a time.

    Args:
        netlist: a raw sequential netlist (flip-flops still in place).
        sequences: 0/1 array of shape ``(num_sequences, cycles, num_inputs)``;
            ``sequences[s, t]`` is the primary-input stimulus of sequence
            ``s`` at clock cycle ``t``.
        initial_state: optional 0/1 array ``(num_sequences, num_state_bits)``
            of flip-flop Q values entering cycle 0 (default: all-zero reset).
        engine: per-cycle engine — ``"reference"`` selects the per-gate Python
            interpreter, making this a fully independent oracle for the
            multi-cycle compiled engine.

    Returns a mapping net -> 0/1 array of shape ``(cycles, num_sequences)``.
    This is deliberately the simplest correct implementation (one simulator
    call per cycle, state carried as unpacked arrays); it exists as the
    differential-testing oracle and the infected-netlist ground truth, not as
    a hot path.
    """
    from repro.circuits.scan import ensure_combinational, sequential_interface

    interface = sequential_interface(netlist)
    sequences = np.asarray(sequences, dtype=np.uint8)
    if sequences.ndim != 3 or sequences.shape[2] != len(interface.inputs):
        raise ValueError(
            f"sequences must have shape (num_sequences, cycles, "
            f"{len(interface.inputs)}), got {sequences.shape}"
        )
    num_sequences, cycles, _ = sequences.shape
    if cycles == 0:
        raise ValueError("a sequence needs at least one clock cycle")
    if initial_state is None:
        state = np.zeros((num_sequences, interface.num_state_bits), dtype=np.uint8)
    else:
        state = np.asarray(initial_state, dtype=np.uint8)
        if state.shape != (num_sequences, interface.num_state_bits):
            raise ValueError(
                f"initial state must have shape ({num_sequences}, "
                f"{interface.num_state_bits}), got {state.shape}"
            )
    simulator = BitParallelSimulator(ensure_combinational(netlist), engine=engine)
    history: dict[str, list[np.ndarray]] = {}
    for cycle in range(cycles):
        stimulus = np.hstack([sequences[:, cycle, :], state])
        values = simulator.run_patterns(stimulus)
        for net, bits in values.items():
            history.setdefault(net, []).append(bits)
        state = np.column_stack([values[d] for d in interface.next_state])
    return {net: np.stack(per_cycle) for net, per_cycle in history.items()}


def simulate_pattern(netlist: Netlist, assignment: dict[str, int]) -> dict[str, int]:
    """Simulate a single input assignment given as a net-name -> 0/1 mapping.

    Convenience wrapper used by tests, examples, and the Trojan evaluator's
    scalar cross-checks.  Repeated calls on the same netlist reuse the cached
    compiled engine, so this stays cheap inside loops.
    """
    simulator = BitParallelSimulator(netlist)
    vector = np.zeros((1, len(simulator.sources)), dtype=np.uint8)
    for index, net in enumerate(simulator.sources):
        if net not in assignment:
            raise KeyError(f"assignment missing controllable net {net!r}")
        vector[0, index] = 1 if assignment[net] else 0
    values = simulator.run_patterns(vector)
    return {net: int(bits[0]) for net, bits in values.items()}


__all__ = [
    "BitParallelSimulator",
    "pack_patterns",
    "unpack_values",
    "simulate_pattern",
    "simulate_sequences",
]
