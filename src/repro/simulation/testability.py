"""SCOAP testability measures (CC0, CC1, CO).

The TGRL baseline [Pan & Mishra, ASP-DAC 2021] rewards test patterns by a
combination of net *rareness* and *testability*; the standard testability
metrics are the SCOAP combinational controllabilities (CC0/CC1: how hard it is
to set a net to 0/1) and observability (CO: how hard it is to propagate the
net to an output).  This module implements the classic SCOAP recurrences for
the gate library used in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.simulation.compiled import compile_netlist


@dataclass(frozen=True)
class Testability:
    """SCOAP measures for one net."""

    cc0: float
    cc1: float
    co: float

    @property
    def difficulty(self) -> float:
        """Aggregate difficulty score used by the TGRL reward."""
        return self.cc0 + self.cc1 + self.co


def scoap_testability(netlist: Netlist) -> dict[str, Testability]:
    """Compute SCOAP CC0/CC1/CO for every net of a combinational netlist.

    Shares the compiled engine's cached levelised gate schedule: the forward
    controllability sweep follows the compiled evaluation order and the
    backward observability sweep follows it in reverse (levels descending),
    which is a valid (reverse) topological order.  Sequential netlists (whose
    flip-flop outputs count as sources) fall back to the netlist's own
    topological order, as the compiled engine is combinational-only.
    """
    if netlist.is_sequential:
        sources = netlist.combinational_sources()
        order = netlist.topological_gates()
    else:
        compiled = compile_netlist(netlist)
        sources = compiled.sources
        order = compiled.levelized_gates()
    cc0: dict[str, float] = {}
    cc1: dict[str, float] = {}
    for net in sources:
        cc0[net] = 1.0
        cc1[net] = 1.0
    for gate in order:
        zero, one = _controllability(gate.gate_type,
                                     [(cc0[s], cc1[s]) for s in gate.inputs])
        cc0[gate.output] = zero
        cc1[gate.output] = one

    observability: dict[str, float] = {net: float("inf") for net in cc0}
    for net in netlist.outputs:
        if net in observability:
            observability[net] = 0.0
    for gate in reversed(order):
        out_co = observability.get(gate.output, float("inf"))
        for index, source in enumerate(gate.inputs):
            side_inputs = [s for j, s in enumerate(gate.inputs) if j != index]
            propagate_cost = _propagation_cost(gate.gate_type, side_inputs, cc0, cc1)
            candidate = out_co + propagate_cost + 1.0
            if candidate < observability[source]:
                observability[source] = candidate

    return {
        net: Testability(cc0=cc0[net], cc1=cc1[net], co=observability[net])
        for net in cc0
    }


def _controllability(
    gate_type: GateType, operands: list[tuple[float, float]]
) -> tuple[float, float]:
    """SCOAP (CC0, CC1) of a gate output from its input controllabilities."""
    zeros = [z for z, _ in operands]
    ones = [o for _, o in operands]
    if gate_type is GateType.AND:
        return min(zeros) + 1.0, sum(ones) + 1.0
    if gate_type is GateType.NAND:
        return sum(ones) + 1.0, min(zeros) + 1.0
    if gate_type is GateType.OR:
        return sum(zeros) + 1.0, min(ones) + 1.0
    if gate_type is GateType.NOR:
        return min(ones) + 1.0, sum(zeros) + 1.0
    if gate_type in (GateType.XOR, GateType.XNOR):
        even, odd = _parity_controllability(operands)
        if gate_type is GateType.XOR:
            return even + 1.0, odd + 1.0
        return odd + 1.0, even + 1.0
    if gate_type is GateType.NOT:
        return ones[0] + 1.0, zeros[0] + 1.0
    if gate_type is GateType.BUF:
        return zeros[0] + 1.0, ones[0] + 1.0
    raise ValueError(f"unknown gate type {gate_type!r}")


def _parity_controllability(operands: list[tuple[float, float]]) -> tuple[float, float]:
    """Cheapest cost of achieving an even / odd number of ones across inputs."""
    even_cost, odd_cost = 0.0, float("inf")
    for zero_cost, one_cost in operands:
        new_even = min(even_cost + zero_cost, odd_cost + one_cost)
        new_odd = min(even_cost + one_cost, odd_cost + zero_cost)
        even_cost, odd_cost = new_even, new_odd
    return even_cost, odd_cost


def _propagation_cost(
    gate_type: GateType,
    side_inputs: list[str],
    cc0: dict[str, float],
    cc1: dict[str, float],
) -> float:
    """Cost of setting side inputs to the gate's non-controlling values."""
    if gate_type in (GateType.AND, GateType.NAND):
        return sum(cc1[s] for s in side_inputs)
    if gate_type in (GateType.OR, GateType.NOR):
        return sum(cc0[s] for s in side_inputs)
    if gate_type in (GateType.XOR, GateType.XNOR):
        return sum(min(cc0[s], cc1[s]) for s in side_inputs)
    return 0.0


__all__ = ["Testability", "scoap_testability"]
