"""Hardware Trojan modelling, insertion, and trigger-coverage evaluation."""

from repro.trojan.model import Trojan, TriggerCondition
from repro.trojan.insertion import sample_trojans, insert_trojan
from repro.trojan.evaluation import (
    CoverageResult,
    trigger_coverage,
    sequential_trigger_coverage,
    coverage_curve,
)

__all__ = [
    "Trojan",
    "TriggerCondition",
    "sample_trojans",
    "insert_trojan",
    "CoverageResult",
    "trigger_coverage",
    "sequential_trigger_coverage",
    "coverage_curve",
]
