"""Hardware Trojan modelling, insertion, and trigger-coverage evaluation."""

from repro.trojan.model import (
    SequentialTrigger,
    SequentialTrojan,
    Trojan,
    TriggerCondition,
)
from repro.trojan.insertion import (
    insert_sequential_trojan,
    insert_trojan,
    sample_sequential_trojans,
    sample_trojans,
)
from repro.trojan.evaluation import (
    CoverageResult,
    coverage_curve,
    sequence_ground_truth_coverage,
    sequence_trigger_coverage,
    sequential_trigger_coverage,
    trigger_coverage,
)

__all__ = [
    "Trojan",
    "TriggerCondition",
    "SequentialTrigger",
    "SequentialTrojan",
    "sample_trojans",
    "insert_trojan",
    "sample_sequential_trojans",
    "insert_sequential_trojan",
    "CoverageResult",
    "trigger_coverage",
    "sequential_trigger_coverage",
    "sequence_trigger_coverage",
    "sequence_ground_truth_coverage",
    "coverage_curve",
]
