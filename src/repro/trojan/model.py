"""Hardware Trojan model: trigger conditions and payloads.

A Trojan consists of a *trigger* — a conjunction of rare nets at their rare
values — and a *payload* that corrupts the design when the trigger fires
(Figure 1 of the paper shows the canonical XOR payload that flips an output).
For trigger-coverage evaluation only the trigger matters: a test pattern
*detects* the Trojan iff it activates the trigger condition, because an
activated trigger propagates a visible corruption through the payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.rare_nets import RareNet


@dataclass(frozen=True)
class TriggerCondition:
    """A conjunction of (net, required value) pairs forming a Trojan trigger."""

    requirements: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.requirements:
            raise ValueError("a trigger condition needs at least one net")
        nets = [net for net, _ in self.requirements]
        if len(set(nets)) != len(nets):
            raise ValueError("trigger condition references a net more than once")
        for net, value in self.requirements:
            if value not in (0, 1):
                raise ValueError(f"trigger value for net {net!r} must be 0 or 1, got {value}")

    @classmethod
    def from_rare_nets(cls, rare_nets: list[RareNet]) -> "TriggerCondition":
        """Build a trigger from rare nets at their rare values."""
        return cls(tuple((item.net, item.rare_value) for item in rare_nets))

    @property
    def width(self) -> int:
        """Trigger width: the number of nets in the conjunction."""
        return len(self.requirements)

    @property
    def nets(self) -> tuple[str, ...]:
        """The trigger nets."""
        return tuple(net for net, _ in self.requirements)

    def as_assignment(self) -> dict[str, int]:
        """Net -> required value mapping."""
        return dict(self.requirements)


@dataclass(frozen=True)
class Trojan:
    """A Trojan instance: a trigger plus the output its payload corrupts."""

    trigger: TriggerCondition
    payload_output: str
    name: str = ""

    @property
    def width(self) -> int:
        """Trigger width of this Trojan."""
        return self.trigger.width


__all__ = ["TriggerCondition", "Trojan"]
