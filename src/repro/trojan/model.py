"""Hardware Trojan model: trigger conditions and payloads.

A Trojan consists of a *trigger* — a conjunction of rare nets at their rare
values — and a *payload* that corrupts the design when the trigger fires
(Figure 1 of the paper shows the canonical XOR payload that flips an output).
For trigger-coverage evaluation only the trigger matters: a test pattern
*detects* the Trojan iff it activates the trigger condition, because an
activated trigger propagates a visible corruption through the payload.

The sequential workload family extends this with *multi-cycle* triggers
(:class:`SequentialTrigger`): the same rare-value conjunction must hold for
``count`` **consecutive** clock cycles (a shift-register trigger) or in
``count`` cycles **cumulatively** over the sequence (a counter trigger — the
classic "time-bomb" structure).  A :class:`SequentialTrojan` carries such a
trigger plus a payload output; its hardware realisation
(:func:`repro.trojan.insertion.insert_sequential_trojan`) adds real
flip-flops, so the infected netlist is a strictly sequential circuit that a
full-scan combinational test set cannot exercise faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.rare_nets import RareNet


@dataclass(frozen=True)
class TriggerCondition:
    """A conjunction of (net, required value) pairs forming a Trojan trigger."""

    requirements: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.requirements:
            raise ValueError("a trigger condition needs at least one net")
        nets = [net for net, _ in self.requirements]
        if len(set(nets)) != len(nets):
            raise ValueError("trigger condition references a net more than once")
        for net, value in self.requirements:
            if value not in (0, 1):
                raise ValueError(f"trigger value for net {net!r} must be 0 or 1, got {value}")

    @classmethod
    def from_rare_nets(cls, rare_nets: list[RareNet]) -> "TriggerCondition":
        """Build a trigger from rare nets at their rare values."""
        return cls(tuple((item.net, item.rare_value) for item in rare_nets))

    @property
    def width(self) -> int:
        """Trigger width: the number of nets in the conjunction."""
        return len(self.requirements)

    @property
    def nets(self) -> tuple[str, ...]:
        """The trigger nets."""
        return tuple(net for net, _ in self.requirements)

    def as_assignment(self) -> dict[str, int]:
        """Net -> required value mapping."""
        return dict(self.requirements)


@dataclass(frozen=True)
class Trojan:
    """A Trojan instance: a trigger plus the output its payload corrupts."""

    trigger: TriggerCondition
    payload_output: str
    name: str = ""

    @property
    def width(self) -> int:
        """Trigger width of this Trojan."""
        return self.trigger.width


#: Temporal firing rules of a multi-cycle trigger.
SEQUENTIAL_TRIGGER_MODES = ("consecutive", "cumulative")


@dataclass(frozen=True)
class SequentialTrigger:
    """A multi-cycle trigger: a rare-value conjunction with a temporal rule.

    The *condition* is the per-cycle predicate (identical to a combinational
    trigger); the trigger **fires** at clock cycle ``t`` when

    - ``mode="consecutive"``: the condition held at cycles
      ``t - count + 1 .. t`` (a ``count``-stage shift-register trigger);
    - ``mode="cumulative"``: cycle ``t`` is at least the ``count``-th cycle
      of the sequence in which the condition held (a saturating-counter
      trigger; activations need not be adjacent).

    ``count=1`` degenerates to the combinational single-cycle trigger in
    both modes.
    """

    condition: TriggerCondition
    mode: str
    count: int

    def __post_init__(self) -> None:
        if self.mode not in SEQUENTIAL_TRIGGER_MODES:
            raise ValueError(
                f"mode must be one of {SEQUENTIAL_TRIGGER_MODES}, got {self.mode!r}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    @property
    def width(self) -> int:
        """Width of the per-cycle conjunction."""
        return self.condition.width

    @property
    def nets(self) -> tuple[str, ...]:
        """The trigger nets."""
        return self.condition.nets


@dataclass(frozen=True)
class SequentialTrojan:
    """A multi-cycle Trojan: a temporal trigger plus the corrupted output."""

    trigger: SequentialTrigger
    payload_output: str
    name: str = ""

    @property
    def width(self) -> int:
        """Per-cycle trigger width of this Trojan."""
        return self.trigger.width


__all__ = [
    "TriggerCondition",
    "Trojan",
    "SEQUENTIAL_TRIGGER_MODES",
    "SequentialTrigger",
    "SequentialTrojan",
]
