"""Trigger-coverage evaluation of test-pattern sets.

Trigger coverage (footnote 2 of the paper) is the proportion of sampled
Trojan trigger conditions that a pattern set activates.  Because a trigger is
a conjunction of internal net values, coverage can be measured on the *golden*
netlist: simulate the pattern set once, then check per Trojan whether any
pattern drives all trigger nets to their required values simultaneously.
This is exactly what simulating the HT-infected netlist and comparing outputs
against the golden response would conclude, at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet
from repro.simulation.logic_sim import BitParallelSimulator
from repro.trojan.model import Trojan


@dataclass
class CoverageResult:
    """Coverage of one pattern set against one Trojan population."""

    technique: str
    num_trojans: int
    num_detected: int
    test_length: int
    detected: list[bool] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Trigger coverage in [0, 1]."""
        if self.num_trojans == 0:
            return 0.0
        return self.num_detected / self.num_trojans

    @property
    def coverage_percent(self) -> float:
        """Trigger coverage in percent (as reported in the paper's tables)."""
        return 100.0 * self.coverage


def _activation_matrix(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> np.ndarray:
    """Boolean matrix ``[trojan, pattern]``: does the pattern fire the trigger?"""
    if len(pattern_set) == 0 or not trojans:
        return np.zeros((len(trojans), len(pattern_set)), dtype=bool)
    simulator = BitParallelSimulator(netlist)
    if tuple(pattern_set.sources) != tuple(simulator.sources):
        raise ValueError(
            "pattern set source ordering does not match the netlist's controllable nets"
        )
    values = simulator.run_patterns(pattern_set.patterns)
    activations = np.zeros((len(trojans), len(pattern_set)), dtype=bool)
    for trojan_index, trojan in enumerate(trojans):
        fired = np.ones(len(pattern_set), dtype=bool)
        for net, required in trojan.trigger.requirements:
            if net not in values:
                raise KeyError(f"trigger net {net!r} does not exist in netlist {netlist.name!r}")
            fired &= values[net] == required
        activations[trojan_index] = fired
    return activations


def trigger_coverage(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> CoverageResult:
    """Fraction of Trojans whose trigger is activated by at least one pattern."""
    activations = _activation_matrix(netlist, trojans, pattern_set)
    detected = activations.any(axis=1) if activations.size else np.zeros(len(trojans), dtype=bool)
    return CoverageResult(
        technique=pattern_set.technique,
        num_trojans=len(trojans),
        num_detected=int(detected.sum()),
        test_length=len(pattern_set),
        detected=[bool(flag) for flag in detected],
    )


def coverage_curve(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> list[tuple[int, float]]:
    """Cumulative trigger coverage after each pattern (Figure 6 of the paper).

    Returns a list of ``(num_patterns, coverage_percent)`` points, one per
    pattern in the order the technique emitted them.
    """
    activations = _activation_matrix(netlist, trojans, pattern_set)
    points: list[tuple[int, float]] = []
    if not trojans:
        return points
    detected = np.zeros(len(trojans), dtype=bool)
    for pattern_index in range(len(pattern_set)):
        detected |= activations[:, pattern_index]
        points.append((pattern_index + 1, 100.0 * detected.mean()))
    return points


__all__ = ["CoverageResult", "trigger_coverage", "coverage_curve"]
