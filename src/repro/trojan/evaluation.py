"""Trigger-coverage evaluation of test-pattern sets.

Trigger coverage (footnote 2 of the paper) is the proportion of sampled
Trojan trigger conditions that a pattern set activates.  Because a trigger is
a conjunction of internal net values, coverage can be measured on the *golden*
netlist: simulate the pattern set once, then check per Trojan whether any
pattern drives all trigger nets to their required values simultaneously.
This is exactly what simulating the HT-infected netlist and comparing outputs
against the golden response would conclude, at a fraction of the cost.

Since the compiled-engine refactor this module evaluates a whole Trojan
population in ONE batched pass: the clean netlist is simulated once on the
compiled engine (:mod:`repro.simulation.compiled`), and every trigger
conjunction is checked directly on the packed ``uint64`` value matrix —
triggers of equal width are stacked and AND-reduced together, so no value is
ever unpacked to per-pattern bits except the final per-trigger activation
rows.  The historical one-netlist-per-Trojan flow survives as
:func:`sequential_trigger_coverage`, which really inserts each Trojan and
simulates the infected netlist against the golden response; it is the slow
reference used by the parity tests and by anyone who wants to double-check
the batched shortcut end to end.

**Multi-cycle triggers.** :func:`sequence_trigger_coverage` extends the
batched trick across clock cycles: the clean *sequential* netlist is stepped
once over the whole sequence set, each cycle's per-trigger activation words
come from one packed AND-reduce (:func:`repro.simulation.compiled
.conjunction_words`), and the temporal rules are evaluated with bit-plane
accumulators — ``k`` packed planes per trigger group tracking "streak length
>= i" (consecutive) or "activation count >= i" (cumulative) per sequence
lane, i.e. O(k) word-ops per cycle and never an unpacked bit until the final
verdict.  :func:`sequence_ground_truth_coverage` is its per-Trojan oracle:
every infected netlist (with its real shift-register/counter hardware) is
clocked over the sequence set and compared against the golden response.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet, SequenceSet
from repro.simulation.compiled import (
    batched_conjunctions,
    compile_netlist,
    compile_sequential_netlist,
    conjunction_words,
    unpack_matrix,
)
from repro.simulation.logic_sim import (
    BitParallelSimulator,
    pack_patterns,
    simulate_sequences,
)
from repro.trojan.insertion import insert_sequential_trojan, insert_trojan
from repro.trojan.model import SequentialTrojan, Trojan


@dataclass
class CoverageResult:
    """Coverage of one pattern set against one Trojan population."""

    technique: str
    num_trojans: int
    num_detected: int
    test_length: int
    detected: list[bool] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Trigger coverage in [0, 1]."""
        if self.num_trojans == 0:
            return 0.0
        return self.num_detected / self.num_trojans

    @property
    def coverage_percent(self) -> float:
        """Trigger coverage in percent (as reported in the paper's tables)."""
        return 100.0 * self.coverage


def _activation_matrix(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> np.ndarray:
    """Boolean matrix ``[trojan, pattern]``: does the pattern fire the trigger?

    One compiled simulation of the clean netlist answers the whole Trojan
    population: each trigger is a conjunction over rows of the packed value
    matrix, evaluated in bulk by :func:`batched_conjunctions`.
    """
    if len(pattern_set) == 0 or not trojans:
        return np.zeros((len(trojans), len(pattern_set)), dtype=bool)
    compiled = compile_netlist(netlist)
    if tuple(pattern_set.sources) != tuple(compiled.sources):
        raise ValueError(
            "pattern set source ordering does not match the netlist's controllable nets"
        )
    packed, num_patterns = pack_patterns(pattern_set.patterns)
    matrix = compiled.run_packed(packed)
    conjunctions: list[tuple[np.ndarray, np.ndarray]] = []
    for trojan in trojans:
        ids = np.empty(trojan.trigger.width, dtype=np.int64)
        required = np.empty(trojan.trigger.width, dtype=np.uint8)
        for position, (net, value) in enumerate(trojan.trigger.requirements):
            if net not in compiled:
                raise KeyError(
                    f"trigger net {net!r} does not exist in netlist {netlist.name!r}"
                )
            ids[position] = compiled.index_of(net)
            required[position] = value
        conjunctions.append((ids, required))
    return batched_conjunctions(matrix, conjunctions, num_patterns)


def trigger_coverage(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> CoverageResult:
    """Fraction of Trojans whose trigger is activated by at least one pattern."""
    activations = _activation_matrix(netlist, trojans, pattern_set)
    detected = activations.any(axis=1) if activations.size else np.zeros(len(trojans), dtype=bool)
    return CoverageResult(
        technique=pattern_set.technique,
        num_trojans=len(trojans),
        num_detected=int(detected.sum()),
        test_length=len(pattern_set),
        detected=[bool(flag) for flag in detected],
    )


def sequential_trigger_coverage(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> CoverageResult:
    """Per-Trojan reference evaluation: simulate every infected netlist.

    For each Trojan the infected netlist is actually built
    (:func:`repro.trojan.insertion.insert_trojan`) and simulated on the full
    pattern set; the Trojan counts as detected when any primary output differs
    from the golden response.  This is the paper's literal logic-testing flow
    and the ground truth that :func:`trigger_coverage`'s batched shortcut is
    tested against — use it for audits, not in hot loops.
    """
    if tuple(pattern_set.sources) != tuple(netlist.combinational_sources()):
        raise ValueError(
            "pattern set source ordering does not match the netlist's controllable nets"
        )
    detected: list[bool] = []
    golden_outputs: dict[str, np.ndarray] | None = None
    if len(pattern_set) and trojans:
        golden = BitParallelSimulator(netlist).run_patterns(pattern_set.patterns)
        golden_outputs = {net: golden[net] for net in netlist.outputs}
    for trojan in trojans:
        if golden_outputs is None:
            detected.append(False)
            continue
        infected = insert_trojan(netlist, trojan)
        values = BitParallelSimulator(infected).run_patterns(pattern_set.patterns)
        detected.append(
            any(
                not np.array_equal(values[net], golden_outputs[net])
                for net in netlist.outputs
            )
        )
    return CoverageResult(
        technique=pattern_set.technique,
        num_trojans=len(trojans),
        num_detected=int(sum(detected)),
        test_length=len(pattern_set),
        detected=detected,
    )


def _sequence_conjunctions(
    compiled, trojans: list[SequentialTrojan]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-trojan (net ids, required values) on the sequential engine's rows."""
    conjunctions: list[tuple[np.ndarray, np.ndarray]] = []
    for trojan in trojans:
        requirements = trojan.trigger.condition.requirements
        ids = np.empty(len(requirements), dtype=np.int64)
        required = np.empty(len(requirements), dtype=np.uint8)
        for position, (net, value) in enumerate(requirements):
            if net not in compiled:
                raise KeyError(
                    f"trigger net {net!r} does not exist in netlist "
                    f"{compiled.netlist.name!r}"
                )
            ids[position] = compiled.index_of(net)
            required[position] = value
        conjunctions.append((ids, required))
    return conjunctions


def sequence_trigger_coverage(
    netlist: Netlist, trojans: list[SequentialTrojan], sequence_set: SequenceSet
) -> CoverageResult:
    """Batched multi-cycle trigger coverage on one clean-netlist simulation.

    The sequential netlist is stepped once across the whole sequence set;
    per-cycle trigger activations stay packed (64 sequences per word), and
    each temporal rule runs as bit-plane accumulators over the per-cycle
    activation words.  A Trojan counts as detected when its trigger fires in
    any cycle of any sequence — which, by the output-pin payload construction
    of :func:`repro.trojan.insertion.insert_sequential_trojan`, is exactly
    when the infected netlist's outputs diverge from the golden response
    (asserted by the parity tests against
    :func:`sequence_ground_truth_coverage`).
    """
    if tuple(sequence_set.inputs) != tuple(netlist.inputs):
        raise ValueError(
            "sequence set input ordering does not match the netlist's primary inputs"
        )
    num_sequences = len(sequence_set)
    if num_sequences == 0 or not trojans:
        return CoverageResult(
            technique=sequence_set.technique,
            num_trojans=len(trojans),
            num_detected=0,
            test_length=num_sequences,
            detected=[False] * len(trojans),
        )
    compiled = compile_sequential_netlist(netlist)
    tensor, num_sequences = compiled.run_sequences(sequence_set.sequences)
    cycles, _, num_words = tensor.shape
    conjunctions = _sequence_conjunctions(compiled, trojans)

    # Group by (mode, count): every group shares one set of bit-plane
    # accumulators of depth ``count``.
    groups: dict[tuple[str, int], list[int]] = {}
    for position, trojan in enumerate(trojans):
        key = (trojan.trigger.mode, trojan.trigger.count)
        groups.setdefault(key, []).append(position)

    detected_words = np.zeros((len(trojans), num_words), dtype=np.uint64)
    for (mode, count), positions in groups.items():
        group_conjunctions = [conjunctions[p] for p in positions]
        # planes[i] tracks, per packed lane, "streak >= i+1 ending at this
        # cycle" (consecutive) or "activation count >= i+1 so far" (cumulative).
        planes = np.zeros((count, len(positions), num_words), dtype=np.uint64)
        group_detected = np.zeros((len(positions), num_words), dtype=np.uint64)
        for cycle in range(cycles):
            fired = conjunction_words(tensor[cycle], group_conjunctions)
            if mode == "consecutive":
                if count > 1:
                    planes[1:] = fired & planes[:-1]
                planes[0] = fired
                group_detected |= planes[count - 1]
            else:  # cumulative
                for depth in range(count - 1, 0, -1):
                    planes[depth] |= fired & planes[depth - 1]
                planes[0] |= fired
        if mode == "cumulative":
            group_detected = planes[count - 1]
        detected_words[positions] = group_detected

    detected_bits = unpack_matrix(detected_words, num_sequences)
    detected = detected_bits.any(axis=1)
    return CoverageResult(
        technique=sequence_set.technique,
        num_trojans=len(trojans),
        num_detected=int(detected.sum()),
        test_length=num_sequences,
        detected=[bool(flag) for flag in detected],
    )


def sequence_ground_truth_coverage(
    netlist: Netlist, trojans: list[SequentialTrojan], sequence_set: SequenceSet
) -> CoverageResult:
    """Per-Trojan reference: clock every infected sequential netlist.

    Each Trojan's infected netlist — including its real shift-register or
    thermometer-counter hardware — is simulated over the full sequence set
    with the naive cycle loop; the Trojan counts as detected when any primary
    output differs from the golden response in any cycle of any sequence.
    This is the literal logic-testing flow and the ground truth the batched
    :func:`sequence_trigger_coverage` is tested against — use it for audits,
    not in hot loops.
    """
    if tuple(sequence_set.inputs) != tuple(netlist.inputs):
        raise ValueError(
            "sequence set input ordering does not match the netlist's primary inputs"
        )
    detected: list[bool] = []
    golden_outputs: dict[str, np.ndarray] | None = None
    if len(sequence_set) and trojans:
        golden = simulate_sequences(netlist, sequence_set.sequences)
        golden_outputs = {net: golden[net] for net in netlist.outputs}
    for trojan in trojans:
        if golden_outputs is None:
            detected.append(False)
            continue
        infected = insert_sequential_trojan(netlist, trojan)
        values = simulate_sequences(infected, sequence_set.sequences)
        detected.append(
            any(
                not np.array_equal(values[net], golden_outputs[net])
                for net in netlist.outputs
            )
        )
    return CoverageResult(
        technique=sequence_set.technique,
        num_trojans=len(trojans),
        num_detected=int(sum(detected)),
        test_length=len(sequence_set),
        detected=detected,
    )


def coverage_curve(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> list[tuple[int, float]]:
    """Cumulative trigger coverage after each pattern (Figure 6 of the paper).

    Returns a list of ``(num_patterns, coverage_percent)`` points, one per
    pattern in the order the technique emitted them.
    """
    activations = _activation_matrix(netlist, trojans, pattern_set)
    points: list[tuple[int, float]] = []
    if not trojans:
        return points
    detected = np.zeros(len(trojans), dtype=bool)
    for pattern_index in range(len(pattern_set)):
        detected |= activations[:, pattern_index]
        points.append((pattern_index + 1, 100.0 * detected.mean()))
    return points


__all__ = [
    "CoverageResult",
    "trigger_coverage",
    "sequential_trigger_coverage",
    "coverage_curve",
]
