"""Trigger-coverage evaluation of test-pattern sets.

Trigger coverage (footnote 2 of the paper) is the proportion of sampled
Trojan trigger conditions that a pattern set activates.  Because a trigger is
a conjunction of internal net values, coverage can be measured on the *golden*
netlist: simulate the pattern set once, then check per Trojan whether any
pattern drives all trigger nets to their required values simultaneously.
This is exactly what simulating the HT-infected netlist and comparing outputs
against the golden response would conclude, at a fraction of the cost.

Since the compiled-engine refactor this module evaluates a whole Trojan
population in ONE batched pass: the clean netlist is simulated once on the
compiled engine (:mod:`repro.simulation.compiled`), and every trigger
conjunction is checked directly on the packed ``uint64`` value matrix —
triggers of equal width are stacked and AND-reduced together, so no value is
ever unpacked to per-pattern bits except the final per-trigger activation
rows.  The historical one-netlist-per-Trojan flow survives as
:func:`sequential_trigger_coverage`, which really inserts each Trojan and
simulates the infected netlist against the golden response; it is the slow
reference used by the parity tests and by anyone who wants to double-check
the batched shortcut end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet
from repro.simulation.compiled import batched_conjunctions, compile_netlist
from repro.simulation.logic_sim import BitParallelSimulator, pack_patterns
from repro.trojan.insertion import insert_trojan
from repro.trojan.model import Trojan


@dataclass
class CoverageResult:
    """Coverage of one pattern set against one Trojan population."""

    technique: str
    num_trojans: int
    num_detected: int
    test_length: int
    detected: list[bool] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Trigger coverage in [0, 1]."""
        if self.num_trojans == 0:
            return 0.0
        return self.num_detected / self.num_trojans

    @property
    def coverage_percent(self) -> float:
        """Trigger coverage in percent (as reported in the paper's tables)."""
        return 100.0 * self.coverage


def _activation_matrix(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> np.ndarray:
    """Boolean matrix ``[trojan, pattern]``: does the pattern fire the trigger?

    One compiled simulation of the clean netlist answers the whole Trojan
    population: each trigger is a conjunction over rows of the packed value
    matrix, evaluated in bulk by :func:`batched_conjunctions`.
    """
    if len(pattern_set) == 0 or not trojans:
        return np.zeros((len(trojans), len(pattern_set)), dtype=bool)
    compiled = compile_netlist(netlist)
    if tuple(pattern_set.sources) != tuple(compiled.sources):
        raise ValueError(
            "pattern set source ordering does not match the netlist's controllable nets"
        )
    packed, num_patterns = pack_patterns(pattern_set.patterns)
    matrix = compiled.run_packed(packed)
    conjunctions: list[tuple[np.ndarray, np.ndarray]] = []
    for trojan in trojans:
        ids = np.empty(trojan.trigger.width, dtype=np.int64)
        required = np.empty(trojan.trigger.width, dtype=np.uint8)
        for position, (net, value) in enumerate(trojan.trigger.requirements):
            if net not in compiled:
                raise KeyError(
                    f"trigger net {net!r} does not exist in netlist {netlist.name!r}"
                )
            ids[position] = compiled.index_of(net)
            required[position] = value
        conjunctions.append((ids, required))
    return batched_conjunctions(matrix, conjunctions, num_patterns)


def trigger_coverage(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> CoverageResult:
    """Fraction of Trojans whose trigger is activated by at least one pattern."""
    activations = _activation_matrix(netlist, trojans, pattern_set)
    detected = activations.any(axis=1) if activations.size else np.zeros(len(trojans), dtype=bool)
    return CoverageResult(
        technique=pattern_set.technique,
        num_trojans=len(trojans),
        num_detected=int(detected.sum()),
        test_length=len(pattern_set),
        detected=[bool(flag) for flag in detected],
    )


def sequential_trigger_coverage(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> CoverageResult:
    """Per-Trojan reference evaluation: simulate every infected netlist.

    For each Trojan the infected netlist is actually built
    (:func:`repro.trojan.insertion.insert_trojan`) and simulated on the full
    pattern set; the Trojan counts as detected when any primary output differs
    from the golden response.  This is the paper's literal logic-testing flow
    and the ground truth that :func:`trigger_coverage`'s batched shortcut is
    tested against — use it for audits, not in hot loops.
    """
    if tuple(pattern_set.sources) != tuple(netlist.combinational_sources()):
        raise ValueError(
            "pattern set source ordering does not match the netlist's controllable nets"
        )
    detected: list[bool] = []
    golden_outputs: dict[str, np.ndarray] | None = None
    if len(pattern_set) and trojans:
        golden = BitParallelSimulator(netlist).run_patterns(pattern_set.patterns)
        golden_outputs = {net: golden[net] for net in netlist.outputs}
    for trojan in trojans:
        if golden_outputs is None:
            detected.append(False)
            continue
        infected = insert_trojan(netlist, trojan)
        values = BitParallelSimulator(infected).run_patterns(pattern_set.patterns)
        detected.append(
            any(
                not np.array_equal(values[net], golden_outputs[net])
                for net in netlist.outputs
            )
        )
    return CoverageResult(
        technique=pattern_set.technique,
        num_trojans=len(trojans),
        num_detected=int(sum(detected)),
        test_length=len(pattern_set),
        detected=detected,
    )


def coverage_curve(
    netlist: Netlist, trojans: list[Trojan], pattern_set: PatternSet
) -> list[tuple[int, float]]:
    """Cumulative trigger coverage after each pattern (Figure 6 of the paper).

    Returns a list of ``(num_patterns, coverage_percent)`` points, one per
    pattern in the order the technique emitted them.
    """
    activations = _activation_matrix(netlist, trojans, pattern_set)
    points: list[tuple[int, float]] = []
    if not trojans:
        return points
    detected = np.zeros(len(trojans), dtype=bool)
    for pattern_index in range(len(pattern_set)):
        detected |= activations[:, pattern_index]
        points.append((pattern_index + 1, 100.0 * detected.mean()))
    return points


__all__ = [
    "CoverageResult",
    "trigger_coverage",
    "sequential_trigger_coverage",
    "coverage_curve",
]
