"""Random hardware Trojan insertion.

Reproduces the paper's evaluation methodology (§4.1): for each benchmark, 100
Trojans are created by sampling random width-``w`` subsets of the rare nets as
triggers and verifying each trigger to be *valid* (simultaneously activatable)
with a Boolean satisfiability check.  :func:`insert_trojan` additionally
produces the HT-infected netlist (trigger AND-tree plus an XOR payload on an
output), which is what a logic-testing flow would simulate; coverage
evaluation itself only needs the trigger conditions.

The sequential counterparts target raw (non-scan) netlists.
:func:`sample_sequential_trojans` draws per-cycle conditions from
*state-dependent* rare nets and attaches a temporal rule (consecutive or
cumulative ``count``); :func:`insert_sequential_trojan` realises the rule in
hardware — a shift register for consecutive triggers, a sticky thermometer
counter for cumulative ones — so the infected netlist contains real extra
flip-flops and must be clocked over multiple cycles to expose the payload.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.scan import ensure_combinational
from repro.sat.justify import Justifier
from repro.simulation.rare_nets import RareNet
from repro.trojan.model import (
    SequentialTrigger,
    SequentialTrojan,
    Trojan,
    TriggerCondition,
)
from repro.utils.rng import RngLike, make_rng


def sample_trojans(
    netlist: Netlist,
    rare_nets: list[RareNet],
    num_trojans: int = 100,
    trigger_width: int = 4,
    seed: RngLike = None,
    justifier: Justifier | None = None,
    max_attempts_per_trojan: int = 200,
) -> list[Trojan]:
    """Sample valid random Trojans whose triggers use ``trigger_width`` rare nets.

    Every sampled trigger is validated with a SAT check (invalid candidates
    are re-drawn); duplicate trigger sets are avoided.  If the circuit cannot
    support ``num_trojans`` distinct valid triggers within the attempt budget,
    as many as exist are returned.
    """
    if trigger_width <= 0:
        raise ValueError(f"trigger_width must be positive, got {trigger_width}")
    if len(rare_nets) < trigger_width:
        return []
    rng = make_rng(seed)
    justifier = justifier or Justifier(netlist)
    outputs = netlist.outputs or netlist.combinational_sources()
    trojans: list[Trojan] = []
    seen: set[frozenset[str]] = set()
    attempts_left = num_trojans * max_attempts_per_trojan
    while len(trojans) < num_trojans and attempts_left > 0:
        attempts_left -= 1
        chosen_indices = rng.choice(len(rare_nets), size=trigger_width, replace=False)
        chosen = [rare_nets[int(index)] for index in chosen_indices]
        key = frozenset(item.net for item in chosen)
        if key in seen:
            continue
        trigger = TriggerCondition.from_rare_nets(chosen)
        if not justifier.is_satisfiable(trigger.as_assignment()):
            continue
        seen.add(key)
        payload_output = str(outputs[int(rng.integers(len(outputs)))])
        trojans.append(
            Trojan(
                trigger=trigger,
                payload_output=payload_output,
                name=f"{netlist.name}_ht{len(trojans)}",
            )
        )
    return trojans


def insert_trojan(netlist: Netlist, trojan: Trojan) -> Netlist:
    """Return an HT-infected copy of ``netlist``.

    The trigger is an AND over the trigger nets (inverting the nets whose rare
    value is 0), and the payload XORs the trigger output into the Trojan's
    payload output, flipping that output whenever the trigger fires — the
    structure of Figure 1 in the paper.
    """
    infected = Netlist(f"{netlist.name}_{trojan.name or 'trojan'}")
    for net in netlist.inputs:
        infected.add_input(net)
    for ff in netlist.flip_flops:
        infected.add_flip_flop(ff.q, ff.d)

    payload = trojan.payload_output
    if not netlist.has_driver(payload) or netlist.is_input(payload):
        raise ValueError(
            f"payload output {payload!r} must be a gate-driven net of the netlist"
        )
    renamed = f"{payload}__pre_trojan"

    def original(net: str) -> str:
        """Internal logic keeps using the uncorrupted value of the payload net."""
        return renamed if net == payload else net

    for gate in netlist.gates:
        output = renamed if gate.output == payload else gate.output
        infected.add_gate(output, gate.gate_type, tuple(original(n) for n in gate.inputs))

    # Trigger: AND of the trigger nets in their rare polarity.
    trigger_literals: list[str] = []
    for index, (net, value) in enumerate(trojan.trigger.requirements):
        source = original(net)
        if value == 1:
            trigger_literals.append(source)
        else:
            inverted = f"trojan_inv_{index}_{net}"
            infected.add_gate(inverted, GateType.NOT, (source,))
            trigger_literals.append(inverted)
    trigger_net = "trojan_trigger"
    if len(trigger_literals) == 1:
        infected.add_gate(trigger_net, GateType.BUF, (trigger_literals[0],))
    else:
        infected.add_gate(trigger_net, GateType.AND, tuple(trigger_literals))

    # Payload: XOR the trigger into the original payload net.
    infected.add_gate(payload, GateType.XOR, (renamed, trigger_net))
    for net in netlist.outputs:
        infected.add_output(net)
    return infected


def sample_sequential_trojans(
    netlist: Netlist,
    rare_nets: list[RareNet],
    num_trojans: int = 100,
    trigger_width: int = 3,
    mode: str = "consecutive",
    count: int = 2,
    seed: RngLike = None,
    justifier: Justifier | None = None,
    max_attempts_per_trojan: int = 200,
) -> list[SequentialTrojan]:
    """Sample valid multi-cycle Trojans on a raw sequential netlist.

    Per-cycle conditions are random width-``trigger_width`` subsets of the
    (state-dependent) rare nets; every condition is validated to be
    single-cycle satisfiable with a SAT check on the full-scan view.  That
    check is *necessary* but not sufficient for multi-cycle activatability —
    a condition could require a state the machine never reaches — which is
    exactly the evaluation gap the sequential workload measures, so
    unreachable-in-practice triggers are deliberately kept.

    Payload outputs are drawn from the gate-driven primary outputs (flip-flop
    driven outputs cannot host the output-pin XOR splice).
    """
    if trigger_width <= 0:
        raise ValueError(f"trigger_width must be positive, got {trigger_width}")
    if not netlist.is_sequential:
        raise ValueError(
            f"sequential Trojan sampling requires flip-flops; {netlist.name!r} "
            "is combinational (use sample_trojans)"
        )
    if len(rare_nets) < trigger_width:
        return []
    eligible_payloads = [
        net for net in netlist.outputs if netlist.gate_for(net) is not None
    ]
    if not eligible_payloads:
        raise ValueError(
            f"netlist {netlist.name!r} has no gate-driven primary output to "
            "host a payload"
        )
    rng = make_rng(seed)
    justifier = justifier or Justifier(ensure_combinational(netlist))
    trojans: list[SequentialTrojan] = []
    seen: set[frozenset[str]] = set()
    attempts_left = num_trojans * max_attempts_per_trojan
    while len(trojans) < num_trojans and attempts_left > 0:
        attempts_left -= 1
        chosen_indices = rng.choice(len(rare_nets), size=trigger_width, replace=False)
        chosen = [rare_nets[int(index)] for index in chosen_indices]
        key = frozenset(item.net for item in chosen)
        if key in seen:
            continue
        condition = TriggerCondition.from_rare_nets(chosen)
        if not justifier.is_satisfiable(condition.as_assignment()):
            continue
        seen.add(key)
        payload = str(eligible_payloads[int(rng.integers(len(eligible_payloads)))])
        trojans.append(
            SequentialTrojan(
                trigger=SequentialTrigger(condition=condition, mode=mode, count=count),
                payload_output=payload,
                name=f"{netlist.name}_seq_ht{len(trojans)}",
            )
        )
    return trojans


def insert_sequential_trojan(netlist: Netlist, trojan: SequentialTrojan) -> Netlist:
    """Return an HT-infected copy of a sequential ``netlist``.

    The per-cycle condition is an AND over the trigger nets in their rare
    polarity; the temporal rule becomes real state:

    - ``consecutive`` ``k``: a ``k - 1``-stage shift register delays the
      condition, and the trigger fires when the condition holds now *and*
      held in each of the previous ``k - 1`` cycles;
    - ``cumulative`` ``k``: a sticky thermometer counter (stage ``i`` sets
      once the condition has held in at least ``i`` distinct cycles and never
      clears), firing on the ``k``-th activation and every one after it.

    The payload XORs the fire signal into the payload output at the output
    pin only: internal logic *and* flip-flops keep sampling the uncorrupted
    value, so a firing trigger is observable at a primary output in exactly
    the cycles it fires.  The batched evaluator in
    :mod:`repro.trojan.evaluation` relies on this equivalence.
    """
    infected = Netlist(f"{netlist.name}_{trojan.name or 'seq_trojan'}")
    for net in netlist.inputs:
        infected.add_input(net)

    payload = trojan.payload_output
    if netlist.gate_for(payload) is None:
        raise ValueError(
            f"payload output {payload!r} must be a gate-driven net of the netlist"
        )
    renamed = f"{payload}__pre_trojan"

    def original(net: str) -> str:
        """Internal logic keeps consuming the uncorrupted payload value."""
        return renamed if net == payload else net

    for ff in netlist.flip_flops:
        infected.add_flip_flop(ff.q, original(ff.d))
    for gate in netlist.gates:
        output = renamed if gate.output == payload else gate.output
        infected.add_gate(output, gate.gate_type, tuple(original(n) for n in gate.inputs))

    # Per-cycle condition: AND of the trigger nets in their rare polarity.
    literals: list[str] = []
    for index, (net, value) in enumerate(trojan.trigger.condition.requirements):
        source = original(net)
        if value == 1:
            literals.append(source)
        else:
            inverted = f"trojan_inv_{index}_{net}"
            infected.add_gate(inverted, GateType.NOT, (source,))
            literals.append(inverted)
    condition_net = "trojan_cond"
    if len(literals) == 1:
        infected.add_gate(condition_net, GateType.BUF, (literals[0],))
    else:
        infected.add_gate(condition_net, GateType.AND, tuple(literals))

    # Temporal hardware: k - 1 stages of real state feeding the fire signal.
    count = trojan.trigger.count
    fire_net = "trojan_fire"
    if count == 1:
        infected.add_gate(fire_net, GateType.BUF, (condition_net,))
    elif trojan.trigger.mode == "consecutive":
        previous_stage = None
        for stage in range(1, count):
            stage_q = f"trojan_shift_q{stage}"
            if previous_stage is None:
                infected.add_flip_flop(stage_q, condition_net)
            else:
                stage_d = f"trojan_shift_d{stage}"
                infected.add_gate(stage_d, GateType.AND, (previous_stage, condition_net))
                infected.add_flip_flop(stage_q, stage_d)
            previous_stage = stage_q
        infected.add_gate(fire_net, GateType.AND, (condition_net, previous_stage))
    else:  # cumulative: sticky thermometer counter
        previous_stage = None
        for stage in range(1, count):
            stage_q = f"trojan_count_q{stage}"
            stage_d = f"trojan_count_d{stage}"
            if previous_stage is None:
                infected.add_gate(stage_d, GateType.OR, (stage_q, condition_net))
            else:
                armed = f"trojan_count_armed{stage}"
                infected.add_gate(armed, GateType.AND, (previous_stage, condition_net))
                infected.add_gate(stage_d, GateType.OR, (stage_q, armed))
            infected.add_flip_flop(stage_q, stage_d)
            previous_stage = stage_q
        infected.add_gate(fire_net, GateType.AND, (condition_net, previous_stage))

    # Payload: XOR the fire signal into the payload output at the pin.
    infected.add_gate(payload, GateType.XOR, (renamed, fire_net))
    for net in netlist.outputs:
        infected.add_output(net)
    return infected


__all__ = [
    "sample_trojans",
    "insert_trojan",
    "sample_sequential_trojans",
    "insert_sequential_trojan",
]
