"""Random hardware Trojan insertion.

Reproduces the paper's evaluation methodology (§4.1): for each benchmark, 100
Trojans are created by sampling random width-``w`` subsets of the rare nets as
triggers and verifying each trigger to be *valid* (simultaneously activatable)
with a Boolean satisfiability check.  :func:`insert_trojan` additionally
produces the HT-infected netlist (trigger AND-tree plus an XOR payload on an
output), which is what a logic-testing flow would simulate; coverage
evaluation itself only needs the trigger conditions.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.sat.justify import Justifier
from repro.simulation.rare_nets import RareNet
from repro.trojan.model import Trojan, TriggerCondition
from repro.utils.rng import RngLike, make_rng


def sample_trojans(
    netlist: Netlist,
    rare_nets: list[RareNet],
    num_trojans: int = 100,
    trigger_width: int = 4,
    seed: RngLike = None,
    justifier: Justifier | None = None,
    max_attempts_per_trojan: int = 200,
) -> list[Trojan]:
    """Sample valid random Trojans whose triggers use ``trigger_width`` rare nets.

    Every sampled trigger is validated with a SAT check (invalid candidates
    are re-drawn); duplicate trigger sets are avoided.  If the circuit cannot
    support ``num_trojans`` distinct valid triggers within the attempt budget,
    as many as exist are returned.
    """
    if trigger_width <= 0:
        raise ValueError(f"trigger_width must be positive, got {trigger_width}")
    if len(rare_nets) < trigger_width:
        return []
    rng = make_rng(seed)
    justifier = justifier or Justifier(netlist)
    outputs = netlist.outputs or netlist.combinational_sources()
    trojans: list[Trojan] = []
    seen: set[frozenset[str]] = set()
    attempts_left = num_trojans * max_attempts_per_trojan
    while len(trojans) < num_trojans and attempts_left > 0:
        attempts_left -= 1
        chosen_indices = rng.choice(len(rare_nets), size=trigger_width, replace=False)
        chosen = [rare_nets[int(index)] for index in chosen_indices]
        key = frozenset(item.net for item in chosen)
        if key in seen:
            continue
        trigger = TriggerCondition.from_rare_nets(chosen)
        if not justifier.is_satisfiable(trigger.as_assignment()):
            continue
        seen.add(key)
        payload_output = str(outputs[int(rng.integers(len(outputs)))])
        trojans.append(
            Trojan(
                trigger=trigger,
                payload_output=payload_output,
                name=f"{netlist.name}_ht{len(trojans)}",
            )
        )
    return trojans


def insert_trojan(netlist: Netlist, trojan: Trojan) -> Netlist:
    """Return an HT-infected copy of ``netlist``.

    The trigger is an AND over the trigger nets (inverting the nets whose rare
    value is 0), and the payload XORs the trigger output into the Trojan's
    payload output, flipping that output whenever the trigger fires — the
    structure of Figure 1 in the paper.
    """
    infected = Netlist(f"{netlist.name}_{trojan.name or 'trojan'}")
    for net in netlist.inputs:
        infected.add_input(net)
    for ff in netlist.flip_flops:
        infected.add_flip_flop(ff.q, ff.d)

    payload = trojan.payload_output
    if not netlist.has_driver(payload) or netlist.is_input(payload):
        raise ValueError(
            f"payload output {payload!r} must be a gate-driven net of the netlist"
        )
    renamed = f"{payload}__pre_trojan"

    def original(net: str) -> str:
        """Internal logic keeps using the uncorrupted value of the payload net."""
        return renamed if net == payload else net

    for gate in netlist.gates:
        output = renamed if gate.output == payload else gate.output
        infected.add_gate(output, gate.gate_type, tuple(original(n) for n in gate.inputs))

    # Trigger: AND of the trigger nets in their rare polarity.
    trigger_literals: list[str] = []
    for index, (net, value) in enumerate(trojan.trigger.requirements):
        source = original(net)
        if value == 1:
            trigger_literals.append(source)
        else:
            inverted = f"trojan_inv_{index}_{net}"
            infected.add_gate(inverted, GateType.NOT, (source,))
            trigger_literals.append(inverted)
    trigger_net = "trojan_trigger"
    if len(trigger_literals) == 1:
        infected.add_gate(trigger_net, GateType.BUF, (trigger_literals[0],))
    else:
        infected.add_gate(trigger_net, GateType.AND, tuple(trigger_literals))

    # Payload: XOR the trigger into the original payload net.
    infected.add_gate(payload, GateType.XOR, (renamed, trigger_net))
    for net in netlist.outputs:
        infected.add_output(net)
    return infected


__all__ = ["sample_trojans", "insert_trojan"]
