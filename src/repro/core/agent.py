"""The DETERRENT agent: PPO training plus maximal-set extraction.

The agent wraps the trigger-activation environment in a vectorised PPO
trainer, records the compatible set reached at the end of every episode, and
after training returns the ``k`` largest *distinct* sets — exactly the
artefacts the paper's SAT stage turns into test patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compatibility import CompatibilityAnalysis
from repro.core.config import DeterrentConfig
from repro.core.environment import TriggerActivationEnv
from repro.rl.env import VectorizedEnvironment
from repro.rl.ppo import PpoTrainer, TrainingSummary
from repro.utils.rng import spawn_rngs


@dataclass
class AgentResult:
    """Output of one training run of the DETERRENT agent."""

    summary: TrainingSummary
    distinct_sets: list[frozenset[int]] = field(default_factory=list)
    max_compatible_set_size: int = 0

    def largest_sets(self, k: int) -> list[frozenset[int]]:
        """The ``k`` largest distinct compatible sets (ties broken deterministically)."""
        ranked = sorted(self.distinct_sets, key=lambda s: (-len(s), sorted(s)))
        return ranked[:k]


class DeterrentAgent:
    """Trains the RL agent of the paper on one compatibility analysis."""

    def __init__(self, compatibility: CompatibilityAnalysis, config: DeterrentConfig) -> None:
        self.compatibility = compatibility
        self.config = config
        self.environments = self._build_environments()
        self.trainer = PpoTrainer(
            self.environments, config=config.effective_ppo(), seed=config.seed
        )

    def _build_environments(self) -> VectorizedEnvironment:
        rngs = spawn_rngs(self.config.seed, self.config.num_envs)
        instances = [
            TriggerActivationEnv(
                self.compatibility,
                episode_length=self.config.episode_length,
                reward_mode=self.config.reward_mode,
                masking=self.config.masking,
                reward_power=self.config.reward_power,
                exact_set_reward=self.config.exact_set_reward,
                seed=rng,
            )
            for rng in rngs
        ]
        return VectorizedEnvironment(instances)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, total_steps: int | None = None) -> AgentResult:
        """Train for ``total_steps`` environment steps (default from the config)."""
        steps = total_steps if total_steps is not None else self.config.total_training_steps
        summary = self.trainer.train(steps)
        return self.harvest(summary)

    def harvest(self, summary: TrainingSummary) -> AgentResult:
        """Collect the distinct compatible sets observed at episode ends."""
        seen: dict[frozenset[int], None] = {}
        max_size = 0
        for info in summary.episode_infos:
            selected = info.get("selected_indices")
            if not selected:
                continue
            seen.setdefault(frozenset(selected), None)
            max_size = max(max_size, len(selected))
        return AgentResult(
            summary=summary,
            distinct_sets=list(seen),
            max_compatible_set_size=max_size,
        )

    @property
    def total_reward_checks(self) -> int:
        """Number of exact SAT reward evaluations across all environment copies."""
        return sum(env.reward_checks for env in self.environments.environments)


__all__ = ["DeterrentAgent", "AgentResult"]
