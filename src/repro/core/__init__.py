"""DETERRENT core: the paper's primary contribution.

The flow mirrors Figure 4 of the paper:

1. offline — rare-net extraction (:mod:`repro.simulation.rare_nets`) and
   pairwise compatibility precomputation (:mod:`repro.core.compatibility`);
2. online — the RL agent (:mod:`repro.core.agent`) interacts with the trigger
   activation environment (:mod:`repro.core.environment`) to learn maximal
   sets of compatible rare nets;
3. pattern generation — the ``k`` largest distinct sets are converted to test
   patterns with a SAT solver (:mod:`repro.core.patterns`).

:class:`repro.core.pipeline.DeterrentPipeline` stitches the three stages
together behind one call.  :mod:`repro.core.sequence_gen` mirrors the same
pipeline on raw sequential netlists: temporal activatability pre-filter,
greedy compatibility sets via joint unrolled justification, and SAT-guided
multi-cycle test sequences.
"""

from repro.core.config import DeterrentConfig
from repro.core.compatibility import CompatibilityAnalysis
from repro.core.environment import TriggerActivationEnv
from repro.core.agent import DeterrentAgent
from repro.core.patterns import PatternSet, SequenceSet, generate_patterns
from repro.core.pipeline import DeterrentPipeline, DeterrentResult
from repro.core.sequence_gen import (
    SequentialCompatibility,
    analyze_sequential_compatibility,
    generate_sequences,
)

__all__ = [
    "DeterrentConfig",
    "CompatibilityAnalysis",
    "TriggerActivationEnv",
    "DeterrentAgent",
    "PatternSet",
    "SequenceSet",
    "generate_patterns",
    "DeterrentPipeline",
    "DeterrentResult",
    "SequentialCompatibility",
    "analyze_sequential_compatibility",
    "generate_sequences",
]
