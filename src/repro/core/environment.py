"""The trigger-activation Markov decision process (§3.1–§3.3 of the paper).

- **State**: the set of compatible rare nets accumulated so far, represented
  as a binary vector over the rare nets (footnote 4 of the paper).
- **Action**: pick one rare net.
- **Transition**: if the chosen net is compatible with the current set, it is
  added; otherwise the state is unchanged.
- **Reward**: the squared size of the new set for compatible choices, zero
  otherwise; optionally delayed until the end of the episode (§3.2).
- **Masking**: actions already selected or known (from the pairwise
  compatibility dictionary) to be incompatible with the current set are
  masked off (§3.3); the episode ends early when no action remains.
"""

from __future__ import annotations

import numpy as np

from repro.core.compatibility import CompatibilityAnalysis
from repro.rl.env import Environment, StepResult
from repro.utils.rng import RngLike, make_rng


class TriggerActivationEnv(Environment):
    """RL environment whose episodes build maximal sets of compatible rare nets."""

    def __init__(
        self,
        compatibility: CompatibilityAnalysis,
        episode_length: int = 40,
        reward_mode: str = "end_of_episode",
        masking: bool = True,
        reward_power: float = 2.0,
        exact_set_reward: bool = True,
        seed: RngLike = None,
    ) -> None:
        if compatibility.num_rare_nets == 0:
            raise ValueError("the compatibility analysis contains no activatable rare nets")
        if reward_mode not in ("per_step", "end_of_episode"):
            raise ValueError(
                f"reward_mode must be 'per_step' or 'end_of_episode', got {reward_mode!r}"
            )
        self.compatibility = compatibility
        self.episode_length = episode_length
        self.reward_mode = reward_mode
        self.masking = masking
        self.reward_power = reward_power
        self.exact_set_reward = exact_set_reward
        self._rng = make_rng(seed)
        self._selected: set[int] = set()
        self._steps = 0
        self.reward_checks = 0
        self.reset()

    # ------------------------------------------------------------------
    # Environment interface
    # ------------------------------------------------------------------
    @property
    def observation_dim(self) -> int:
        """One observation entry per rare net (binary membership vector)."""
        return self.compatibility.num_rare_nets

    @property
    def num_actions(self) -> int:
        """One action per rare net."""
        return self.compatibility.num_rare_nets

    def reset(self) -> np.ndarray:
        """Start a new episode from a singleton state with a random rare net."""
        initial = int(self._rng.integers(self.compatibility.num_rare_nets))
        self._selected = {initial}
        self._steps = 0
        return self._observation()

    def action_mask(self) -> np.ndarray:
        """Mask of actions that lead to a *new* state (1 = allowed).

        Without masking every action is allowed, as in the paper's unmasked
        ablation.  With masking, actions already in the state or pairwise
        incompatible with it are removed; if that leaves nothing, the mask
        keeps all actions valid (the episode will terminate on the next step).
        """
        if not self.masking:
            return np.ones(self.num_actions, dtype=np.float64)
        mask = self._valid_action_mask()
        if mask.sum() == 0:
            return np.ones(self.num_actions, dtype=np.float64)
        return mask

    def step(self, action: int) -> StepResult:
        """Apply the paper's deterministic transition and reward rules.

        In per-step mode the "compatible with the current state" test is the
        exact joint-satisfiability check (this is the expensive evaluation the
        paper performs every step); in end-of-episode mode the transition uses
        the precomputed pairwise dictionary and the exact check only happens
        once, when the episode's reward is computed.
        """
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} out of range [0, {self.num_actions})")
        self._steps += 1
        accepted = self._is_compatible_choice(action)
        if (
            accepted
            and self.reward_mode == "per_step"
            and self.exact_set_reward
        ):
            self.reward_checks += 1
            accepted = self.compatibility.set_is_satisfiable(self._selected | {action})
        if accepted:
            self._selected.add(action)

        exhausted = self.masking and self._valid_action_mask().sum() == 0
        done = self._steps >= self.episode_length or exhausted

        reward = 0.0
        if self.reward_mode == "per_step":
            if accepted:
                reward = float(len(self._selected) ** self.reward_power)
        elif done:
            reward = self._set_reward()

        info: dict = {}
        if done:
            info = {
                "selected_indices": frozenset(self._selected),
                "selected_nets": tuple(
                    self.compatibility.rare_nets[index].net for index in sorted(self._selected)
                ),
                "size": len(self._selected),
            }
        return StepResult(self._observation(), reward, done, info)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _observation(self) -> np.ndarray:
        observation = np.zeros(self.observation_dim, dtype=np.float64)
        if self._selected:
            observation[np.fromiter(self._selected, dtype=np.int64)] = 1.0
        return observation

    def _valid_action_mask(self) -> np.ndarray:
        matrix = self.compatibility.matrix
        selected = np.fromiter(self._selected, dtype=np.int64)
        compatible_with_all = matrix[:, selected].all(axis=1)
        compatible_with_all[selected] = False
        return compatible_with_all.astype(np.float64)

    def _is_compatible_choice(self, action: int) -> bool:
        """Transition test: pairwise compatibility with the accumulated set."""
        if action in self._selected:
            return False
        return self.compatibility.compatible_with_all(action, self._selected)

    def _set_reward(self) -> float:
        """Reward of the current state: |state|^power, SAT-verified if configured.

        With ``exact_set_reward`` the accumulated set is verified by a full SAT
        query; if the pairwise-compatible set is not jointly satisfiable, the
        reward falls back to the largest satisfiable prefix found by greedily
        dropping the most recently added nets.  This is the expensive check
        whose frequency the paper's end-of-episode reward reduces (§3.2).
        """
        if not self.exact_set_reward:
            return float(len(self._selected) ** self.reward_power)
        self.reward_checks += 1
        if self.compatibility.set_is_satisfiable(self._selected):
            return float(len(self._selected) ** self.reward_power)
        satisfiable_size = self._largest_satisfiable_subset_size()
        return float(satisfiable_size**self.reward_power)

    def _largest_satisfiable_subset_size(self) -> int:
        ordered = sorted(self._selected)
        while len(ordered) > 1:
            ordered.pop()
            self.reward_checks += 1
            if self.compatibility.set_is_satisfiable(ordered):
                return len(ordered)
        return 1


__all__ = ["TriggerActivationEnv"]
