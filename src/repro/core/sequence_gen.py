"""SAT-guided sequence generation: the sequential analogue of the pattern pipeline.

The combinational DETERRENT flow turns rare nets into test patterns in three
steps: drop the nets that can never take their rare value (activatability
pre-filter), group the rest into compatible sets, and justify each set into
one SAT witness pattern.  This module mirrors that pipeline on the **raw
sequential netlist**, where "compatible" and "justifiable" are questions
about input *sequences* from reset rather than single patterns:

1. **Temporal pre-filter** — a state-dependent rare net survives only if its
   rare value is reachable under the grid cell's temporal rule
   (:class:`~repro.sat.temporal.SequentialJustifier` on the unrolled
   transition relation).  This is where the full-scan illusion dies: nets
   whose rare value requires an unreachable state are provably dropped.
2. **Greedy compatibility sets** — sets of rare nets that can *jointly* hold
   their rare values under the temporal rule, built greedily (rarest-first,
   then shuffled passes for diversity) with every candidate addition checked
   by joint unrolled justification — exact, not the pairwise approximation.
3. **Sequence witnesses** — each set's conjunction is justified as a
   :class:`~repro.trojan.model.SequentialTrigger` and the SAT model is
   decoded into a per-cycle input sequence.  Witnesses are replay-verified
   through :class:`~repro.simulation.compiled.CompiledSequentialNetlist`
   before they are emitted, and jointly-unsatisfiable sets (possible when a
   caller passes hand-built sets) are repaired by greedily re-adding nets
   rarest-first.

The emitted :class:`~repro.core.patterns.SequenceSet` plays the same role as
the combinational flow's :class:`~repro.core.patterns.PatternSet`: any
sampled multi-cycle Trojan whose trigger nets all landed in one generated set
provably fires on that set's witness sequence.  ``n_jobs > 1`` shards the
per-set witness extraction across worker processes
(:func:`repro.runner.parallel.parallel_sequence_witnesses`), with ``n_jobs=1``
as the serial reference path on one incremental unrolled solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.circuits.netlist import Netlist
from repro.core.patterns import SequenceSet
from repro.sat.justify import greedy_maximal_subset
from repro.sat.solver import SolverConfig
from repro.sat.temporal import SequentialJustifier, temporal_fire_cycles
from repro.simulation.rare_nets import RareNet
from repro.trojan.model import SequentialTrigger, TriggerCondition
from repro.utils.rng import RngLike, make_rng

OrderedRequirements = tuple[tuple[str, int], ...]


@dataclass
class SequentialCompatibility:
    """Temporal-rule compatibility data for one sequential netlist.

    Attributes:
        netlist: the analysed (raw sequential) netlist.
        cycles: unroll depth / sequence length of every justification query.
        mode: temporal rule of the workload (``consecutive``/``cumulative``).
        count: the rule's cycle count ``k``.
        rare_nets: the temporally-activatable rare nets, rarest first (the
            index order used by every set).
        unreachable: rare nets whose rare value is provably not reachable
            under the rule within ``cycles`` — dropped by the pre-filter.
        justifier: the shared unrolled solver stack.
    """

    netlist: Netlist
    cycles: int
    mode: str
    count: int
    rare_nets: list[RareNet]
    unreachable: list[RareNet]
    justifier: SequentialJustifier

    @property
    def num_rare_nets(self) -> int:
        """Number of temporally-activatable rare nets."""
        return len(self.rare_nets)

    def requirements(self, indices) -> dict[str, int]:
        """Net -> rare-value mapping for a set of rare-net indices."""
        return {
            self.rare_nets[index].net: self.rare_nets[index].rare_value
            for index in indices
        }

    def ordered_requirements(self, indices) -> OrderedRequirements:
        """Rarest-first (net, value) tuple for a set of rare-net indices."""
        return tuple(
            (self.rare_nets[index].net, self.rare_nets[index].rare_value)
            for index in sorted(indices)
        )

    def trigger(self, indices) -> SequentialTrigger:
        """The set's conjunction under the analysis's temporal rule."""
        return SequentialTrigger(
            condition=TriggerCondition(self.ordered_requirements(indices)),
            mode=self.mode,
            count=self.count,
        )

    def set_is_satisfiable(self, indices) -> bool:
        """Joint unrolled justification: can the whole set fire together?"""
        if not indices:
            return True
        return self.justifier.is_satisfiable(self.trigger(indices), self.cycles)

    def satisfiable_superset(self, indices) -> frozenset[int] | None:
        """One SAT call answering "can this set fire?" with a certificate.

        Returns None when the set cannot fire within the horizon.  On SAT,
        the witness model is mined for *additional* rare nets whose rare
        values it also drives under the temporal rule, and the (possibly
        much larger) jointly-fired index set is returned.  Because trigger
        satisfiability is monotone — a superset condition is strictly harder
        to fire, so SAT of a superset proves SAT of every subset — callers
        can answer any future subset query from the returned certificate
        without touching the solver (see :func:`greedy_compatible_sets`).
        """
        indices = sorted(indices)
        model = self.justifier.satisfying_model(self.trigger(indices), self.cycles)
        if model is None:
            return None
        # Per-(rare net, cycle) truth of each rare value in the model.
        expansion = self.justifier.expansion
        frames = self.cycles
        profile = np.zeros((len(self.rare_nets), frames), dtype=bool)
        for row, rare in enumerate(self.rare_nets):
            want = bool(rare.rare_value)
            for frame in range(frames):
                value = model.get(expansion.variable(rare.net, frame), False)
                profile[row, frame] = value == want
        # Greedy deterministic extension: add index j while the conjunction
        # of per-cycle bits still fires under (mode, count).
        mined = set(indices)
        bits = np.ones(frames, dtype=bool)
        for index in indices:
            bits &= profile[index]
        for index in range(len(self.rare_nets)):
            if index in mined:
                continue
            joined = bits & profile[index]
            if temporal_fire_cycles(self.mode, self.count, joined):
                mined.add(index)
                bits = joined
        return frozenset(mined)


def temporal_activatability(
    justifier: SequentialJustifier,
    rare_nets: list[RareNet],
    mode: str,
    count: int,
    cycles: int | None = None,
) -> list[bool]:
    """Per-net temporal pre-filter: is each rare value reachable under the rule?"""
    verdicts: list[bool] = []
    for rare in rare_nets:
        trigger = SequentialTrigger(
            condition=TriggerCondition(((rare.net, rare.rare_value),)),
            mode=mode,
            count=count,
        )
        verdicts.append(justifier.is_satisfiable(trigger, cycles))
    return verdicts


def analyze_sequential_compatibility(
    netlist: Netlist,
    rare_nets: list[RareNet],
    cycles: int,
    mode: str = "consecutive",
    count: int = 1,
    justifier: SequentialJustifier | None = None,
    max_rare_nets: int | None = None,
    solver_config: SolverConfig | None = None,
) -> SequentialCompatibility:
    """Pre-filter ``rare_nets`` by temporal activatability at depth ``cycles``.

    ``max_rare_nets`` optionally caps the candidates to the N rarest (the
    extraction order), bounding solver work on large designs.  Use with
    care: state-dependent extraction puts provably-unreachable nets
    (estimated probability 0) at the front of the order, so an aggressive
    cap can exclude every reachable net — the default considers all.

    ``solver_config`` tunes the CDCL solver behind the unrolled stack; it is
    ignored when a pre-built ``justifier`` is supplied (the justifier's own
    configuration wins).
    """
    if not netlist.is_sequential:
        raise ValueError(
            f"sequential compatibility requires flip-flops; {netlist.name!r} is "
            "combinational (use compute_compatibility)"
        )
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    # Re-sort defensively into extraction order (rarest first) so the
    # rarest-first guarantees of ordered_requirements / the greedy passes /
    # the max_rare_nets cap hold even for callers that reordered or filtered
    # the extraction output.
    candidates = sorted(rare_nets, key=lambda rare: (rare.probability, rare.net))
    if max_rare_nets is not None:
        candidates = candidates[:max_rare_nets]
    justifier = justifier or SequentialJustifier(netlist, cycles, config=solver_config)
    justifier.extend_to(cycles)
    verdicts = temporal_activatability(justifier, candidates, mode, count, cycles)
    return SequentialCompatibility(
        netlist=netlist,
        cycles=cycles,
        mode=mode,
        count=count,
        rare_nets=[rare for rare, ok in zip(candidates, verdicts) if ok],
        unreachable=[rare for rare, ok in zip(candidates, verdicts) if not ok],
        justifier=justifier,
    )


def greedy_compatible_sets(
    compatibility: SequentialCompatibility,
    num_sets: int,
    seed: RngLike = None,
    max_set_size: int | None = None,
    stall_limit: int = 8,
) -> list[tuple[int, ...]]:
    """Greedy maximal sets of jointly-justifiable rare nets (index tuples).

    Mirrors the combinational flow's compatible-set construction with the
    exact joint check in place of the pairwise dictionary: the first pass
    scans rarest-first, further passes scan random permutations for
    diversity, and every candidate addition must keep the accumulated
    conjunction justifiable under the analysis's temporal rule.  Duplicate
    maximal sets end a pass without yield; ``stall_limit`` consecutive
    duplicate passes end the search early (the design has run out of
    distinct maximal sets).

    Trigger satisfiability is **monotone** in the condition set (a superset
    condition is strictly harder to fire), so most candidate checks never
    reach the solver: every SAT model is mined for the maximal index set it
    jointly fires (:meth:`SequentialCompatibility.satisfiable_superset`) and
    future subsets of any mined set — or supersets of any recorded UNSAT
    set — are answered from those certificates.  Verdicts are provably
    identical to querying every candidate directly, so the chosen sets (and
    hence the emitted witnesses) do not depend on the caching.
    """
    count = compatibility.num_rare_nets
    if count == 0 or num_sets <= 0:
        return []
    rng = make_rng(seed)
    sets: list[tuple[int, ...]] = []
    seen: set[frozenset[int]] = set()
    # Singletons passed the pre-filter, so they are satisfiable by definition.
    verdicts: dict[frozenset[int], bool] = {
        frozenset((index,)): True for index in range(count)
    }
    sat_cover: list[frozenset[int]] = []  # mined jointly-fired sets (maximal)
    unsat_cover: list[frozenset[int]] = []  # sets proven unable to fire
    first_pass = True
    stall = 0
    while len(sets) < num_sets and stall < stall_limit:
        if first_pass:
            order = list(range(count))
            first_pass = False
        else:
            order = [int(index) for index in rng.permutation(count)]
        chosen: list[int] = []
        for index in order:
            if max_set_size is not None and len(chosen) >= max_set_size:
                break
            candidate = frozenset(chosen) | {index}
            verdict = verdicts.get(candidate)
            if verdict is None:
                # Monotonicity: subset of a known-SAT set is SAT, superset
                # of a known-UNSAT set is UNSAT — no solver call needed.
                if any(candidate <= known for known in sat_cover):
                    verdict = True
                elif any(known <= candidate for known in unsat_cover):
                    verdict = False
                else:
                    mined = compatibility.satisfiable_superset(candidate)
                    verdict = mined is not None
                    if mined is None:
                        unsat_cover.append(candidate)
                    elif not any(mined <= known for known in sat_cover):
                        sat_cover[:] = [
                            known for known in sat_cover if not known <= mined
                        ]
                        sat_cover.append(mined)
                verdicts[candidate] = verdict
            if verdict:
                chosen.append(index)
        key = frozenset(chosen)
        if chosen and key not in seen:
            seen.add(key)
            sets.append(tuple(sorted(chosen)))
            stall = 0
        else:
            stall += 1
    return sets


def sequence_witness_with_repair(
    justifier: SequentialJustifier,
    ordered_requirements: OrderedRequirements,
    mode: str,
    count: int,
    cycles: int | None = None,
) -> tuple[np.ndarray | None, int, int]:
    """Witness one requirement set under (mode, count), repairing if needed.

    ``ordered_requirements`` must be rarest-first: when the full conjunction
    cannot fire, nets are re-added greedily in that order, keeping each only
    while the accumulated conjunction stays justifiable — the sequential
    instantiation of :func:`repro.sat.justify.greedy_maximal_subset`, the
    same policy the combinational repair paths use.  Returns
    ``(sequence or None, first fire cycle or -1, requirements realised)``.
    """

    def _trigger(requirements: OrderedRequirements) -> SequentialTrigger:
        return SequentialTrigger(
            condition=TriggerCondition(requirements), mode=mode, count=count
        )

    witness = justifier.witness(_trigger(ordered_requirements), cycles)
    realized = len(ordered_requirements)
    if witness is None:
        kept = greedy_maximal_subset(
            list(ordered_requirements),
            lambda candidate: justifier.is_satisfiable(_trigger(tuple(candidate)), cycles),
        )
        if not kept:
            return None, -1, 0
        witness = justifier.witness(_trigger(tuple(kept)), cycles)
        if witness is None:  # pragma: no cover - kept sets are satisfiable
            return None, -1, 0
        realized = len(kept)
    return witness.sequence, witness.fire_cycle, realized


def generate_sequences(
    netlist: Netlist,
    rare_nets: list[RareNet],
    cycles: int,
    mode: str = "consecutive",
    count: int = 2,
    num_sequences: int = 16,
    seed: RngLike = None,
    justifier: SequentialJustifier | None = None,
    max_rare_nets: int | None = None,
    n_jobs: int = 1,
    technique: str = "SAT-guided",
    solver_config: SolverConfig | None = None,
) -> SequenceSet:
    """Generate SAT-guided test sequences from state-dependent rare nets.

    The full sequential pipeline: temporal pre-filter, greedy joint
    compatibility sets (at most ``num_sequences`` distinct sets — the
    sequence budget), and one replay-verified witness sequence per set.
    Every emitted sequence provably drives its whole set's rare-value
    conjunction to fire under (``mode``, ``count``) within ``cycles`` clock
    cycles from reset, so any sampled Trojan whose trigger nets are a subset
    of one set is covered by construction.

    ``solver_config`` tunes every CDCL solver in the pipeline (the serial
    stack and, for ``n_jobs != 1``, each worker's private stack); the
    emitted metadata carries the serial stack's cumulative
    :class:`~repro.sat.solver.SolverStats` under ``"solver_stats"``
    (worker-side stats are not aggregated).  Under active telemetry the
    whole pipeline runs inside a ``solver.sequence_gen`` span.
    """
    with obs.trace.span(
        "solver.sequence_gen",
        attrs={"cycles": cycles, "mode": mode, "rare_nets": len(rare_nets)},
    ) as gen_span:
        result = _generate_sequences(
            netlist, rare_nets, cycles, mode, count, num_sequences, seed,
            justifier, max_rare_nets, n_jobs, technique, solver_config,
        )
        gen_span.set_attr("sequences", int(result.sequences.shape[0]))
        return result


def _generate_sequences(
    netlist: Netlist,
    rare_nets: list[RareNet],
    cycles: int,
    mode: str,
    count: int,
    num_sequences: int,
    seed: RngLike,
    justifier: SequentialJustifier | None,
    max_rare_nets: int | None,
    n_jobs: int,
    technique: str,
    solver_config: SolverConfig | None,
) -> SequenceSet:
    inputs = netlist.inputs
    compatibility = analyze_sequential_compatibility(
        netlist, rare_nets, cycles, mode, count,
        justifier=justifier, max_rare_nets=max_rare_nets,
        solver_config=solver_config,
    )
    metadata = {
        "cycles": cycles,
        "mode": mode,
        "count": count,
        "num_rare_nets": len(rare_nets),
        "num_activatable": compatibility.num_rare_nets,
        "sets": [],
        "set_sizes": [],
        "fire_cycles": [],
    }
    empty = np.zeros((0, cycles, len(inputs)), dtype=np.uint8)
    if compatibility.num_rare_nets == 0:
        metadata["solver_stats"] = compatibility.justifier.stats().as_dict()
        return SequenceSet(
            inputs=inputs, sequences=empty, technique=technique, metadata=metadata
        )
    preferred = {
        rare.net: rare.rare_value for rare in compatibility.rare_nets
    }
    compatibility.justifier.set_preferred_values(preferred)
    sets = greedy_compatible_sets(compatibility, num_sequences, seed=seed)
    ordered_sets = [compatibility.ordered_requirements(indices) for indices in sets]
    if n_jobs != 1 and len(ordered_sets) > 1:
        from repro.runner.parallel import parallel_sequence_witnesses

        results = parallel_sequence_witnesses(
            netlist, ordered_sets, cycles, mode, count, n_jobs,
            preferred_values=preferred,
            # Workers must unroll from the same machine state the sets were
            # analysed from (a caller-supplied justifier may not be at reset).
            initial_state=compatibility.justifier.initial_state,
            solver_config=solver_config,
        )
    else:
        results = [
            sequence_witness_with_repair(
                compatibility.justifier, ordered, mode, count, cycles
            )
            for ordered in ordered_sets
        ]
    sequences: list[np.ndarray] = []
    for ordered, (sequence, fire_cycle, realized) in zip(ordered_sets, results):
        if sequence is None:
            continue
        sequences.append(np.asarray(sequence, dtype=np.uint8))
        # The *requested* set; on a repaired set only ``realized`` of its
        # requirements are guaranteed to hold (greedy rarest-first repair).
        metadata["sets"].append(ordered)
        metadata["set_sizes"].append(realized)
        metadata["fire_cycles"].append(int(fire_cycle))
    # Cumulative stats of the serial solver stack (pre-filter, greedy set
    # construction, and — on the n_jobs=1 path — witness extraction).
    metadata["solver_stats"] = compatibility.justifier.stats().as_dict()
    array = np.stack(sequences) if sequences else empty
    return SequenceSet(
        inputs=inputs, sequences=array, technique=technique, metadata=metadata
    )


__all__ = [
    "SequentialCompatibility",
    "analyze_sequential_compatibility",
    "generate_sequences",
    "greedy_compatible_sets",
    "sequence_witness_with_repair",
    "temporal_activatability",
]
