"""Configuration of the DETERRENT pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.rl.ppo import PpoConfig


@dataclass
class DeterrentConfig:
    """All knobs of the DETERRENT pipeline, with paper-faithful defaults.

    Attributes:
        rareness_threshold: probability below which a net counts as rare
            (paper default 0.1).
        num_probability_patterns: random patterns used to estimate signal
            probabilities for rare-net extraction.
        reward_mode: ``"per_step"`` computes the (SAT-verified) reward and
            state transition at every step — the configuration Figure 2
            identifies as best for set quality; ``"end_of_episode"`` computes
            the expensive check once per episode (§3.2), trading a small
            quality drop for a large training-rate increase.
        masking: state-dependent action masking (§3.3).
        reward_power: exponent applied to the compatible-set size in the reward
            (the paper uses the square; any power > 1 keeps the reward convex).
        exact_set_reward: verify the accumulated set with a full SAT check when
            computing the reward; when False the pairwise-compatibility
            approximation is used (cheaper, slightly optimistic).
        episode_length: maximum steps per episode (T in the paper).
        num_envs: parallel environment copies (the paper uses 16 for MIPS).
        total_training_steps: environment steps of PPO training.
        k_patterns: number of largest distinct compatible sets converted into
            test patterns (the paper's hyper-parameter k).
        ppo: PPO hyper-parameters; see :class:`repro.rl.ppo.PpoConfig`.
        boosted_exploration: apply the §3.4 exploration boost (entropy
            coefficient 1.0, GAE λ 0.99) on top of ``ppo``.
        seed: master seed for the whole pipeline.
        n_jobs: worker processes for the offline pairwise-compatibility
            phase (the paper uses 64); 1 = serial incremental solver
            (bit-identical results), <= 0 = one worker per CPU.
    """

    rareness_threshold: float = 0.1
    num_probability_patterns: int = 4096
    reward_mode: str = "per_step"
    masking: bool = True
    reward_power: float = 2.0
    exact_set_reward: bool = True
    episode_length: int = 40
    num_envs: int = 4
    total_training_steps: int = 6000
    k_patterns: int = 16
    ppo: PpoConfig = field(default_factory=PpoConfig)
    boosted_exploration: bool = False
    seed: int = 0
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.reward_mode not in ("per_step", "end_of_episode"):
            raise ValueError(
                f"reward_mode must be 'per_step' or 'end_of_episode', got {self.reward_mode!r}"
            )
        if not 0.0 < self.rareness_threshold <= 0.5:
            raise ValueError(
                f"rareness_threshold must be in (0, 0.5], got {self.rareness_threshold}"
            )
        if self.reward_power < 1.0:
            raise ValueError(f"reward_power must be >= 1, got {self.reward_power}")
        if self.episode_length <= 0 or self.num_envs <= 0 or self.k_patterns <= 0:
            raise ValueError("episode_length, num_envs, and k_patterns must be positive")

    def effective_ppo(self) -> PpoConfig:
        """The PPO config actually used (with the exploration boost applied if set)."""
        return self.ppo.boosted_exploration() if self.boosted_exploration else self.ppo

    def with_overrides(self, **changes) -> "DeterrentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Configuration profile used by the fast test-suite / pytest-benchmark runs.
QUICK_PROFILE = DeterrentConfig(
    num_probability_patterns=1024,
    episode_length=20,
    num_envs=2,
    total_training_steps=1024,
    k_patterns=8,
    ppo=PpoConfig(num_steps=64, minibatch_size=32, hidden_sizes=(32, 32)),
)


__all__ = ["DeterrentConfig", "QUICK_PROFILE"]
