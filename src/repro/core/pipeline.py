"""End-to-end DETERRENT pipeline.

``DeterrentPipeline.run(netlist)`` performs the full flow of Figure 4:
rare-net extraction → pairwise compatibility (offline phase) → PPO training on
the trigger-activation MDP → selection of the k largest distinct compatible
sets → SAT-based test-pattern generation, and returns everything an
experiment needs (patterns, sets, timing, training statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.netlist import Netlist
from repro.circuits.scan import ensure_combinational
from repro.core.agent import AgentResult, DeterrentAgent
from repro.core.compatibility import CompatibilityAnalysis, compute_compatibility
from repro.core.config import DeterrentConfig
from repro.core.patterns import PatternSet, generate_patterns
from repro.runner.cache import get_default_cache, netlist_fingerprint
from repro.simulation.compiled import compile_netlist
from repro.simulation.rare_nets import RareNet, extract_rare_nets
from repro.utils.timing import Stopwatch


@dataclass
class DeterrentResult:
    """All artefacts of one DETERRENT run on one netlist."""

    netlist: Netlist
    rare_nets: list[RareNet]
    compatibility: CompatibilityAnalysis
    agent_result: AgentResult
    pattern_set: PatternSet
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def test_length(self) -> int:
        """Number of generated test patterns (the paper's "Test Length")."""
        return len(self.pattern_set)

    @property
    def max_compatible_set_size(self) -> int:
        """Largest compatible rare-net set found during training."""
        return self.agent_result.max_compatible_set_size


class DeterrentPipeline:
    """Runs the complete DETERRENT flow for a configuration."""

    def __init__(self, config: DeterrentConfig | None = None) -> None:
        self.config = config or DeterrentConfig()

    def run(
        self,
        netlist: Netlist,
        rare_nets: list[RareNet] | None = None,
        compatibility: CompatibilityAnalysis | None = None,
    ) -> DeterrentResult:
        """Execute the pipeline on ``netlist``.

        ``rare_nets`` and ``compatibility`` may be supplied to reuse a
        previously computed offline phase (as the threshold-transfer
        experiment of §4.5 does).
        """
        config = self.config
        stopwatch = Stopwatch().start()
        combinational = ensure_combinational(netlist)
        # Lower the netlist once up front; every downstream simulation —
        # probability estimation, baselines, coverage evaluation — reuses the
        # cached compiled engine instead of re-walking Gate objects.
        compile_netlist(combinational)
        stopwatch.lap("compile")

        if rare_nets is None:
            def _extract() -> list[RareNet]:
                return extract_rare_nets(
                    combinational,
                    threshold=config.rareness_threshold,
                    num_patterns=config.num_probability_patterns,
                    seed=config.seed,
                )

            cache = get_default_cache()
            if cache is not None:
                rare_nets = cache.fetch(
                    "rare_nets",
                    _extract,
                    netlist=netlist_fingerprint(combinational),
                    threshold=config.rareness_threshold,
                    num_patterns=config.num_probability_patterns,
                    seed=config.seed,
                )
            else:
                rare_nets = _extract()
        stopwatch.lap("rare_net_extraction")
        if not rare_nets:
            raise ValueError(
                f"no rare nets found in {netlist.name!r} at threshold "
                f"{config.rareness_threshold}; lower the threshold or use a larger circuit"
            )

        if compatibility is None:
            # Sharded across config.n_jobs worker processes (paper §3.3);
            # memoised in the default artifact cache when one is configured.
            compatibility = compute_compatibility(
                combinational, rare_nets, n_jobs=config.n_jobs
            )
        stopwatch.lap("compatibility")
        if compatibility.num_rare_nets == 0:
            raise ValueError(
                f"none of the {len(rare_nets)} rare nets of {netlist.name!r} is activatable"
            )
        # Bias SAT witnesses toward rare values so each generated pattern also
        # activates unconstrained rare nets opportunistically (see Justifier).
        compatibility.justifier.set_preferred_values(
            {rare.net: rare.rare_value for rare in compatibility.rare_nets}
        )

        agent = DeterrentAgent(compatibility, config)
        agent_result = agent.train()
        stopwatch.lap("training")

        selected_sets = agent_result.largest_sets(config.k_patterns)
        # Like the pre-filter and pair queries, per-set witness generation
        # shards across config.n_jobs workers (serial when n_jobs == 1).
        pattern_set = generate_patterns(
            compatibility, selected_sets, technique="DETERRENT", n_jobs=config.n_jobs
        )
        stopwatch.lap("pattern_generation")
        stopwatch.stop()

        return DeterrentResult(
            netlist=combinational,
            rare_nets=list(rare_nets),
            compatibility=compatibility,
            agent_result=agent_result,
            pattern_set=pattern_set,
            timings=dict(stopwatch.laps),
        )


__all__ = ["DeterrentPipeline", "DeterrentResult"]
