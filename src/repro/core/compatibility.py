"""Pairwise compatibility of rare nets (the paper's offline phase).

Two rare nets are *compatible* when some input pattern drives both to their
rare values simultaneously.  DETERRENT precomputes the full pairwise
compatibility dictionary before training (§3.3) so that action masking and the
end-of-episode state transitions become dictionary lookups instead of SAT
calls.  The paper parallelises this over 64 processes; here the O(r²) pair
queries are answered either by a single incremental SAT solver (``n_jobs=1``)
or sharded across a process pool in which every worker owns its own solver
over the shared CNF encoding (:mod:`repro.runner.parallel`).  Both paths
produce bit-identical matrices, and results are memoised in the on-disk
artifact cache (:mod:`repro.runner.cache`) when one is configured.

The same structure doubles as the compatibility *graph* used by the TARMAC
baseline's maximal-clique sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.runner.cache import ArtifactCache, get_default_cache, netlist_fingerprint
from repro.runner.parallel import (
    parallel_activatability,
    parallel_compatibility_matrix,
    serial_activatability,
    serial_compatibility_matrix,
)
from repro.sat.justify import Justifier
from repro.simulation.rare_nets import RareNet


@dataclass
class CompatibilityAnalysis:
    """Rare-net compatibility data for one netlist.

    Attributes:
        netlist: the analysed (combinational) netlist.
        rare_nets: the rare nets that are individually activatable, in the
            order used for all matrix/vector indexing.
        matrix: boolean pairwise-compatibility matrix; ``matrix[i, j]`` is True
            iff rare nets ``i`` and ``j`` can take their rare values together.
        unsatisfiable: rare nets from the input list that can never take their
            rare value (redundant/constant logic) and were dropped.
    """

    netlist: Netlist
    rare_nets: list[RareNet]
    matrix: np.ndarray
    unsatisfiable: list[RareNet]
    justifier: Justifier

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_rare_nets(self) -> int:
        """Number of individually-activatable rare nets."""
        return len(self.rare_nets)

    def index_of(self, net: str) -> int:
        """Index of a rare net by name."""
        for index, rare in enumerate(self.rare_nets):
            if rare.net == net:
                return index
        raise KeyError(f"net {net!r} is not among the analysed rare nets")

    def compatible(self, index_a: int, index_b: int) -> bool:
        """Pairwise compatibility by index."""
        return bool(self.matrix[index_a, index_b])

    def compatible_with_all(self, candidate: int, selected: set[int]) -> bool:
        """True if ``candidate`` is pairwise compatible with every selected index."""
        if not selected:
            return True
        selected_indices = np.fromiter(selected, dtype=np.int64)
        return bool(self.matrix[candidate, selected_indices].all())

    def requirements(self, indices: set[int] | list[int]) -> dict[str, int]:
        """Net -> rare-value mapping for a set of rare-net indices."""
        return {
            self.rare_nets[index].net: self.rare_nets[index].rare_value
            for index in indices
        }

    def set_is_satisfiable(self, indices: set[int] | list[int]) -> bool:
        """Exact SAT check: can all indexed rare nets take their rare values at once?"""
        if not indices:
            return True
        return self.justifier.is_satisfiable(self.requirements(indices))

    def adjacency(self) -> dict[int, set[int]]:
        """Compatibility graph as an adjacency mapping (used by TARMAC)."""
        graph: dict[int, set[int]] = {i: set() for i in range(self.num_rare_nets)}
        rows, cols = np.nonzero(self.matrix)
        for row, col in zip(rows, cols):
            if row != col:
                graph[int(row)].add(int(col))
        return graph


#: Sentinel meaning "use the process-wide default artifact cache".
_DEFAULT_CACHE = object()


def compute_compatibility(
    netlist: Netlist,
    rare_nets: list[RareNet],
    *,
    n_jobs: int = 1,
    justifier: Justifier | None = None,
    cache: ArtifactCache | None | object = _DEFAULT_CACHE,
    n_workers: int | None = None,
) -> CompatibilityAnalysis:
    """Build the :class:`CompatibilityAnalysis` for ``rare_nets`` of ``netlist``.

    Args:
        netlist: combinational netlist to analyse.
        rare_nets: candidate rare nets (order defines matrix indexing of the
            activatable subset).
        n_jobs: worker processes for the O(r) activatability pre-filter and
            the O(r²) pair queries.  ``1`` answers everything on one
            incremental solver; ``> 1`` shards both stages across a process
            pool (bit-identical verdicts); ``<= 0`` means one worker per CPU.
        justifier: optional pre-built solver stack to reuse (also attached to
            the returned analysis for downstream witness generation).
        cache: artifact cache for memoising the result on disk; defaults to
            the process-wide cache (:func:`repro.runner.cache
            .get_default_cache`), pass ``None`` to disable.
        n_workers: deprecated alias for ``n_jobs`` (paper-parity name kept
            from the original serial interface).

    The boolean matrix is bit-identical across all execution paths (serial,
    sharded, cache hit).  Downstream SAT *witnesses* are not guaranteed
    identical across paths: the CDCL solver keeps learned clauses, so a
    justifier that answered the pair queries itself (serial path) is in a
    different state than a fresh one (cache hit / sharded path), and may
    return different — equally valid — models for the same requirements.
    """
    if n_workers is not None:
        # The legacy alias keeps its original strict contract (>= 1); the
        # n_jobs spelling additionally allows <= 0 as "one worker per CPU".
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        n_jobs = n_workers
    if cache is _DEFAULT_CACHE:
        cache = get_default_cache()

    justifier = justifier or Justifier(netlist)

    def _build() -> dict:
        # O(r) activatability pre-filter: sharded across workers like the
        # pair queries when n_jobs > 1 (verdicts are exact SAT answers, so
        # the sharded result is bit-identical to the serial one).  The two
        # stages use separate pools because pair shards are defined over the
        # *post-filter* subset; the duplicated per-worker init (bench parse +
        # CNF encode) is milliseconds against the O(r²) solve time.
        candidates = [(rare.net, rare.rare_value) for rare in rare_nets]
        if n_jobs == 1 or len(rare_nets) < 2:
            verdicts = serial_activatability(justifier, candidates)
        else:
            verdicts = parallel_activatability(netlist, candidates, n_jobs)
        activatable = [rare for rare, ok in zip(rare_nets, verdicts) if ok]
        unsatisfiable = [rare for rare, ok in zip(rare_nets, verdicts) if not ok]

        requirements = [(rare.net, rare.rare_value) for rare in activatable]
        if n_jobs == 1 or len(activatable) < 2:
            matrix = serial_compatibility_matrix(justifier, requirements)
        else:
            matrix = parallel_compatibility_matrix(netlist, requirements, n_jobs)
        return {"rare_nets": activatable, "matrix": matrix, "unsatisfiable": unsatisfiable}

    if cache is not None:
        # fetch() is single-flight across processes: concurrent workers that
        # need the same analysis serialise on a file lock instead of each
        # recomputing the O(r^2) pair queries.
        artifact = cache.fetch(
            "compatibility",
            _build,
            netlist=netlist_fingerprint(netlist),
            rare_nets=[(rare.net, rare.rare_value) for rare in rare_nets],
        )
    else:
        artifact = _build()
    return CompatibilityAnalysis(
        netlist=netlist,
        rare_nets=artifact["rare_nets"],
        matrix=artifact["matrix"],
        unsatisfiable=artifact["unsatisfiable"],
        justifier=justifier,
    )


__all__ = ["CompatibilityAnalysis", "compute_compatibility"]
