"""Pairwise compatibility of rare nets (the paper's offline phase).

Two rare nets are *compatible* when some input pattern drives both to their
rare values simultaneously.  DETERRENT precomputes the full pairwise
compatibility dictionary before training (§3.3) so that action masking and the
end-of-episode state transitions become dictionary lookups instead of SAT
calls.  The paper parallelises this over 64 processes; here a single
incremental SAT solver answers all pairs (the circuit is encoded once and each
pair is an assumption-based query), which is fast enough at benchmark scale.

The same structure doubles as the compatibility *graph* used by the TARMAC
baseline's maximal-clique sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.sat.justify import Justifier
from repro.simulation.rare_nets import RareNet


@dataclass
class CompatibilityAnalysis:
    """Rare-net compatibility data for one netlist.

    Attributes:
        netlist: the analysed (combinational) netlist.
        rare_nets: the rare nets that are individually activatable, in the
            order used for all matrix/vector indexing.
        matrix: boolean pairwise-compatibility matrix; ``matrix[i, j]`` is True
            iff rare nets ``i`` and ``j`` can take their rare values together.
        unsatisfiable: rare nets from the input list that can never take their
            rare value (redundant/constant logic) and were dropped.
    """

    netlist: Netlist
    rare_nets: list[RareNet]
    matrix: np.ndarray
    unsatisfiable: list[RareNet]
    justifier: Justifier

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_rare_nets(self) -> int:
        """Number of individually-activatable rare nets."""
        return len(self.rare_nets)

    def index_of(self, net: str) -> int:
        """Index of a rare net by name."""
        for index, rare in enumerate(self.rare_nets):
            if rare.net == net:
                return index
        raise KeyError(f"net {net!r} is not among the analysed rare nets")

    def compatible(self, index_a: int, index_b: int) -> bool:
        """Pairwise compatibility by index."""
        return bool(self.matrix[index_a, index_b])

    def compatible_with_all(self, candidate: int, selected: set[int]) -> bool:
        """True if ``candidate`` is pairwise compatible with every selected index."""
        if not selected:
            return True
        selected_indices = np.fromiter(selected, dtype=np.int64)
        return bool(self.matrix[candidate, selected_indices].all())

    def requirements(self, indices: set[int] | list[int]) -> dict[str, int]:
        """Net -> rare-value mapping for a set of rare-net indices."""
        return {
            self.rare_nets[index].net: self.rare_nets[index].rare_value
            for index in indices
        }

    def set_is_satisfiable(self, indices: set[int] | list[int]) -> bool:
        """Exact SAT check: can all indexed rare nets take their rare values at once?"""
        if not indices:
            return True
        return self.justifier.is_satisfiable(self.requirements(indices))

    def adjacency(self) -> dict[int, set[int]]:
        """Compatibility graph as an adjacency mapping (used by TARMAC)."""
        graph: dict[int, set[int]] = {i: set() for i in range(self.num_rare_nets)}
        rows, cols = np.nonzero(self.matrix)
        for row, col in zip(rows, cols):
            if row != col:
                graph[int(row)].add(int(col))
        return graph


def compute_compatibility(
    netlist: Netlist,
    rare_nets: list[RareNet],
    *,
    n_workers: int = 1,
    justifier: Justifier | None = None,
) -> CompatibilityAnalysis:
    """Build the :class:`CompatibilityAnalysis` for ``rare_nets`` of ``netlist``.

    ``n_workers`` is accepted for interface parity with the paper's
    64-process precomputation but the computation is sequential: the
    incremental SAT solver makes each pair query cheap enough that process
    parallelism is unnecessary at this scale.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    justifier = justifier or Justifier(netlist)

    activatable: list[RareNet] = []
    unsatisfiable: list[RareNet] = []
    for rare in rare_nets:
        if justifier.is_satisfiable({rare.net: rare.rare_value}):
            activatable.append(rare)
        else:
            unsatisfiable.append(rare)

    count = len(activatable)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    for i in range(count):
        for j in range(i + 1, count):
            compatible = justifier.are_compatible(
                {activatable[i].net: activatable[i].rare_value},
                {activatable[j].net: activatable[j].rare_value},
            )
            matrix[i, j] = compatible
            matrix[j, i] = compatible
    return CompatibilityAnalysis(
        netlist=netlist,
        rare_nets=activatable,
        matrix=matrix,
        unsatisfiable=unsatisfiable,
        justifier=justifier,
    )


__all__ = ["CompatibilityAnalysis", "compute_compatibility"]
