"""Test-pattern generation from compatible rare-net sets (and pattern containers).

A :class:`PatternSet` is the interface shared by DETERRENT and every baseline:
an ordered list of input patterns over the controllable nets of a netlist.
The Trojan evaluator consumes pattern sets; the experiments compare their
sizes and trigger coverage.

:class:`SequenceSet` is the sequential-workload counterpart: an ordered set
of multi-cycle input *sequences* over the primary inputs of a raw sequential
netlist, consumed by the multi-cycle Trojan evaluator
(:func:`repro.trojan.evaluation.sequence_trigger_coverage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.compatibility import CompatibilityAnalysis
from repro.sat.justify import Justifier, greedy_maximal_subset
from repro.utils.rng import RngLike, make_rng


@dataclass
class PatternSet:
    """An ordered set of test patterns for one netlist.

    Attributes:
        sources: the controllable nets, defining the column order of ``patterns``.
        patterns: 0/1 array of shape ``(num_patterns, len(sources))``.
        technique: name of the generating technique (for reports).
        metadata: free-form extra information (e.g. the compatible set sizes).
    """

    sources: tuple[str, ...]
    patterns: np.ndarray
    technique: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.patterns = np.atleast_2d(np.asarray(self.patterns, dtype=np.uint8))
        if self.patterns.size and self.patterns.shape[1] != len(self.sources):
            raise ValueError(
                f"pattern width {self.patterns.shape[1]} does not match "
                f"{len(self.sources)} source nets"
            )

    def __len__(self) -> int:
        return 0 if self.patterns.size == 0 else self.patterns.shape[0]

    @classmethod
    def empty(cls, netlist: Netlist, technique: str = "") -> "PatternSet":
        """An empty pattern set for ``netlist``."""
        sources = netlist.combinational_sources()
        return cls(sources=sources, patterns=np.zeros((0, len(sources)), dtype=np.uint8),
                   technique=technique)

    @classmethod
    def from_assignments(
        cls,
        netlist: Netlist,
        assignments: list[dict[str, int]],
        technique: str = "",
        metadata: dict | None = None,
    ) -> "PatternSet":
        """Build a pattern set from per-pattern net-name -> value mappings."""
        sources = netlist.combinational_sources()
        array = np.zeros((len(assignments), len(sources)), dtype=np.uint8)
        for row, assignment in enumerate(assignments):
            for column, net in enumerate(sources):
                array[row, column] = 1 if assignment.get(net, 0) else 0
        return cls(sources=sources, patterns=array, technique=technique,
                   metadata=metadata or {})

    def truncated(self, max_patterns: int) -> "PatternSet":
        """The first ``max_patterns`` patterns (used for coverage-vs-length curves)."""
        return PatternSet(
            sources=self.sources,
            patterns=self.patterns[:max_patterns],
            technique=self.technique,
            metadata=dict(self.metadata),
        )

    def concatenated(self, other: "PatternSet") -> "PatternSet":
        """Concatenate two pattern sets over identical sources."""
        if self.sources != other.sources:
            raise ValueError("pattern sets target different source nets")
        return PatternSet(
            sources=self.sources,
            patterns=np.vstack([self.patterns, other.patterns]) if len(other) else self.patterns,
            technique=self.technique or other.technique,
            metadata={**other.metadata, **self.metadata},
        )


@dataclass
class SequenceSet:
    """An ordered set of multi-cycle test sequences for one sequential netlist.

    Attributes:
        inputs: the primary inputs, defining the last axis of ``sequences``.
        sequences: 0/1 array of shape ``(num_sequences, cycles, len(inputs))``;
            ``sequences[s, t]`` is the stimulus applied at clock cycle ``t``
            of sequence ``s``.  Every sequence starts from the reset state.
        technique: name of the generating technique (for reports).
        metadata: free-form extra information.
    """

    inputs: tuple[str, ...]
    sequences: np.ndarray
    technique: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.sequences = np.asarray(self.sequences, dtype=np.uint8)
        if self.sequences.ndim != 3:
            raise ValueError(
                f"sequences must be 3-D (num_sequences, cycles, num_inputs), "
                f"got shape {self.sequences.shape}"
            )
        if self.sequences.size and self.sequences.shape[2] != len(self.inputs):
            raise ValueError(
                f"sequence width {self.sequences.shape[2]} does not match "
                f"{len(self.inputs)} input nets"
            )

    def __len__(self) -> int:
        return self.sequences.shape[0]

    @property
    def cycles(self) -> int:
        """Clock cycles per sequence."""
        return self.sequences.shape[1]

    @classmethod
    def random(
        cls,
        netlist: Netlist,
        num_sequences: int,
        cycles: int,
        seed: RngLike = None,
        technique: str = "Random",
    ) -> "SequenceSet":
        """Uniformly random stimulus — the baseline sequential workload."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if num_sequences < 0:
            raise ValueError(f"num_sequences must be >= 0, got {num_sequences}")
        rng = make_rng(seed)
        inputs = netlist.inputs
        sequences = rng.integers(
            0, 2, size=(num_sequences, cycles, len(inputs)), dtype=np.uint8
        )
        return cls(inputs=inputs, sequences=sequences, technique=technique)


def generate_patterns(
    compatibility: CompatibilityAnalysis,
    compatible_sets: list[frozenset[int]],
    technique: str = "DETERRENT",
    n_jobs: int = 1,
) -> PatternSet:
    """Generate one test pattern per compatible set using the SAT solver.

    Mirrors the last stage of the paper's flow: each of the ``k`` largest
    distinct sets of compatible rare nets is justified by the SAT solver,
    yielding an input pattern that drives every net in the set to its rare
    value.  Sets that turn out not to be jointly satisfiable (possible when
    the environment only used the pairwise approximation) are repaired by
    greedily dropping their least-rare nets until a witness exists.

    ``n_jobs > 1`` shards the per-set witness queries across worker
    processes (:func:`repro.runner.parallel.parallel_pattern_witnesses`);
    ``n_jobs=1`` is the reference serial path on the analysis's own
    incremental solver.  Every path emits a valid witness per (repaired)
    set, but the concrete patterns may differ between paths because worker
    solvers start from fresh clause databases.
    """
    if n_jobs != 1 and len(compatible_sets) > 1:
        return _generate_patterns_sharded(
            compatibility, compatible_sets, technique, n_jobs
        )
    justifier = compatibility.justifier
    netlist = compatibility.netlist
    assignments: list[dict[str, int]] = []
    realized_sizes: list[int] = []
    for indices in compatible_sets:
        requirements = compatibility.requirements(indices)
        witness = justifier.witness(requirements)
        if witness is None:
            witness, requirements = _repair_set(compatibility, justifier, indices)
            if witness is None:
                continue
        assignments.append(witness)
        realized_sizes.append(len(requirements))
    return PatternSet.from_assignments(
        netlist,
        assignments,
        technique=technique,
        metadata={"set_sizes": realized_sizes},
    )


def _generate_patterns_sharded(
    compatibility: CompatibilityAnalysis,
    compatible_sets: list[frozenset[int]],
    technique: str,
    n_jobs: int,
) -> PatternSet:
    """The ``n_jobs > 1`` witness path: one requirement set per shard item."""
    from repro.runner.parallel import parallel_pattern_witnesses

    ordered_sets = [
        tuple(
            (compatibility.rare_nets[index].net, compatibility.rare_nets[index].rare_value)
            for index in sorted(
                indices, key=lambda i: compatibility.rare_nets[i].probability
            )
        )
        for indices in compatible_sets
    ]
    results = parallel_pattern_witnesses(
        compatibility.netlist,
        ordered_sets,
        n_jobs,
        preferred_values=compatibility.justifier.preferred_values,
    )
    assignments = [witness for witness, _ in results if witness is not None]
    realized_sizes = [realized for witness, realized in results if witness is not None]
    return PatternSet.from_assignments(
        compatibility.netlist,
        assignments,
        technique=technique,
        metadata={"set_sizes": realized_sizes},
    )


def _repair_set(
    compatibility: CompatibilityAnalysis,
    justifier: Justifier,
    indices: frozenset[int],
) -> tuple[dict[str, int] | None, dict[str, int]]:
    """Shrink a jointly-unsatisfiable set to a maximal satisfiable subset.

    Nets are re-added greedily (rarest first), keeping each net only if the
    accumulated requirement set stays satisfiable.  This retains as many rare
    nets as possible, unlike simply truncating the set.  The policy lives in
    :func:`repro.sat.justify.greedy_maximal_subset`, shared with the sharded
    pattern and sequence witness paths.
    """
    ordered = sorted(indices, key=lambda i: compatibility.rare_nets[i].probability)
    kept = greedy_maximal_subset(
        ordered,
        lambda candidate: justifier.is_satisfiable(compatibility.requirements(candidate)),
    )
    if not kept:
        return None, {}
    requirements = compatibility.requirements(kept)
    return justifier.witness(requirements), requirements


__all__ = ["PatternSet", "SequenceSet", "generate_patterns"]
