"""Durable on-disk job queue: atomic leases, heartbeats, crash-safe acks.

The queue is a directory, so it survives every process that touches it and
needs no broker.  One job is one *task file*; workers claim jobs by
atomically creating a *lease file*, renew the lease with heartbeats while
they run, and *ack* by writing a result file and removing the task.  Every
transition is a single atomic filesystem operation (``O_CREAT|O_EXCL``
create, ``os.replace``, ``os.unlink``), so a crash at any point leaves the
queue in a state the next reader understands:

- task file, no lease → queued (claimable);
- task file + live lease → running (left alone);
- task file + expired lease → the worker died or hung: any worker may
  *reclaim* the job (delete the stale lease, claim again with an
  incremented delivery count);
- result file → done (the task and lease files are gone or ignorable).

Layout under the queue root::

    tasks/<job_id>.task      pickled header + TaskSpec (atomic write)
    leases/<job_id>.lease    JSON lease (atomic claim via O_CREAT|O_EXCL)
    results/<job_id>.result  pickled QueueResult (atomic write)
    workers/<worker>.json    per-worker liveness heartbeat
    events.log               append-only JSON lines (reclaims, corrupt tasks)
    events.log.1             most recent rotated-out event segment
    events_totals.json       counters folded out of rotated segments
    events.lock              flock guarding event append/rotate/count
    stop                     cooperative shutdown marker

The event log is size-bounded: when ``events.log`` grows past
``events_max_bytes`` its per-event counts are folded into
``events_totals.json`` and the file is rotated to ``events.log.1`` (one
segment of raw history kept for inspection).  ``stats()`` therefore reports
lifetime counters as *totals + current segment*, and every reader tolerates
a rotation happening mid-read — event data is telemetry, never control
flow.

Job ids are **deterministic content addresses**: the default id of a task
spec is :func:`repro.runner.cache.config_fingerprint` over the spec's
canonical description — the same SHA-256 addressing scheme the
:class:`~repro.runner.cache.ArtifactCache` uses for artifacts — so
re-enqueueing the same work is idempotent and the HTTP service can use one
digest as both its job id and its cache address.  Callers that need
distinct ids for repeated attempts (the queue execution backend) pass an
explicit ``job_id``.

Delivery counting feeds fault injection: a job's lease records how many
times it has been claimed, and :func:`worker_loop` installs that count as
the attempt offset in :mod:`repro.runner.faults` — so a scripted
"crash on attempt 1" rule fires once, kills one worker for real, and the
reclaimed delivery (attempt 2) recovers, exactly like a retry round on the
in-process backends.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro import obs
from repro.runner.cache import config_fingerprint

#: Default lease duration: a worker that neither heartbeats nor acks within
#: this window is presumed dead and its job becomes reclaimable.
DEFAULT_LEASE_SECONDS = 30.0

#: A worker whose liveness heartbeat is older than this is reported dead.
WORKER_LIVENESS_SECONDS = 10.0

#: Rotate ``events.log`` once it grows past this many bytes.
DEFAULT_EVENTS_MAX_BYTES = 1_000_000


class LeaseLost(RuntimeError):
    """This worker's lease was reclaimed by a peer (it was presumed dead)."""


@dataclass(frozen=True)
class TaskSpec:
    """One picklable unit of queued work: a module-level function + arguments.

    ``fn`` must be importable by name in the worker process (the same
    contract the process backend imposes).  ``initializer``/``initargs``
    replay the submitting side's worker initialisation (per-worker solver
    stacks, fault plans) once per worker process before the first task that
    carries them runs.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    initializer: Callable[..., None] | None = None
    initargs: tuple = ()
    label: str = "task"

    def content_key(self) -> dict[str, Any]:
        """Canonical description of this spec for content-addressed job ids."""

        def _name(obj: Any) -> str | None:
            if obj is None:
                return None
            return f"{getattr(obj, '__module__', '?')}:{getattr(obj, '__qualname__', repr(obj))}"

        payload = pickle.dumps(
            (self.args, tuple(sorted(self.kwargs.items())), self.initargs),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return {
            "fn": _name(self.fn),
            "initializer": _name(self.initializer),
            "payload": hashlib.sha256(payload).hexdigest(),
            "label": self.label,
        }

    def job_id(self) -> str:
        """Deterministic content-addressed id (ArtifactCache addressing)."""
        return config_fingerprint(**self.content_key())


@dataclass
class Lease:
    """A claimed job: the spec plus everything needed to ack or renew it."""

    job_id: str
    spec: TaskSpec
    header: dict[str, Any]
    worker: str
    pid: int
    deliveries: int
    leased_at: float
    expires_at: float
    lease_seconds: float


@dataclass
class QueueResult:
    """The terminal state of one job (stored at ``results/<job_id>.result``)."""

    job_id: str
    ok: bool
    value: Any = None
    error: dict[str, str] | None = None
    worker: str = ""
    deliveries: int = 0
    elapsed: float = 0.0


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class DurableQueue:
    """Crash-safe work queue over one directory (see the module docstring)."""

    def __init__(
        self,
        root: str | Path,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        events_max_bytes: int = DEFAULT_EVENTS_MAX_BYTES,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if events_max_bytes <= 0:
            raise ValueError(f"events_max_bytes must be > 0, got {events_max_bytes}")
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)
        self.events_max_bytes = int(events_max_bytes)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.workers_dir = self.root / "workers"
        self.events_path = self.root / "events.log"
        self.events_totals_path = self.root / "events_totals.json"
        self.events_lock_path = self.root / "events.lock"
        self.stop_path = self.root / "stop"
        for directory in (
            self.tasks_dir, self.leases_dir, self.results_dir, self.workers_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(
        self,
        spec: TaskSpec,
        job_id: str | None = None,
        sys_path: list[str] | None = None,
        cache_dir: str | None = None,
        meta: dict[str, Any] | None = None,
        trace: dict[str, Any] | None = None,
    ) -> str:
        """Enqueue ``spec``; return its job id.  Idempotent per id.

        ``sys_path`` (default: the caller's ``sys.path``) is stored in a
        plain header *before* the pickled spec, so a worker can extend its
        import path before unpickling — tasks defined in the caller's local
        modules (e.g. a test file) stay loadable.  ``cache_dir`` names the
        artifact cache the worker should install while running this job.
        ``trace`` carries the submitter's span context plus trace directory
        (``{"trace_id", "span_id", "dir"}``) so the worker's ``queue.job``
        span joins the submitter's trace (see :mod:`repro.obs.trace`).
        """
        if job_id is None:
            job_id = spec.job_id()
        task_path = self.tasks_dir / f"{job_id}.task"
        if task_path.exists() or self.result_path(job_id).exists():
            return job_id  # already queued, running, or done: idempotent
        header = {
            "job_id": job_id,
            "sys_path": list(sys_path if sys_path is not None else sys.path),
            "cache_dir": cache_dir,
            "label": spec.label,
            "enqueued_at": time.time(),
            "meta": dict(meta or {}),
            "trace": dict(trace) if trace else None,
        }
        buffer = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
        buffer += pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(task_path, buffer)
        return job_id

    def cancel(self, job_id: str) -> bool:
        """Remove a queued (unleased, unfinished) job; True when removed."""
        if self._live_lease(job_id) is not None:
            return False
        try:
            (self.tasks_dir / f"{job_id}.task").unlink()
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    # Worker side: claim / heartbeat / ack / fail / release
    # ------------------------------------------------------------------
    def claim(self, worker: str, now: float | None = None) -> Lease | None:
        """Lease the oldest claimable job, or None when nothing is available.

        Work-stealing: every worker scans the shared task directory; an
        exclusive lease-file create decides races.  A job whose lease has
        expired is *reclaimed* — the stale lease is deleted (exactly one
        racer wins the unlink) and the job is claimed again with its
        delivery count incremented, so fault rules and metrics can tell a
        first delivery from a redelivery.
        """
        if now is None:
            now = time.time()
        candidates = []
        for task_path in self.tasks_dir.glob("*.task"):
            try:
                candidates.append((task_path.stat().st_mtime, task_path))
            except OSError:
                continue  # acked concurrently
        for _, task_path in sorted(candidates, key=lambda pair: (pair[0], pair[1].name)):
            job_id = task_path.stem
            if self.result_path(job_id).exists():
                # Finished but not fully cleaned up (a crash between writing
                # the result and removing the task): finish the cleanup.
                self._cleanup_done(job_id)
                continue
            deliveries = 1
            lease_path = self.leases_dir / f"{job_id}.lease"
            stale = self._read_lease(lease_path)
            if stale is not None:
                if stale.get("expires_at", 0.0) > now:
                    continue  # live lease: someone else is on it
                try:
                    lease_path.unlink()
                except OSError:
                    continue  # a peer won the reclaim race
                deliveries = int(stale.get("deliveries", 1)) + 1
                self._log_event(
                    "reclaim",
                    job_id=job_id,
                    deliveries=deliveries,
                    dead_worker=stale.get("worker"),
                )
            lease = self._try_lease(job_id, worker, deliveries, now)
            if lease is None:
                continue  # lost the claim race
            loaded = self._read_task(task_path, job_id)
            if loaded is None:
                # Unreadable/corrupt task file: fail it permanently so it
                # cannot wedge the queue, and move on.
                self._store_result(
                    QueueResult(
                        job_id=job_id,
                        ok=False,
                        error={
                            "type": "CorruptTask",
                            "message": f"task file for {job_id} was unreadable",
                            "traceback": "",
                        },
                        worker=worker,
                        deliveries=deliveries,
                    )
                )
                self._cleanup_done(job_id)
                self._log_event("corrupt_task", job_id=job_id)
                continue
            header, spec = loaded
            lease.spec = spec
            lease.header = header
            return lease
        return None

    def heartbeat(self, lease: Lease, now: float | None = None) -> None:
        """Extend ``lease`` by its duration; raise :class:`LeaseLost` if stolen."""
        if now is None:
            now = time.time()
        lease_path = self.leases_dir / f"{lease.job_id}.lease"
        current = self._read_lease(lease_path)
        if current is None or current.get("worker") != lease.worker or (
            int(current.get("pid", -1)) != lease.pid
        ):
            raise LeaseLost(
                f"lease on {lease.job_id} now belongs to "
                f"{current.get('worker') if current else 'nobody'}"
            )
        lease.expires_at = now + lease.lease_seconds
        _atomic_write_bytes(
            lease_path, json.dumps(self._lease_payload(lease)).encode()
        )

    def ack(self, lease: Lease, value: Any, elapsed: float = 0.0) -> None:
        """Complete ``lease`` with ``value``: store the result, retire the task.

        The result is written first (atomically), so a crash mid-ack leaves
        a finished job with a stale task file — which the next ``claim``
        sweep retires instead of re-running.
        """
        self._store_result(
            QueueResult(
                job_id=lease.job_id,
                ok=True,
                value=value,
                worker=lease.worker,
                deliveries=lease.deliveries,
                elapsed=elapsed,
            )
        )
        self._cleanup_done(lease.job_id, owner=lease)

    def fail(self, lease: Lease, error: BaseException, elapsed: float = 0.0) -> None:
        """Complete ``lease`` with a failure result (the task is *not* retried
        by the queue; retries belong to the submitting side's resilience
        policy, which sees the failure through the result file)."""
        self._store_result(
            QueueResult(
                job_id=lease.job_id,
                ok=False,
                error={
                    "type": type(error).__name__,
                    "message": str(error),
                    "traceback": "".join(
                        traceback.format_exception(type(error), error, error.__traceback__)
                    ),
                },
                worker=lease.worker,
                deliveries=lease.deliveries,
                elapsed=elapsed,
            )
        )
        self._cleanup_done(lease.job_id, owner=lease)

    def release(self, lease: Lease) -> None:
        """Give up ``lease`` without finishing the job (it stays queued)."""
        if self._owns(lease):
            try:
                (self.leases_dir / f"{lease.job_id}.lease").unlink()
            except OSError:
                pass

    def expire_leases_of(self, pids: Iterable[int]) -> int:
        """Force-expire leases held by known-dead local processes.

        The supervisor that spawned a worker knows its death immediately —
        no need to wait out the lease clock.  The lease is rewritten with an
        already-passed expiry rather than deleted, so the delivery count
        survives into the reclaim path.
        """
        dead = set(int(pid) for pid in pids)
        expired = 0
        for lease_path in self.leases_dir.glob("*.lease"):
            info = self._read_lease(lease_path)
            if info is None or int(info.get("pid", -1)) not in dead:
                continue
            if info.get("expires_at", 0.0) <= 0.0:
                continue  # already force-expired
            info["expires_at"] = 0.0
            _atomic_write_bytes(lease_path, json.dumps(info).encode())
            expired += 1
        return expired

    # ------------------------------------------------------------------
    # Status and results
    # ------------------------------------------------------------------
    def result_path(self, job_id: str) -> Path:
        """Where ``job_id``'s terminal result lives (whether or not done)."""
        return self.results_dir / f"{job_id}.result"

    def result(self, job_id: str) -> QueueResult | None:
        """The job's terminal result, or None while it is still in flight."""
        try:
            with self.result_path(job_id).open("rb") as handle:
                loaded = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            return None  # partially visible only on non-atomic filesystems
        return loaded if isinstance(loaded, QueueResult) else None

    def status(self, job_id: str, now: float | None = None) -> str:
        """``queued`` | ``leased`` | ``done`` | ``failed`` | ``unknown``."""
        if now is None:
            now = time.time()
        result = self.result(job_id)
        if result is not None:
            return "done" if result.ok else "failed"
        if self._live_lease(job_id, now) is not None:
            return "leased"
        if (self.tasks_dir / f"{job_id}.task").exists():
            return "queued"
        return "unknown"

    def lease_info(self, job_id: str) -> dict[str, Any] | None:
        """The raw lease record of ``job_id``, if one exists."""
        return self._read_lease(self.leases_dir / f"{job_id}.lease")

    def stats(self, now: float | None = None) -> dict[str, Any]:
        """Cheap queue telemetry (directory scans + event-log counters)."""
        if now is None:
            now = time.time()
        task_ids = {path.stem for path in self.tasks_dir.glob("*.task")}
        done_ids = {path.stem for path in self.results_dir.glob("*.result")}
        live_leases = 0
        expired_leases = 0
        for lease_path in self.leases_dir.glob("*.lease"):
            if lease_path.stem not in task_ids:
                continue
            info = self._read_lease(lease_path)
            if info is None:
                continue
            if info.get("expires_at", 0.0) > now:
                live_leases += 1
            else:
                expired_leases += 1
        pending = task_ids - done_ids
        events = self._count_events()
        workers = self.worker_liveness(now)
        return {
            "queued": len(pending) - live_leases - expired_leases,
            "leased": live_leases,
            "expired_leases": expired_leases,
            "done": len(done_ids),
            "reclaims": events.get("reclaim", 0),
            "corrupt_tasks": events.get("corrupt_task", 0),
            "workers_alive": sum(1 for info in workers.values() if info["alive"]),
            "workers_seen": len(workers),
            "stop_requested": self.stop_requested(),
        }

    def worker_liveness(self, now: float | None = None) -> dict[str, dict[str, Any]]:
        """Per-worker heartbeat records with an ``alive`` verdict attached."""
        if now is None:
            now = time.time()
        liveness: dict[str, dict[str, Any]] = {}
        for path in self.workers_dir.glob("*.json"):
            try:
                info = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            beat = float(info.get("last_beat", 0.0))
            info["alive"] = (now - beat) < WORKER_LIVENESS_SECONDS
            liveness[info.get("worker", path.stem)] = info
        return liveness

    # ------------------------------------------------------------------
    # Cooperative shutdown
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask every worker polling this queue to exit after its current job."""
        _atomic_write_bytes(self.stop_path, b"stop\n")

    def clear_stop(self) -> None:
        """Remove the stop marker (e.g. before reusing a queue directory)."""
        try:
            self.stop_path.unlink()
        except OSError:
            pass

    def stop_requested(self) -> bool:
        """Has :meth:`request_stop` been called on this queue directory?"""
        return self.stop_path.exists()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lease_payload(self, lease: Lease) -> dict[str, Any]:
        return {
            "job_id": lease.job_id,
            "worker": lease.worker,
            "pid": lease.pid,
            "deliveries": lease.deliveries,
            "leased_at": lease.leased_at,
            "expires_at": lease.expires_at,
            "lease_seconds": lease.lease_seconds,
        }

    def _try_lease(
        self, job_id: str, worker: str, deliveries: int, now: float
    ) -> Lease | None:
        """Atomically create the lease file; None when a peer won the race."""
        lease = Lease(
            job_id=job_id,
            spec=TaskSpec(fn=_unclaimed),  # replaced once the task file loads
            header={},
            worker=worker,
            pid=os.getpid(),
            deliveries=deliveries,
            leased_at=now,
            expires_at=now + self.lease_seconds,
            lease_seconds=self.lease_seconds,
        )
        lease_path = self.leases_dir / f"{job_id}.lease"
        try:
            descriptor = os.open(
                lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return None
        with os.fdopen(descriptor, "w") as handle:
            json.dump(self._lease_payload(lease), handle)
        return lease

    def _owns(self, lease: Lease) -> bool:
        current = self._read_lease(self.leases_dir / f"{lease.job_id}.lease")
        return (
            current is not None
            and current.get("worker") == lease.worker
            and int(current.get("pid", -1)) == lease.pid
        )

    def _live_lease(self, job_id: str, now: float | None = None) -> dict[str, Any] | None:
        if now is None:
            now = time.time()
        info = self._read_lease(self.leases_dir / f"{job_id}.lease")
        if info is None or info.get("expires_at", 0.0) <= now:
            return None
        return info

    def _read_lease(self, lease_path: Path) -> dict[str, Any] | None:
        try:
            return json.loads(lease_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _read_task(
        self, task_path: Path, job_id: str
    ) -> tuple[dict[str, Any], TaskSpec] | None:
        """Load (header, spec); extend ``sys.path`` from the header first.

        The header is a plain dict of primitives, safe to unpickle without
        imports; the spec references functions by module name, so the
        header's ``sys_path`` must be applied before the second load.
        """
        try:
            with task_path.open("rb") as handle:
                header = pickle.load(handle)
                for entry in header.get("sys_path", []):
                    if entry and entry not in sys.path:
                        sys.path.append(entry)
                spec = pickle.load(handle)
        except Exception:
            return None
        if not isinstance(spec, TaskSpec) or not isinstance(header, dict):
            return None
        return header, spec

    def _store_result(self, result: QueueResult) -> None:
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            # An unpicklable result value must not lose the job: degrade to
            # a failure result that explains what happened.
            payload = pickle.dumps(
                QueueResult(
                    job_id=result.job_id,
                    ok=False,
                    error={
                        "type": "UnpicklableResult",
                        "message": f"worker result could not be pickled: {error!r}",
                        "traceback": "",
                    },
                    worker=result.worker,
                    deliveries=result.deliveries,
                    elapsed=result.elapsed,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        _atomic_write_bytes(self.result_path(result.job_id), payload)

    def _cleanup_done(self, job_id: str, owner: Lease | None = None) -> None:
        """Retire a finished job's task file (and its lease when owned/stale)."""
        try:
            (self.tasks_dir / f"{job_id}.task").unlink()
        except OSError:
            pass
        if owner is None or self._owns(owner):
            try:
                (self.leases_dir / f"{job_id}.lease").unlink()
            except OSError:
                pass

    @contextmanager
    def _events_lock(self):
        """Cross-process flock serialising event append / rotate / count.

        Best-effort: platforms without ``fcntl`` (or an unwritable lock
        file) fall back to unlocked operation, which every reader already
        tolerates.
        """
        handle = None
        try:
            handle = self.events_lock_path.open("w")
            import fcntl

            fcntl.flock(handle, fcntl.LOCK_EX)
        except (ImportError, OSError):
            pass
        try:
            yield
        finally:
            if handle is not None:
                handle.close()  # closing the fd releases the flock

    def _log_event(self, event: str, **fields: Any) -> None:
        line = json.dumps({"event": event, "time": time.time(), **fields})
        if obs.enabled():
            obs.metrics.counter_add(f"queue_event_{event}", 1)
        try:
            with self._events_lock():
                with self.events_path.open("a") as handle:
                    handle.write(line + "\n")
                try:
                    size = self.events_path.stat().st_size
                except OSError:
                    size = 0
                if size > self.events_max_bytes:
                    self._rotate_events()
        except OSError:
            pass  # telemetry only; never fail the queue operation

    def _rotate_events(self) -> None:
        """Fold the current segment's counts into the totals file, then rotate.

        Called with the events lock held.  The counts are persisted *before*
        ``os.replace`` so lifetime counters survive any number of rotations;
        ``events.log.1`` (clobbering the previous one) keeps one segment of
        raw history for inspection.
        """
        totals = self._read_event_totals()
        for event, count in self._scan_event_file(self.events_path).items():
            totals[event] = totals.get(event, 0) + count
        _atomic_write_bytes(self.events_totals_path, json.dumps(totals).encode())
        try:
            os.replace(self.events_path, self.root / "events.log.1")
        except OSError:
            pass

    def _read_event_totals(self) -> dict[str, int]:
        try:
            payload = json.loads(self.events_totals_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(payload, dict):
            return {}
        counts: dict[str, int] = {}
        for event, count in payload.items():
            try:
                counts[str(event)] = int(count)
            except (TypeError, ValueError):
                continue
        return counts

    def _scan_event_file(self, path: Path) -> dict[str, int]:
        counts: dict[str, int] = {}
        try:
            with path.open() as handle:
                for line in handle:
                    try:
                        event = json.loads(line).get("event")
                    except json.JSONDecodeError:
                        continue  # torn tail line mid-write/mid-rotation
                    if event:
                        counts[event] = counts.get(event, 0) + 1
        except OSError:
            pass  # rotated away (or never written) mid-read: count what's there
        return counts

    def _count_events(self) -> dict[str, int]:
        """Lifetime event counters: rotated-out totals + the current segment."""
        with self._events_lock():
            counts = self._read_event_totals()
            for event, count in self._scan_event_file(self.events_path).items():
                counts[event] = counts.get(event, 0) + count
        return counts


def _unclaimed() -> None:  # pragma: no cover - placeholder, never called
    raise RuntimeError("lease carries no task spec yet")


# ----------------------------------------------------------------------
# The worker loop (the body of `deterrent queue-worker`)
# ----------------------------------------------------------------------
@dataclass
class WorkerOptions:
    """Configuration of one work-stealing queue worker.

    ``heartbeat`` may be disabled for chaos tests that need a hung task to
    actually lose its lease; ``max_task_seconds`` is the production-shaped
    equivalent — the heartbeat thread stops renewing past that budget, so a
    wedged task is eventually stolen even though its worker is alive.
    """

    worker_id: str | None = None
    poll_interval: float = 0.1
    heartbeat: bool = True
    heartbeat_interval: float | None = None
    max_task_seconds: float | None = None
    max_idle_seconds: float | None = None
    max_jobs: int | None = None
    cache_dir: str | None = None
    parent_pid: int | None = None


def worker_loop(queue: DurableQueue, options: WorkerOptions | None = None) -> int:
    """Lease, run, and ack jobs from ``queue`` until stopped; return jobs done.

    The loop exits when :meth:`DurableQueue.request_stop` has been called,
    after ``max_jobs`` completed jobs, or after ``max_idle_seconds`` without
    claimable work.  Each job runs under the fault-injection attempt offset
    ``deliveries - 1`` so scripted fault plans replay exactly across queue
    redeliveries (see :mod:`repro.runner.faults`).
    """
    options = options or WorkerOptions()
    worker_id = options.worker_id or f"worker-{os.getpid()}"
    started = time.time()
    last_work = time.time()
    jobs_done = 0
    ran_initializers: set[str] = set()
    if options.cache_dir is not None:
        _install_cache(options.cache_dir)
    while not queue.stop_requested():
        if options.parent_pid is not None and os.getppid() != options.parent_pid:
            break  # supervising process died; don't outlive it
        _write_worker_heartbeat(queue, worker_id, started, jobs_done, None)
        lease = queue.claim(worker_id)
        if lease is None:
            if (
                options.max_idle_seconds is not None
                and time.time() - last_work > options.max_idle_seconds
            ):
                break
            time.sleep(options.poll_interval)
            continue
        last_work = time.time()
        _write_worker_heartbeat(queue, worker_id, started, jobs_done, lease.job_id)
        _run_one(queue, lease, options, ran_initializers)
        jobs_done += 1
        last_work = time.time()
        if options.max_jobs is not None and jobs_done >= options.max_jobs:
            break
    _write_worker_heartbeat(queue, worker_id, started, jobs_done, None)
    return jobs_done


def _run_one(
    queue: DurableQueue,
    lease: Lease,
    options: WorkerOptions,
    ran_initializers: set[str],
) -> None:
    """Execute one leased job inside its telemetry span (when traced).

    The job header's ``trace`` block both enables telemetry in a worker
    that was spawned before tracing was configured (it names the trace
    directory) and parents the worker's ``queue.job`` span on the
    submitter's span, so queue-executed work joins the same span tree as
    pool-executed work.  Spans and metrics are flushed after every job —
    a worker killed later loses at most the job in flight.
    """
    trace_info = lease.header.get("trace") if isinstance(lease.header, dict) else None
    trace_dir = (trace_info or {}).get("dir")
    if trace_dir and not obs.enabled():
        obs.install_worker(trace_dir)
    if not obs.enabled():
        _run_leased_job(queue, lease, options, ran_initializers)
        return
    parent = obs.TraceContext.from_dict(trace_info) if trace_info else None
    try:
        with obs.trace.span(
            "queue.job",
            attrs={
                "job_id": lease.job_id[:16],
                "label": lease.spec.label,
                "deliveries": lease.deliveries,
                "worker": lease.worker,
            },
            parent=parent,
        ):
            _run_leased_job(queue, lease, options, ran_initializers)
    finally:
        # Flush *after* the span context closed, so the job's own span
        # record is part of this job's export (not the next one's).
        obs.metrics.counter_add("queue_jobs_run", 1)
        if lease.deliveries > 1:
            obs.metrics.counter_add("queue_redeliveries", 1)
        obs.flush()


def _run_leased_job(
    queue: DurableQueue,
    lease: Lease,
    options: WorkerOptions,
    ran_initializers: set[str],
) -> None:
    """Execute one leased job: init, heartbeat, run, ack/fail."""
    from repro.runner import faults

    spec = lease.spec
    cache_dir = options.cache_dir or lease.header.get("cache_dir")
    if cache_dir:
        _install_cache(cache_dir)
    started = time.perf_counter()
    try:
        if spec.initializer is not None:
            key = hashlib.sha256(
                pickle.dumps((spec.initializer, spec.initargs))
            ).hexdigest()
            if key not in ran_initializers:
                spec.initializer(*spec.initargs)
                ran_initializers.add(key)
    except Exception as error:
        queue.fail(lease, error, elapsed=time.perf_counter() - started)
        return

    stop_beat = threading.Event()
    lost = threading.Event()
    beat_thread: threading.Thread | None = None
    if options.heartbeat:
        interval = options.heartbeat_interval or max(0.05, lease.lease_seconds / 3.0)
        deadline = (
            None
            if options.max_task_seconds is None
            else time.time() + options.max_task_seconds
        )

        def _beat() -> None:
            while not stop_beat.wait(interval):
                if deadline is not None and time.time() > deadline:
                    return  # stop renewing: let the lease expire and be stolen
                try:
                    queue.heartbeat(lease)
                except LeaseLost:
                    lost.set()
                    return
                except OSError:
                    pass

        beat_thread = threading.Thread(target=_beat, daemon=True)
        beat_thread.start()

    faults.set_attempt_offset(lease.deliveries - 1)
    try:
        value = spec.fn(*spec.args, **spec.kwargs)
        failure: BaseException | None = None
    except Exception as error:  # noqa: BLE001 - mirrored into the result file
        value = None
        failure = error
    finally:
        faults.set_attempt_offset(0)
        stop_beat.set()
        if beat_thread is not None:
            beat_thread.join(timeout=2.0)
    elapsed = time.perf_counter() - started
    if lost.is_set():
        # A peer reclaimed the job mid-run; it owns the outcome now.  Only
        # record our result if nobody else has yet (results are
        # deterministic, so a duplicate write is bit-identical anyway).
        if queue.result(lease.job_id) is not None:
            return
    if failure is not None:
        queue.fail(lease, failure, elapsed=elapsed)
    else:
        queue.ack(lease, value, elapsed=elapsed)
    _flush_cache_stats()


def _flush_cache_stats() -> None:
    """Persist this worker's cache counters into the cache root's lifetime
    stats so `/metrics` and `deterrent cache` see fleet-wide totals."""
    from repro.runner.cache import get_default_cache

    cache = get_default_cache()
    if cache is None:
        return
    try:
        cache.flush_stats()
    except OSError:
        pass  # telemetry only


def _install_cache(cache_dir: str) -> None:
    from repro.runner.cache import get_default_cache, set_default_cache

    current = get_default_cache()
    if current is None or str(current.root) != str(cache_dir):
        set_default_cache(cache_dir)


def _write_worker_heartbeat(
    queue: DurableQueue,
    worker_id: str,
    started: float,
    jobs_done: int,
    current_job: str | None,
) -> None:
    payload = {
        "worker": worker_id,
        "pid": os.getpid(),
        "started_at": started,
        "last_beat": time.time(),
        "jobs_done": jobs_done,
        "current_job": current_job,
    }
    try:
        _atomic_write_bytes(
            queue.workers_dir / f"{worker_id}.json", json.dumps(payload).encode()
        )
    except OSError:
        pass


__all__ = [
    "DEFAULT_EVENTS_MAX_BYTES",
    "DEFAULT_LEASE_SECONDS",
    "WORKER_LIVENESS_SECONDS",
    "DurableQueue",
    "Lease",
    "LeaseLost",
    "QueueResult",
    "TaskSpec",
    "WorkerOptions",
    "worker_loop",
]
