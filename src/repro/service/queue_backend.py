"""The durable-queue execution backend: ``--backend queue``.

This is the remote half of the :class:`~repro.runner.backends
.ExecutionBackend` seam.  ``make_executor`` returns an executor whose
``submit`` *enqueues* a :class:`~repro.service.queue.TaskSpec` into a
:class:`~repro.service.queue.DurableQueue` and whose futures resolve as
independent **work-stealing worker processes** (``deterrent queue-worker
--queue-dir ...``) lease, run, and ack the tasks.  Nothing in the caller
changes: :func:`repro.runner.resilience.run_tasks` drives this backend
exactly like the process pool — per-attempt timeouts abandon the executor
(hung spawned workers are terminated through the ``_processes`` table),
worker crashes surface as failures to retry, and repeated failure degrades
the run to the serial backend.

Two recovery layers compose here:

- **Queue-level** (invisible to the caller): a crashed worker's lease
  expires — or is force-expired immediately when the executor sees its own
  spawned child die — and a surviving worker *reclaims* the job.  The
  redelivery carries an incremented delivery count, which the worker loop
  feeds to the fault-injection layer as an attempt offset, so chaos plans
  replay exactly (crash-once rules recover on redelivery).
- **Resilience-level**: a task that *fails* (raises, returns a corrupt
  result) completes with a failure result; the submitting side's retry
  policy resubmits it under a fresh job id.

By default each executor owns a private queue directory (a temp dir) and
spawns its own workers, so ``deterrent run ... --backend queue`` works out
of the box; pointing ``queue_dir`` at a shared directory with externally
started workers turns the same executor into a remote-fleet client — that
is exactly how the HTTP service (:mod:`repro.service.server`) runs.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from concurrent.futures import BrokenExecutor, Executor, Future
from pathlib import Path
from typing import Any, Callable

from repro import obs
from repro.service.queue import DEFAULT_LEASE_SECONDS, DurableQueue, TaskSpec


class RemoteTaskError(RuntimeError):
    """A queue worker completed the task with a failure result."""

    def __init__(self, job_id: str, error: dict[str, str] | None):
        error = error or {}
        message = (
            f"queue task {job_id} failed in worker: "
            f"{error.get('type', 'Error')}: {error.get('message', 'unknown error')}"
        )
        super().__init__(message)
        self.job_id = job_id
        self.remote_type = error.get("type", "Error")
        self.remote_traceback = error.get("traceback", "")


def spawn_worker(
    queue_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_interval: float = 0.05,
    heartbeat: bool = True,
    max_task_seconds: float | None = None,
    parent_pid: int | None = None,
    cache_dir: str | None = None,
) -> subprocess.Popen:
    """Start one ``deterrent queue-worker`` process on ``queue_dir``.

    The child inherits this interpreter and the current ``sys.path`` (via
    ``PYTHONPATH``), so it resolves the same package — installed or
    src-layout checkout — as the caller.
    """
    command = [
        sys.executable, "-m", "repro", "queue-worker",
        "--queue-dir", str(queue_dir),
        "--poll-interval", str(poll_interval),
        "--lease-seconds", str(lease_seconds),
    ]
    if worker_id is not None:
        command += ["--worker-id", worker_id]
    if not heartbeat:
        command += ["--no-heartbeat"]
    if max_task_seconds is not None:
        command += ["--max-task-seconds", str(max_task_seconds)]
    if parent_pid is not None:
        command += ["--parent-pid", str(parent_pid)]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    env = dict(os.environ)
    search_paths = [entry for entry in sys.path if entry]
    if env.get("PYTHONPATH"):
        search_paths.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(search_paths))
    return subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)


class QueueBackend:
    """Run tasks through a durable on-disk queue + worker processes.

    Args:
        queue_dir: the shared queue directory.  None (the default) gives
            every executor a private temporary directory that is removed on
            shutdown — the self-contained ``--backend queue`` mode.
        workers: worker processes to spawn per executor.  None spawns
            ``max_workers`` (the caller's job count); 0 spawns none and
            relies on externally started ``deterrent queue-worker``
            processes sharing ``queue_dir``.
        lease_seconds: lease duration for spawned workers and reclaim
            decisions.  Crashes of *spawned* workers are detected by the
            supervisor immediately (their leases are force-expired), so
            this mostly bounds recovery from externally started workers.
        poll_interval: how often the executor polls for results and dead
            workers.
        respawns: how many replacement workers the executor may spawn after
            crashes before it declares itself broken (per executor).
        max_task_seconds: per-job budget passed to spawned workers — past
            it a worker stops renewing the job's lease, so a wedged task is
            reclaimed by a peer even though its worker is still alive.
    """

    name = "queue"
    workers_are_processes = True
    supports_timeout = True

    def __init__(
        self,
        queue_dir: str | Path | None = None,
        workers: int | None = None,
        lease_seconds: float = 15.0,
        poll_interval: float = 0.05,
        respawns: int = 4,
        max_task_seconds: float | None = None,
    ) -> None:
        self.queue_dir = Path(queue_dir) if queue_dir is not None else None
        self.workers = workers
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.respawns = int(respawns)
        self.max_task_seconds = max_task_seconds

    def make_executor(
        self,
        max_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Executor:
        return _QueueExecutor(self, max_workers, initializer, initargs)


class _QueueExecutor(Executor):
    """Executor facade over one durable queue + a supervised worker fleet."""

    def __init__(
        self,
        backend: QueueBackend,
        max_workers: int,
        initializer: Callable[..., None] | None,
        initargs: tuple,
    ) -> None:
        self._backend = backend
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._owns_dir = backend.queue_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="deterrent-queue-"))
            if self._owns_dir
            else backend.queue_dir
        )
        self.queue = DurableQueue(root, lease_seconds=backend.lease_seconds)
        self.queue.clear_stop()
        self._prefix = f"x{uuid.uuid4().hex[:12]}"
        self._counter = 0
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}
        self._broken: str | None = None
        self._closing = False
        self._respawns_left = backend.respawns
        self._processes: dict[int, subprocess.Popen] = {}
        self._reaped: set[int] = set()
        self._deliveries = 0
        # Reclaims are counted as a delta over this executor's lifetime so a
        # shared queue directory's history is not attributed to this run.
        self._initial_reclaims = self.queue._count_events().get("reclaim", 0)
        to_spawn = backend.workers if backend.workers is not None else max_workers
        for index in range(max(0, to_spawn)):
            self._spawn(index)
        self._poller = threading.Thread(target=self._poll_loop, daemon=True)
        self._poller.start()

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        with self._lock:
            if self._broken is not None:
                raise BrokenExecutor(self._broken)
            if self._closing:
                raise RuntimeError("cannot submit to a shut-down queue executor")
            self._counter += 1
            job_id = f"{self._prefix}-{self._counter:06d}"
            future: Future = Future()
            self._futures[job_id] = future
        cache = _default_cache_dir()
        spec = TaskSpec(
            fn=fn,
            args=tuple(args),
            kwargs=dict(kwargs),
            initializer=self._initializer,
            initargs=self._initargs,
        )
        trace = None
        if obs.enabled():
            trace = {"dir": obs.trace_dir()}
            context = obs.current_context()
            if context is not None:
                trace.update(context.as_dict())
        self.queue.put(spec, job_id=job_id, cache_dir=cache, trace=trace)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
        if cancel_futures:
            self.cancel_pending()
        self.queue.request_stop()
        if self._poller.is_alive():
            self._poller.join(timeout=2.0)
        deadline = time.time() + (2.0 if wait else 0.0)
        for process in list(self._processes.values()):
            remaining = deadline - time.time()
            try:
                process.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                try:
                    process.terminate()
                    process.wait(timeout=1.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        if self._owns_dir:
            shutil.rmtree(self.queue.root, ignore_errors=True)

    # ------------------------------------------------------------------
    # Resilience-layer hooks
    # ------------------------------------------------------------------
    def cancel_pending(self) -> None:
        """Withdraw unfinished submissions from the queue (abandon path)."""
        with self._lock:
            unresolved = [
                job_id
                for job_id, future in self._futures.items()
                if not future.done()
            ]
        for job_id in unresolved:
            self.queue.cancel(job_id)

    def backend_counters(self) -> dict[str, int]:
        """Robustness counters for the resilience layer / run records.

        Collected by ``run_tasks`` *before* shutdown (an owned queue
        directory — and its event log — is deleted then): worker respawns
        spent by this executor, lease reclaims that happened on its watch,
        and total job deliveries observed on resolved futures (deliveries >
        resolved futures means redelivered work).
        """
        reclaims = self.queue._count_events().get("reclaim", 0) - self._initial_reclaims
        return {
            "respawns": self._backend.respawns - self._respawns_left,
            "reclaims": max(0, reclaims),
            "deliveries": self._deliveries,
        }

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        try:
            process = spawn_worker(
                self.queue.root,
                worker_id=f"{self._prefix}-w{index}",
                lease_seconds=self._backend.lease_seconds,
                poll_interval=self._backend.poll_interval,
                max_task_seconds=self._backend.max_task_seconds,
                parent_pid=os.getpid(),
            )
        except OSError as error:
            self._broken = f"could not spawn queue worker: {error}"
            return
        self._processes[process.pid] = process

    def _poll_loop(self) -> None:
        spawn_index = 1000
        while True:
            with self._lock:
                if self._closing:
                    return
                outstanding = {
                    job_id: future
                    for job_id, future in self._futures.items()
                    if not future.done()
                }
            for job_id, future in outstanding.items():
                result = self.queue.result(job_id)
                if result is None:
                    continue
                self._deliveries += max(1, result.deliveries)
                try:
                    if result.ok:
                        future.set_result(result.value)
                    else:
                        future.set_exception(RemoteTaskError(job_id, result.error))
                except Exception:  # noqa: BLE001 - future cancelled by the caller
                    pass

            # Supervise spawned workers: a dead child's leases are
            # force-expired right away (no need to wait out the clock), and
            # a replacement is spawned while the respawn budget lasts.
            dead = [
                pid
                for pid, process in self._processes.items()
                if process.poll() is not None and pid not in self._reaped
            ]
            if dead:
                self._reaped.update(dead)
                self.queue.expire_leases_of(dead)
            alive = [
                pid for pid, process in self._processes.items() if process.poll() is None
            ]
            if dead and outstanding and not self._closing:
                for _ in dead:
                    if self._respawns_left <= 0:
                        break
                    self._respawns_left -= 1
                    self._spawn(spawn_index)
                    spawn_index += 1
                alive = [
                    pid
                    for pid, process in self._processes.items()
                    if process.poll() is None
                ]
            if (
                outstanding
                and not alive
                and self._spawned_any
                and self._respawns_left <= 0
                and self._broken is None
            ):
                self._broken = (
                    "every spawned queue worker died and the respawn budget "
                    "is exhausted"
                )
                for job_id, future in outstanding.items():
                    if self.queue.result(job_id) is not None:
                        continue  # completed in the meantime; next pass resolves
                    try:
                        future.set_exception(BrokenExecutor(self._broken))
                    except Exception:  # noqa: BLE001
                        pass
            time.sleep(self._backend.poll_interval)

    @property
    def _spawned_any(self) -> bool:
        return bool(self._processes) or bool(self._reaped)


def _default_cache_dir() -> str | None:
    from repro.runner.cache import get_default_cache

    cache = get_default_cache()
    return str(cache.root) if cache is not None else None


__all__ = ["QueueBackend", "RemoteTaskError", "spawn_worker"]
