"""The service job contract: validate, address, and run submitted netlists.

A service job is "run one registered experiment harness on one submitted
``.bench`` netlist".  The submitted circuit replaces the harness's design
grid (its ``designs``/``design`` option); every other option passes through
the exact validation the CLI runner applies (the module's ``OPTIONS``
allowlist plus the harness's own ``cells()`` checks), so a job that would
be rejected by ``deterrent run`` is rejected by ``POST /jobs`` with the
same message.

Jobs are **content addressed**: the job id is
:func:`repro.runner.cache.config_fingerprint` over (experiment, profile,
options, netlist fingerprint) — the ArtifactCache addressing scheme — so
the id doubles as the cache digest under which the finished job record is
stored (kind :data:`JOB_RESULT_KIND`).  Submitting the same netlist with
the same options therefore *is* a cache lookup: the service answers
completed jobs from the shared artifact cache without touching the queue.

Bit-identity with the local path: a submitted netlist whose content matches
a library benchmark resolves to that benchmark's registered name, so the
worker runs literally the same grid cells as ``deterrent run <experiment>
--set designs=[<name>]`` against the same artifact-cache keys.  Unknown
netlists are registered on the fly (:func:`repro.circuits.library
.register_netlist`) under a fingerprint-derived name.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.circuits.bench_io import loads_bench
from repro.circuits.library import benchmark_suite, load_benchmark, register_netlist
from repro.circuits.netlist import Netlist
from repro.runner.cache import config_fingerprint, get_default_cache, netlist_fingerprint
from repro.runner.registry import get_experiment

#: Artifact-cache kind holding finished service job records.
JOB_RESULT_KIND = "service_jobs"

#: Options the service reserves (they are derived from the submitted
#: netlist and may not be supplied by the client).
RESERVED_OPTIONS = ("design", "designs")


@dataclass
class JobRequest:
    """One validated job submission."""

    experiment: str
    profile: str
    options: dict[str, Any]
    bench: str
    netlist: Netlist = field(repr=False, default=None)  # type: ignore[assignment]

    def key_parts(self) -> dict[str, Any]:
        """The ArtifactCache key parts identifying this job's result."""
        return {
            "service_job": self.experiment,
            "profile": self.profile,
            "options": dict(sorted(self.options.items())),
            "netlist": netlist_fingerprint(self.netlist),
        }

    def job_id(self) -> str:
        """Deterministic job id == the job record's cache digest."""
        return config_fingerprint(**self.key_parts())


class JobValidationError(ValueError):
    """A job submission that can never run (a 400, not a crash)."""


def validate_job(payload: Mapping[str, Any]) -> JobRequest:
    """Validate a submission payload into a runnable :class:`JobRequest`.

    Raises :class:`JobValidationError` with a client-appropriate message on
    any problem: unknown experiment/profile, reserved or unknown options,
    an unparsable netlist, or a harness that takes no submitted designs.
    The returned request carries the parsed netlist and the design name it
    resolves to is decided later (worker side) by :func:`resolve_design`.
    """
    if not isinstance(payload, Mapping):
        raise JobValidationError(f"job payload must be a JSON object, got {type(payload).__name__}")
    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench.strip():
        raise JobValidationError("'bench' must be a non-empty .bench netlist string")
    experiment = payload.get("experiment")
    if not isinstance(experiment, str):
        raise JobValidationError("'experiment' must be a registered experiment name")
    try:
        spec = get_experiment(experiment)
    except KeyError as error:
        raise JobValidationError(str(error.args[0])) from None
    profile = payload.get("profile", "tiny")
    if not isinstance(profile, str):
        raise JobValidationError("'profile' must be a profile name (tiny, quick, full)")
    from repro.experiments.common import profile_by_name

    try:
        profile_obj = profile_by_name(profile)
    except KeyError as error:
        raise JobValidationError(str(error.args[0])) from None
    options = payload.get("options") or {}
    if not isinstance(options, Mapping):
        raise JobValidationError("'options' must be a JSON object of harness options")
    options = {str(key): value for key, value in options.items()}
    reserved = sorted(set(options) & set(RESERVED_OPTIONS))
    if reserved:
        raise JobValidationError(
            f"option(s) {', '.join(reserved)} are derived from the submitted "
            "netlist and cannot be set explicitly"
        )
    module = spec.resolve()
    allowed = getattr(module, "OPTIONS", ())
    design_option = _design_option(allowed)
    if design_option is None:
        raise JobValidationError(
            f"experiment {experiment!r} does not take submitted netlists "
            "(no design/designs option)"
        )
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise JobValidationError(
            f"unknown option(s) for {experiment!r}: {', '.join(unknown)}; "
            f"supported: {', '.join(sorted(set(allowed) - set(RESERVED_OPTIONS)))}"
        )
    try:
        netlist = loads_bench(bench, name="submitted")
    except ValueError as error:
        raise JobValidationError(f"invalid .bench netlist: {error}") from None
    if not netlist.nets:
        raise JobValidationError("submitted netlist is empty")
    request = JobRequest(
        experiment=experiment,
        profile=profile,
        options=dict(options),
        bench=bench,
        netlist=netlist,
    )
    # Validate the full grid up front (design constraints, option values):
    # a submission that cells() would reject must 400 at the door, not fail
    # later inside a worker.
    design = resolve_design(netlist)
    try:
        cells = spec.build_cells(
            profile_obj, {**request.options, design_option: _design_value(design_option, design)}
        )
    except (TypeError, ValueError) as error:
        raise JobValidationError(str(error)) from None
    if not cells:
        raise JobValidationError(
            f"experiment {experiment!r} produced no grid cells for this netlist"
        )
    return request


def _design_option(allowed: tuple[str, ...]) -> str | None:
    if "designs" in allowed:
        return "designs"
    if "design" in allowed:
        return "design"
    return None


def _design_value(design_option: str, design: str) -> Any:
    return [design] if design_option == "designs" else design


_LIBRARY_FINGERPRINTS: dict[str, str] = {}


def _content_digest(netlist: Netlist) -> str:
    """SHA-256 of the ``.bench`` body: comment lines dropped, lines sorted.

    :func:`~repro.runner.cache.netlist_fingerprint` hashes the full
    serialisation, whose first line is ``# <name>`` — so a submitted
    circuit (always parsed as ``"submitted"``) would never match the
    identical library netlist under its own name.  And a parse/serialise
    round trip reorders gate lines (file order vs construction order), so
    the digest sorts the lines: net names carry the structure, making the
    sorted line set a canonical form.
    """
    from repro.circuits.bench_io import dumps_bench

    body = "\n".join(
        sorted(
            line
            for line in dumps_bench(netlist).splitlines()
            if line and not line.startswith("#")
        )
    )
    return hashlib.sha256(body.encode()).hexdigest()


def resolve_design(netlist: Netlist) -> str:
    """The benchmark name this netlist runs as (registering it if new).

    A submitted circuit whose canonical ``.bench`` content matches a
    library benchmark resolves to that benchmark's name — giving
    bit-identical grid cells, cache keys, and reports to a local
    ``deterrent run`` of the same design.  Anything else is registered
    under a digest-derived ``submitted_<digest>`` name.
    """
    digest = _content_digest(netlist)
    for name in benchmark_suite():
        if name.startswith("submitted_"):
            continue
        known = _LIBRARY_FINGERPRINTS.get(name)
        if known is None:
            try:
                known = _content_digest(load_benchmark(name, combinational_view=False))
            except Exception:  # noqa: BLE001 - a broken generator must not block jobs
                continue
            _LIBRARY_FINGERPRINTS[name] = known
        if known == digest:
            return name
    name = f"submitted_{digest[:12]}"
    register_netlist(netlist, name)
    return name


def run_service_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one job (worker side); return — and cache — its record.

    Module-level and picklable, so it is the ``fn`` of every service
    :class:`~repro.service.queue.TaskSpec`.  Re-validates the payload (the
    queue is an open directory; only validated work should run), executes
    every grid cell serially in this worker, and stores the finished record
    in the default artifact cache under the job's content address.
    """
    from repro.experiments.common import profile_by_name
    from repro.runner.execution import _jsonable

    request = validate_job(payload)
    spec = get_experiment(request.experiment)
    module = spec.resolve()
    profile_obj = profile_by_name(request.profile)
    design = resolve_design(request.netlist)
    design_option = _design_option(getattr(module, "OPTIONS", ()))
    cells = spec.build_cells(
        profile_obj,
        {**request.options, design_option: _design_value(design_option, design)},
    )
    started = time.perf_counter()
    results = []
    cell_records = []
    for cell in cells:
        cell_started = time.perf_counter()
        result = module.run_cell(cell.params, profile_obj)
        results.append(result)
        cell_records.append(
            {
                "cell": cell.name,
                "params": _jsonable(cell.params),
                "elapsed_seconds": round(time.perf_counter() - cell_started, 3),
                "result": _jsonable(result),
            }
        )
    collected = module.collect(results)
    record = {
        "job_id": request.job_id(),
        "experiment": request.experiment,
        "profile": request.profile,
        "options": _jsonable(request.options),
        "design": design,
        "netlist_fingerprint": netlist_fingerprint(request.netlist),
        "cells": cell_records,
        "report": module.report(collected),
        "test_sets": job_record_test_sets(module, cells, results, profile_obj),
        "elapsed_seconds": round(time.perf_counter() - started, 3),
        "completed_at": time.time(),
    }
    cache = get_default_cache()
    if cache is not None:
        cache.store(JOB_RESULT_KIND, record, **request.key_parts())
        cache.flush_stats()
    return record


def job_record_test_sets(
    module: Any, cells: list, results: list, profile: Any
) -> list[dict[str, Any]] | None:
    """Extract the generated test sets, when the harness exposes them.

    A harness may define ``test_set(params, profile)`` returning the test
    set its cell produced (served from the artifact cache, so this is a
    cheap re-load after ``run_cell``).  The service embeds the serialised
    sets in the job record — that is the "submit a netlist, get a test set
    back" payload.  Harnesses without the hook return rich cell results
    only.
    """
    hook = getattr(module, "test_set", None)
    if hook is None:
        return None
    serialised = []
    for cell, result in zip(cells, results):
        if result is None:
            continue  # skipped cell (e.g. no Trojans fit)
        test_set = hook(cell.params, profile)
        if test_set is None:
            continue
        serialised.append({"cell": cell.name, **_serialise_test_set(test_set)})
    return serialised


def _serialise_test_set(test_set: Any) -> dict[str, Any]:
    """JSON-ready view of a SequenceSet / PatternSet-shaped object."""
    payload: dict[str, Any] = {
        "technique": getattr(test_set, "technique", type(test_set).__name__),
    }
    sequences = getattr(test_set, "sequences", None)
    patterns = getattr(test_set, "patterns", None)
    if sequences is not None:
        payload["kind"] = "sequences"
        payload["inputs"] = list(getattr(test_set, "inputs", ()))
        payload["sequences"] = sequences.astype(int).tolist()
    elif patterns is not None:
        payload["kind"] = "patterns"
        payload["inputs"] = list(getattr(test_set, "sources", ()))
        payload["patterns"] = patterns.astype(int).tolist()
    else:  # pragma: no cover - future test-set shapes
        payload["kind"] = "opaque"
        payload["value"] = repr(test_set)
    return payload


__all__ = [
    "JOB_RESULT_KIND",
    "RESERVED_OPTIONS",
    "JobRequest",
    "JobValidationError",
    "job_record_test_sets",
    "resolve_design",
    "run_service_job",
    "validate_job",
]
