"""Detection as a service: durable queue, queue backend, and HTTP server.

This package is the remote half of the execution story whose local half
lives in :mod:`repro.runner`:

- :mod:`repro.service.queue` — an on-disk, crash-safe job queue: atomic
  lease/ack/nack files, lease expiry + heartbeats so a dead worker's jobs
  are reclaimed, and deterministic content-addressed job ids (the same
  SHA-256 addressing the :class:`~repro.runner.cache.ArtifactCache` uses).
- :mod:`repro.service.queue_backend` — a
  :class:`~repro.runner.backends.ExecutionBackend` whose executor enqueues
  work into a durable queue and resolves futures as independent
  work-stealing ``deterrent queue-worker`` processes lease, run, and ack
  tasks.  Selectable as ``--backend queue``; composes unchanged with the
  retry/timeout/degradation layer in :mod:`repro.runner.resilience`.
- :mod:`repro.service.jobs` — the service job contract: validate a
  submitted ``.bench`` netlist + harness/options against the experiment
  registry, derive the content-addressed job id, and run the job in a
  worker.
- :mod:`repro.service.server` — the long-running HTTP service
  (``deterrent serve``): ``POST /jobs`` answers from the shared artifact
  cache or enqueues, ``GET /jobs/<id>`` reports status/result, and
  ``GET /healthz`` / ``GET /metrics`` expose queue depth, leases, worker
  liveness, cache counters, and aggregate solver stats.

Everything here is stdlib-only (``http.server``, ``pickle``, ``json``,
``subprocess``) — no new runtime dependencies.
"""

from repro.service.jobs import (
    JOB_RESULT_KIND,
    JobRequest,
    job_record_test_sets,
    run_service_job,
    validate_job,
)
from repro.service.queue import (
    DurableQueue,
    Lease,
    LeaseLost,
    QueueResult,
    TaskSpec,
    WorkerOptions,
    worker_loop,
)
from repro.service.queue_backend import QueueBackend, RemoteTaskError
from repro.service.server import DeterrentService, serve

__all__ = [
    "DurableQueue",
    "Lease",
    "LeaseLost",
    "QueueResult",
    "TaskSpec",
    "WorkerOptions",
    "worker_loop",
    "QueueBackend",
    "RemoteTaskError",
    "JOB_RESULT_KIND",
    "JobRequest",
    "job_record_test_sets",
    "run_service_job",
    "validate_job",
    "DeterrentService",
    "serve",
]
