"""Detection-as-a-service HTTP front end (stdlib ``http.server`` only).

One small threaded HTTP server in front of the shared queue + cache:

- ``POST /jobs`` — submit a ``.bench`` netlist with an experiment name,
  profile, and harness options.  The payload is validated against the
  experiment registry (unknown experiments/options/profiles are a 400
  before anything is queued).  Because job ids are content addresses, the
  submit path *is* a cache probe: a job whose record already exists in the
  shared :class:`~repro.runner.cache.ArtifactCache` answers immediately
  (``"cached": true``) without touching the queue.  Otherwise the job is
  enqueued and independent ``deterrent queue-worker`` processes — started
  by ``--workers`` or externally, on any machine sharing the queue
  directory — lease and run it.
- ``GET /jobs/<id>`` — status (``queued`` / ``leased`` / ``done`` /
  ``failed``) and, once finished, the full job record.
- ``GET /healthz`` — liveness plus a one-line queue summary.
- ``GET /metrics`` — queue depth and in-flight leases, reclaim and
  corrupt-task counters, per-worker liveness, cache hit/miss/store
  counters (session and lifetime), and aggregate CDCL
  :class:`~repro.sat.solver.SolverStats` folded out of every completed job
  record this server has seen.

The server itself never runs a job: it validates, addresses, enqueues, and
reads results.  Every durable state transition belongs to the queue and
the cache, so killing and restarting the server (or pointing a second one
at the same directories) loses nothing.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro import obs
from repro.obs.metrics import iter_solver_stats as _iter_solver_stats
from repro.obs.trace import TraceContext
from repro.runner.cache import ArtifactCache, get_default_cache
from repro.service.jobs import (
    JOB_RESULT_KIND,
    JobValidationError,
    run_service_job,
    validate_job,
)
from repro.service.queue import DEFAULT_LEASE_SECONDS, DurableQueue, TaskSpec

#: Maximum accepted request body (a .bench netlist plus options; 16 MiB is
#: orders of magnitude above every benchmark in the suite).
MAX_BODY_BYTES = 16 * 1024 * 1024


class DeterrentService:
    """The service state shared by every request handler thread."""

    def __init__(
        self,
        queue_dir: str | Path,
        cache_dir: str | Path | None = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> None:
        self.queue = DurableQueue(queue_dir, lease_seconds=lease_seconds)
        self.queue.clear_stop()
        if cache_dir is not None:
            self.cache = ArtifactCache(Path(cache_dir))
        else:
            self.cache = get_default_cache() or ArtifactCache(
                Path(queue_dir) / "cache"
            )
        self.started_at = time.time()
        self._lock = threading.Lock()
        self.counters = {
            "jobs_submitted": 0,
            "jobs_invalid": 0,
            "jobs_cache_hits": 0,
            "jobs_enqueued": 0,
            "jobs_duplicate": 0,
            "jobs_retried": 0,
        }
        self._solver_totals: dict[str, int] = {}
        self._solver_folded: set[str] = set()

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def submit(
        self, payload: Any, parent: TraceContext | None = None
    ) -> tuple[int, dict[str, Any]]:
        """Handle one ``POST /jobs``; return ``(http_status, response body)``.

        ``parent`` is the caller's trace context (decoded from an incoming
        ``traceparent`` header): when this process traces, the submit gets
        its own server span under it, and either way the context is shipped
        in the queue header so the worker's ``queue.job`` span joins the
        same tree.
        """
        try:
            with obs.trace.span(
                "service.submit", parent=parent
            ) as span:
                status, body = self._submit(payload, parent)
                span.set_attr("status", status)
                return status, body
        finally:
            # Flush *after* the span context closed so the submit's own
            # record is exported with the request — the serving process
            # may be terminated (not interrupted) and would otherwise
            # strand it in the buffer, orphaning the worker-side spans.
            obs.flush()

    def _submit(
        self, payload: Any, parent: TraceContext | None
    ) -> tuple[int, dict[str, Any]]:
        with self._lock:
            self.counters["jobs_submitted"] += 1
        try:
            request = validate_job(payload)
        except JobValidationError as error:
            with self._lock:
                self.counters["jobs_invalid"] += 1
            return 400, {"error": str(error)}
        job_id = request.job_id()
        base = {
            "job_id": job_id,
            "experiment": request.experiment,
            "profile": request.profile,
        }
        record = self.cache.load_digest(JOB_RESULT_KIND, job_id)
        if record is not None:
            with self._lock:
                self.counters["jobs_cache_hits"] += 1
            self._fold_solver_stats(job_id, record)
            return 200, {**base, "status": "done", "cached": True, "result": record}
        status = self.queue.status(job_id)
        if status in ("queued", "leased"):
            with self._lock:
                self.counters["jobs_duplicate"] += 1
            return 202, {**base, "status": status, "duplicate": True}
        if status == "failed":
            # Content-addressed ids mean a failed job would otherwise pin its
            # failure forever; an explicit resubmit clears it and retries.
            try:
                self.queue.result_path(job_id).unlink()
            except OSError:
                pass
            with self._lock:
                self.counters["jobs_retried"] += 1
        spec = TaskSpec(
            fn=run_service_job,
            args=(dict(payload),),
            label=f"service:{request.experiment}",
        )
        trace: dict[str, Any] | None = None
        if obs.enabled():
            context = obs.trace.current_context()
            trace = {"dir": obs.trace_dir()}
            if context is not None:
                trace.update(context.as_dict())
        elif parent is not None:
            # Not tracing here, but the caller is: forward its ids so a
            # worker with its own trace dir still links into the caller's
            # tree.
            trace = parent.as_dict()
        self.queue.put(
            spec,
            job_id=job_id,
            cache_dir=str(self.cache.root),
            meta={"experiment": request.experiment, "profile": request.profile},
            trace=trace,
        )
        with self._lock:
            self.counters["jobs_enqueued"] += 1
        return 202, {**base, "status": "queued", "cached": False}

    def job_status(self, job_id: str) -> tuple[int, dict[str, Any]]:
        """Handle one ``GET /jobs/<id>``."""
        queue_result = self.queue.result(job_id)
        if queue_result is not None:
            if queue_result.ok:
                self._fold_solver_stats(job_id, queue_result.value)
                return 200, {
                    "job_id": job_id,
                    "status": "done",
                    "deliveries": queue_result.deliveries,
                    "worker": queue_result.worker,
                    "result": queue_result.value,
                }
            return 200, {
                "job_id": job_id,
                "status": "failed",
                "deliveries": queue_result.deliveries,
                "worker": queue_result.worker,
                "error": queue_result.error,
            }
        status = self.queue.status(job_id)
        if status in ("queued", "leased"):
            body: dict[str, Any] = {"job_id": job_id, "status": status}
            lease = self.queue.lease_info(job_id)
            if lease is not None:
                body["worker"] = lease.get("worker")
                body["deliveries"] = lease.get("deliveries")
            return 200, body
        # Not in the queue: it may be a finished job whose record lives only
        # in the cache (e.g. the queue directory was cleaned, or the job was
        # answered from cache at submit time).
        record = self.cache.load_digest(JOB_RESULT_KIND, job_id)
        if record is not None:
            self._fold_solver_stats(job_id, record)
            return 200, {
                "job_id": job_id,
                "status": "done",
                "cached": True,
                "result": record,
            }
        return 404, {"job_id": job_id, "status": "unknown", "error": "no such job"}

    # ------------------------------------------------------------------
    # Health + metrics
    # ------------------------------------------------------------------
    def healthz(self) -> tuple[int, dict[str, Any]]:
        stats = self.queue.stats()
        return 200, {
            "status": "stopping" if stats["stop_requested"] else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queued": stats["queued"],
            "leased": stats["leased"],
            "workers_alive": stats["workers_alive"],
        }

    def metrics(self) -> tuple[int, dict[str, Any]]:
        with self._lock:
            counters = dict(self.counters)
            solver = dict(self._solver_totals)
        return 200, {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "service": counters,
            "queue": self.queue.stats(),
            "workers": self.queue.worker_liveness(),
            "cache": self.cache.stats_snapshot(),
            "solver": solver,
        }

    def metrics_prometheus(self) -> tuple[int, str]:
        """``GET /metrics?format=prometheus``: text exposition of the same data.

        Every numeric leaf of the JSON payload becomes a gauge (nested keys
        join with ``_``); when this process traces, the local telemetry
        registry's instruments are appended with their native counter /
        gauge / histogram types.
        """
        _, payload = self.metrics()
        lines = [obs.metrics.payload_to_prometheus(payload, prefix="deterrent_")]
        if obs.enabled():
            registry_text = obs.metrics.registry().to_prometheus()
            if registry_text:
                lines.append(registry_text)
        return 200, "\n".join(part.rstrip("\n") for part in lines if part.strip()) + "\n"

    def _fold_solver_stats(self, job_id: str, record: Any) -> None:
        """Accumulate a completed record's SolverStats into the aggregate.

        Job records embed per-cell ``solver_stats`` dicts (see
        ``sequential_detect``); summing every numeric field gives the
        fleet-wide conflict/decision/propagation totals ``/metrics``
        reports.  Idempotent per job id, so polling never double-counts.
        """
        with self._lock:
            if job_id in self._solver_folded:
                return
            self._solver_folded.add(job_id)
            for stats in _iter_solver_stats(record):
                for key, value in stats.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        self._solver_totals[key] = int(
                            self._solver_totals.get(key, 0) + value
                        )


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the shared :class:`DeterrentService`."""

    server: "DeterrentHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        service = self.server.service
        raw_path, _, query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        if path == "/healthz":
            self._reply(*service.healthz())
        elif path == "/metrics":
            accept = self.headers.get("Accept", "")
            if "format=prometheus" in query or "text/plain" in accept:
                self._reply_text(*service.metrics_prometheus())
            else:
                self._reply(*service.metrics())
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if not job_id or "/" in job_id:
                self._reply(404, {"error": "expected /jobs/<job_id>"})
            else:
                self._reply(*service.job_status(job_id))
        elif path == "/":
            self._reply(
                200,
                {
                    "service": "deterrent",
                    "endpoints": ["POST /jobs", "GET /jobs/<id>", "GET /healthz", "GET /metrics"],
                },
            )
        else:
            self._reply(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._reply(404, {"error": f"no such endpoint: {path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply(413, {"error": f"body must be 0..{MAX_BODY_BYTES} bytes"})
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._reply(400, {"error": f"request body is not valid JSON: {error}"})
            return
        parent = TraceContext.from_traceparent(self.headers.get("traceparent"))
        self._reply(*self.server.service.submit(payload, parent=parent))

    # ------------------------------------------------------------------
    def _reply(self, status: int, body: dict[str, Any]) -> None:
        try:
            data = json.dumps(body).encode("utf-8")
        except (TypeError, ValueError):
            status = 500
            data = json.dumps({"error": "result is not JSON-serialisable"}).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class DeterrentHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the shared service state."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: DeterrentService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, _ServiceHandler)


def make_server(
    service: DeterrentService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> DeterrentHTTPServer:
    """Bind (but do not run) the service's HTTP server; port 0 picks a free one."""
    return DeterrentHTTPServer((host, port), service, verbose=verbose)


def serve(
    queue_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8787,
    cache_dir: str | Path | None = None,
    workers: int = 0,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    verbose: bool = False,
    trace_dir: str | Path | None = None,
) -> int:
    """Run the service until interrupted (the body of ``deterrent serve``).

    With ``workers > 0`` the server also spawns that many local
    ``deterrent queue-worker`` processes on the queue directory; with the
    default 0 it serves pure front-end duty and expects externally started
    workers (possibly on other machines sharing the directory).

    With ``trace_dir`` the server traces every submit and exports telemetry
    there; spawned workers inherit the directory through the environment,
    so their ``queue.job`` spans land in the same export.
    """
    from repro.service.queue_backend import spawn_worker

    if trace_dir is not None:
        obs.configure(trace_dir)
    service = DeterrentService(queue_dir, cache_dir=cache_dir, lease_seconds=lease_seconds)
    server = make_server(service, host=host, port=port, verbose=verbose)
    spawned = []
    for index in range(max(0, workers)):
        spawned.append(
            spawn_worker(
                service.queue.root,
                worker_id=f"serve-w{index}",
                lease_seconds=lease_seconds,
                cache_dir=str(service.cache.root),
                parent_pid=os.getpid(),
            )
        )
    bound_host, bound_port = server.server_address[:2]
    print(f"deterrent service listening on http://{bound_host}:{bound_port}")
    print(f"  queue: {service.queue.root}")
    print(f"  cache: {service.cache.root}")
    if obs.enabled():
        print(f"  trace: {obs.trace_dir()}")
    if spawned:
        print(f"  workers: {len(spawned)} spawned (pids {[p.pid for p in spawned]})")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.queue.request_stop()
        deadline = time.time() + 3.0
        for process in spawned:
            try:
                process.wait(timeout=max(0.1, deadline - time.time()))
            except Exception:  # noqa: BLE001 - best-effort shutdown
                process.terminate()
    return 0


def http_json(
    url: str, payload: dict[str, Any] | None = None, timeout: float = 30.0
) -> tuple[int, dict[str, Any]]:
    """Tiny JSON-over-HTTP client (urllib): GET, or POST when ``payload``.

    Used by ``deterrent submit`` and the CI smoke script so neither needs a
    third-party HTTP library.  Returns ``(status, decoded body)``; HTTP
    errors with JSON bodies (e.g. a 400 validation message) are returned,
    not raised.  When the caller is inside an active span, a W3C
    ``traceparent`` header rides along so the server (and the worker it
    enqueues to) can join the caller's trace.
    """
    data = None
    headers = {"Accept": "application/json"}
    context = obs.trace.current_context()
    if context is not None:
        headers["traceparent"] = context.to_traceparent()
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read().decode("utf-8"))
        except (ValueError, OSError):
            return error.code, {"error": str(error)}


__all__ = [
    "MAX_BODY_BYTES",
    "DeterrentHTTPServer",
    "DeterrentService",
    "http_json",
    "make_server",
    "serve",
]
