"""TestMAX-style ATPG proxy.

The paper compares against Synopsys TestMAX running plain stuck-at ATPG
(``run_atpg`` in the default setting).  Such a tool targets *individual*
faults: it excels at setting one net to a value and propagating it, but it
never tries to satisfy several rare conditions simultaneously, which is why
its trigger coverage in Table 2 is very low.  The proxy reproduces that
behaviour: one SAT justification per rare net (targeting the rare value, which
subsumes the corresponding stuck-at fault's activation condition), followed by
simple pattern compaction.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet
from repro.sat.justify import Justifier
from repro.simulation.compiled import compile_netlist
from repro.simulation.rare_nets import RareNet


def atpg_pattern_set(
    netlist: Netlist,
    rare_nets: list[RareNet],
    justifier: Justifier | None = None,
    compact: bool = True,
) -> PatternSet:
    """One justification pattern per rare net, with optional compaction.

    With ``compact=True`` a new pattern is kept only if it activates at least
    one rare net that no previously kept pattern activates — mimicking the
    test-compaction step of an industrial ATPG flow and keeping the pattern
    count in the same ballpark as TestMAX's (tens to low hundreds).
    """
    justifier = justifier or Justifier(netlist)
    assignments: list[dict[str, int]] = []
    targeted: list[str] = []
    for rare in rare_nets:
        witness = justifier.witness({rare.net: rare.rare_value})
        if witness is None:
            continue
        assignments.append(witness)
        targeted.append(rare.net)

    pattern_set = PatternSet.from_assignments(netlist, assignments, technique="ATPG")
    if not compact or len(pattern_set) == 0:
        return pattern_set

    compiled = compile_netlist(netlist)
    # One compiled simulation answers every (pattern, rare net) activation.
    active = compiled.activations(
        pattern_set.patterns, [(rare.net, rare.rare_value) for rare in rare_nets]
    )
    covered = np.zeros(len(rare_nets), dtype=bool)
    keep: list[int] = []
    for index in range(len(pattern_set)):
        newly_covered = active[index] & ~covered
        if newly_covered.any():
            keep.append(index)
            covered |= newly_covered
    return PatternSet(
        sources=pattern_set.sources,
        patterns=pattern_set.patterns[keep],
        technique="ATPG",
        metadata={"targeted_rare_nets": len(targeted)},
    )


__all__ = ["atpg_pattern_set"]
