"""TGRL: RL-based test generation with a rareness + testability reward
[Pan & Mishra, ASP-DAC 2021].

TGRL's agent operates directly on test patterns: the state is the current
input pattern, an action flips one input bit, and the reward is a weighted sum
over the rare nets the new pattern activates, where each rare net is weighted
by its rareness and its SCOAP testability difficulty.  The patterns visited
during training form the (large) test set.  The paper contrasts this
formulation with DETERRENT's set-cover view: TGRL attains good coverage but
needs orders of magnitude more patterns and degrades quickly as the trigger
width grows — behaviours this reimplementation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet
from repro.rl.env import Environment, StepResult, VectorizedEnvironment
from repro.rl.ppo import PpoConfig, PpoTrainer
from repro.simulation.compiled import CompiledNetlist, compile_netlist
from repro.simulation.rare_nets import RareNet
from repro.simulation.testability import scoap_testability
from repro.utils.rng import RngLike, make_rng, spawn_rngs


@dataclass
class TgrlConfig:
    """TGRL hyper-parameters."""

    total_training_steps: int = 4096
    episode_length: int = 24
    num_envs: int = 2
    max_patterns: int = 4096
    rareness_weight: float = 1.0
    testability_weight: float = 0.2
    ppo: PpoConfig | None = None
    seed: int = 0


class TgrlEnv(Environment):
    """Bit-flip environment over test patterns with the TGRL reward."""

    def __init__(
        self,
        simulator: CompiledNetlist,
        rare_nets: list[RareNet],
        weights: np.ndarray,
        episode_length: int,
        seed: RngLike = None,
    ) -> None:
        if not isinstance(simulator, CompiledNetlist):
            # Accept the legacy BitParallelSimulator shim for compatibility.
            simulator = compile_netlist(simulator.netlist)
        self._simulator = simulator
        self._requirements = [(rare.net, rare.rare_value) for rare in rare_nets]
        self._weights = weights
        self._episode_length = episode_length
        self._rng = make_rng(seed)
        self._num_bits = len(simulator.sources)
        self._pattern = np.zeros(self._num_bits, dtype=np.uint8)
        self._steps = 0
        self.visited_patterns: list[np.ndarray] = []
        self.reset()

    @property
    def observation_dim(self) -> int:
        """One observation entry per controllable input bit."""
        return self._num_bits

    @property
    def num_actions(self) -> int:
        """One action per input bit (flip that bit)."""
        return self._num_bits

    def reset(self) -> np.ndarray:
        """Start from a fresh random pattern."""
        self._pattern = self._rng.integers(0, 2, size=self._num_bits, dtype=np.uint8)
        self._steps = 0
        return self._pattern.astype(np.float64)

    def step(self, action: int) -> StepResult:
        """Flip one bit and reward by weighted rare-net activation."""
        if not 0 <= action < self._num_bits:
            raise ValueError(f"action {action} out of range [0, {self._num_bits})")
        self._steps += 1
        self._pattern[action] ^= 1
        reward = self._pattern_reward(self._pattern)
        self.visited_patterns.append(self._pattern.copy())
        done = self._steps >= self._episode_length
        return StepResult(self._pattern.astype(np.float64), reward, done, {})

    def _pattern_reward(self, pattern: np.ndarray) -> float:
        """Weighted rare-net activation, evaluated on the compiled engine.

        This runs once per training step, so only the rare-net rows of the
        packed value matrix are unpacked.
        """
        activated = self._simulator.activations(pattern[None, :], self._requirements)[0]
        return float((activated * self._weights).sum())


def _reward_weights(
    netlist: Netlist, rare_nets: list[RareNet], config: TgrlConfig
) -> np.ndarray:
    """Per-rare-net weights combining rareness and SCOAP testability."""
    testability = scoap_testability(netlist)
    weights = np.zeros(len(rare_nets))
    for index, rare in enumerate(rare_nets):
        rareness_term = 1.0 - rare.probability
        scoap = testability[rare.net]
        controllability = scoap.cc1 if rare.rare_value == 1 else scoap.cc0
        observability = scoap.co if np.isfinite(scoap.co) else controllability
        testability_term = np.log1p(controllability + observability)
        weights[index] = (
            config.rareness_weight * rareness_term
            + config.testability_weight * testability_term
        )
    return weights


def tgrl_pattern_set(
    netlist: Netlist,
    rare_nets: list[RareNet],
    config: TgrlConfig | None = None,
    seed: RngLike = None,
) -> PatternSet:
    """Train the TGRL agent and return the patterns it visited (deduplicated)."""
    config = config or TgrlConfig()
    if not rare_nets:
        return PatternSet.empty(netlist, technique="TGRL")
    simulator = compile_netlist(netlist)
    weights = _reward_weights(netlist, rare_nets, config)
    rngs = spawn_rngs(seed if seed is not None else config.seed, config.num_envs)
    environments = [
        TgrlEnv(simulator, rare_nets, weights, config.episode_length, seed=rng)
        for rng in rngs
    ]
    vec_env = VectorizedEnvironment(environments)
    ppo_config = config.ppo or PpoConfig(num_steps=64, minibatch_size=64, hidden_sizes=(64, 64))
    trainer = PpoTrainer(vec_env, config=ppo_config, seed=config.seed)
    trainer.train(config.total_training_steps)

    visited: dict[bytes, np.ndarray] = {}
    for environment in environments:
        for pattern in environment.visited_patterns:
            visited.setdefault(pattern.tobytes(), pattern)
            if len(visited) >= config.max_patterns:
                break
    patterns = (
        np.stack(list(visited.values()))
        if visited
        else np.zeros((0, len(simulator.sources)), dtype=np.uint8)
    )
    return PatternSet(
        sources=simulator.sources,
        patterns=patterns,
        technique="TGRL",
        metadata={"training_steps": config.total_training_steps},
    )


__all__ = ["TgrlConfig", "TgrlEnv", "tgrl_pattern_set"]
