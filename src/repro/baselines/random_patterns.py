"""Uniformly random test patterns (the paper's "Random" column).

The paper sizes the random pattern budget to match TGRL's test length for a
fair comparison; the experiment harness does the same by passing the
appropriate ``num_patterns``.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet
from repro.utils.rng import RngLike, make_rng


def random_pattern_set(
    netlist: Netlist, num_patterns: int, seed: RngLike = None
) -> PatternSet:
    """Generate ``num_patterns`` uniformly random patterns for ``netlist``."""
    if num_patterns < 0:
        raise ValueError(f"num_patterns must be non-negative, got {num_patterns}")
    rng = make_rng(seed)
    sources = netlist.combinational_sources()
    patterns = rng.integers(0, 2, size=(num_patterns, len(sources)), dtype=np.uint8)
    return PatternSet(sources=sources, patterns=patterns, technique="Random")


__all__ = ["random_pattern_set"]
