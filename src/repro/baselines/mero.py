"""MERO: statistical N-detection test generation [Chakraborty et al., CHES 2009].

MERO's hypothesis is that if every rare net is driven to its rare value at
least ``N`` times by the test set, the set is likely to activate unknown
triggers.  The algorithm starts from a large pool of random patterns and
greedily mutates each pattern bit by bit, keeping a flip whenever it increases
the number of rare nets activated, then retains the patterns that contribute
to the N-detection goal.  The paper uses MERO as the historical baseline that
works on small circuits but scales poorly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.netlist import Netlist
from repro.core.patterns import PatternSet
from repro.simulation.compiled import CompiledNetlist, compile_netlist
from repro.simulation.rare_nets import RareNet
from repro.utils.rng import RngLike, make_rng


@dataclass
class MeroConfig:
    """MERO hyper-parameters."""

    num_random_patterns: int = 512
    n_detect: int = 5
    max_bit_flips_per_pattern: int | None = None
    seed: int = 0


def _activation_counts(
    compiled: CompiledNetlist, patterns: np.ndarray, rare_nets: list[RareNet]
) -> np.ndarray:
    """Matrix ``[pattern, rare_net]`` of rare-value activations.

    Runs on the compiled engine and only unpacks the rare-net rows, which
    matters because MERO calls this once per candidate bit flip.
    """
    requirements = [(rare.net, rare.rare_value) for rare in rare_nets]
    return compiled.activations(patterns, requirements)


def mero_pattern_set(
    netlist: Netlist,
    rare_nets: list[RareNet],
    config: MeroConfig | None = None,
    seed: RngLike = None,
) -> PatternSet:
    """Run the MERO algorithm and return the selected pattern set."""
    config = config or MeroConfig()
    rng = make_rng(seed if seed is not None else config.seed)
    compiled = compile_netlist(netlist)
    sources = compiled.sources
    num_sources = len(sources)
    if not rare_nets:
        return PatternSet.empty(netlist, technique="MERO")

    patterns = rng.integers(0, 2, size=(config.num_random_patterns, num_sources), dtype=np.uint8)
    activation = _activation_counts(compiled, patterns, rare_nets)
    # Sort patterns by decreasing number of rare nets they already activate
    # (MERO processes the most promising patterns first).
    order = np.argsort(-activation.sum(axis=1))
    patterns = patterns[order]
    activation = activation[order]

    detection_counts = np.zeros(len(rare_nets), dtype=np.int64)
    selected: list[np.ndarray] = []
    max_flips = config.max_bit_flips_per_pattern or num_sources

    for pattern_index in range(patterns.shape[0]):
        if np.all(detection_counts >= config.n_detect):
            break
        pattern = patterns[pattern_index].copy()
        best_active = _activation_counts(compiled, pattern[None, :], rare_nets)[0]
        flip_order = rng.permutation(num_sources)[:max_flips]
        for bit in flip_order:
            pattern[bit] ^= 1
            active = _activation_counts(compiled, pattern[None, :], rare_nets)[0]
            # Keep the flip only if it helps nets that still need detections.
            needs = detection_counts < config.n_detect
            if (active & needs).sum() > (best_active & needs).sum():
                best_active = active
            else:
                pattern[bit] ^= 1
        improves = bool((best_active & (detection_counts < config.n_detect)).any())
        if improves:
            selected.append(pattern.copy())
            detection_counts += best_active
    if not selected:
        return PatternSet.empty(netlist, technique="MERO")
    return PatternSet(
        sources=sources,
        patterns=np.stack(selected),
        technique="MERO",
        metadata={"n_detect": config.n_detect},
    )


__all__ = ["MeroConfig", "mero_pattern_set"]
