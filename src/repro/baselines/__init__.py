"""Comparison baselines used in the paper's evaluation.

Every baseline produces a :class:`repro.core.patterns.PatternSet`, so the
Trojan-coverage evaluator and the experiment harnesses treat all techniques
uniformly:

- :mod:`repro.baselines.random_patterns` — uniformly random test patterns.
- :mod:`repro.baselines.atpg` — a TestMAX-style ATPG proxy that targets each
  rare net individually (stuck-at-style justification), reproducing the
  paper's observation that conventional ATPG misses joint rare conditions.
- :mod:`repro.baselines.mero` — MERO [Chakraborty et al., CHES 2009]:
  N-detection of rare nets by mutating random patterns.
- :mod:`repro.baselines.tarmac` — TARMAC [Lyu & Mishra, TCAD 2021]: repeated
  maximal-clique sampling on the rare-net compatibility graph.
- :mod:`repro.baselines.tgrl` — TGRL [Pan & Mishra, ASP-DAC 2021]: RL over
  test-pattern bit flips rewarded by rareness and SCOAP testability.
"""

from repro.baselines.random_patterns import random_pattern_set
from repro.baselines.atpg import atpg_pattern_set
from repro.baselines.mero import MeroConfig, mero_pattern_set
from repro.baselines.tarmac import TarmacConfig, tarmac_pattern_set
from repro.baselines.tgrl import TgrlConfig, tgrl_pattern_set

__all__ = [
    "random_pattern_set",
    "atpg_pattern_set",
    "MeroConfig",
    "mero_pattern_set",
    "TarmacConfig",
    "tarmac_pattern_set",
    "TgrlConfig",
    "tgrl_pattern_set",
]
