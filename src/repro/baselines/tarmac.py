"""TARMAC: test generation by repeated maximal-clique sampling [Lyu & Mishra, TCAD 2021].

TARMAC maps trigger activation to clique cover on the *satisfiability graph*
of rare nets (nodes are rare nets, edges connect pairwise-compatible nets).
It repeatedly samples maximal cliques with a randomised greedy procedure and
generates one test pattern per clique with a SAT solver.  The paper reports
that TARMAC achieves good coverage but needs a large, randomness-sensitive
number of patterns — the behaviour this reimplementation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compatibility import CompatibilityAnalysis
from repro.core.patterns import PatternSet, generate_patterns
from repro.utils.rng import RngLike, make_rng


@dataclass
class TarmacConfig:
    """TARMAC hyper-parameters."""

    num_cliques: int = 200
    seed: int = 0


def sample_maximal_clique(
    compatibility: CompatibilityAnalysis, rng, start: int | None = None
) -> frozenset[int]:
    """Sample one maximal clique of the compatibility graph greedily.

    Starting from a random rare net, candidates compatible with every member
    are added in random order until none remain — the randomized maximal
    clique sampling at the heart of TARMAC.
    """
    count = compatibility.num_rare_nets
    if start is None:
        start = int(rng.integers(count))
    clique = {start}
    candidates = [i for i in range(count) if i != start and compatibility.compatible(i, start)]
    rng.shuffle(candidates)
    for candidate in candidates:
        if compatibility.compatible_with_all(candidate, clique):
            clique.add(candidate)
    return frozenset(clique)


def tarmac_pattern_set(
    compatibility: CompatibilityAnalysis,
    config: TarmacConfig | None = None,
    seed: RngLike = None,
) -> PatternSet:
    """Run TARMAC: sample cliques, keep the distinct ones, SAT-generate patterns."""
    config = config or TarmacConfig()
    rng = make_rng(seed if seed is not None else config.seed)
    cliques: dict[frozenset[int], None] = {}
    for _ in range(config.num_cliques):
        cliques.setdefault(sample_maximal_clique(compatibility, rng), None)
    ordered = sorted(cliques, key=lambda c: (-len(c), sorted(c)))
    pattern_set = generate_patterns(compatibility, ordered, technique="TARMAC")
    pattern_set.metadata["num_distinct_cliques"] = len(ordered)
    return pattern_set


__all__ = ["TarmacConfig", "tarmac_pattern_set", "sample_maximal_clique"]
