"""Structural validation of netlists.

Validation catches construction mistakes early: undriven nets, dangling logic,
combinational cycles, and output nets without drivers.  The benchmark
generators and the Trojan-insertion transform both validate their results, and
the property-based tests assert that every generated circuit passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.netlist import Netlist


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_netlist`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings are allowed)."""
        return not self.errors


def validate_netlist(netlist: Netlist, *, strict: bool = False) -> ValidationReport:
    """Check structural invariants of a netlist.

    Errors: undriven gate inputs, undriven primary outputs, undriven flip-flop
    data inputs, combinational cycles.  Warnings: nets that drive nothing and
    are not primary outputs ("dangling" logic).  With ``strict=True`` warnings
    are promoted to errors.
    """
    report = ValidationReport()

    for gate in netlist.gates:
        for source in gate.inputs:
            if not netlist.has_driver(source):
                report.errors.append(
                    f"gate {gate.output!r} input {source!r} has no driver"
                )
    for net in netlist.outputs:
        if not netlist.has_driver(net):
            report.errors.append(f"primary output {net!r} has no driver")
    for ff in netlist.flip_flops:
        if not netlist.has_driver(ff.d):
            report.errors.append(f"flip-flop {ff.q!r} data input {ff.d!r} has no driver")

    try:
        netlist.topological_gates()
    except ValueError as exc:
        report.errors.append(str(exc))

    consumed: set[str] = set()
    for gate in netlist.gates:
        consumed.update(gate.inputs)
    for ff in netlist.flip_flops:
        consumed.add(ff.d)
    for gate in netlist.gates:
        if gate.output not in consumed and not netlist.is_output(gate.output):
            report.warnings.append(f"net {gate.output!r} drives nothing")
    for net in netlist.inputs:
        if net not in consumed and not netlist.is_output(net):
            report.warnings.append(f"primary input {net!r} is unused")

    if strict and report.warnings:
        report.errors.extend(report.warnings)
        report.warnings = []
    return report


__all__ = ["ValidationReport", "validate_netlist"]
