"""The gate-level netlist container.

A :class:`Netlist` is a named collection of primary inputs, primary outputs,
combinational gates, and D flip-flops.  All analyses in the library
(simulation, SAT encoding, rare-net extraction, Trojan insertion) operate on
this class.

Nets are identified by strings.  Each net has exactly one driver: a primary
input, a gate output, or a flip-flop Q output.  Sequential circuits are
handled through full-scan conversion (:mod:`repro.circuits.scan`), which turns
flip-flop outputs into pseudo primary inputs and flip-flop inputs into pseudo
primary outputs, exactly matching the full-scan-access assumption the paper
makes for the ISCAS-89 and MIPS benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.gates import Gate, GateType


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop: ``q`` samples ``d`` at each (implicit) clock edge."""

    q: str
    d: str


class Netlist:
    """A gate-level circuit.

    The class maintains the invariant that every net has a single driver and
    exposes cached structural queries (topological order, fan-out, levels)
    that are recomputed lazily after mutation.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._flip_flops: dict[str, FlipFlop] = {}
        self._input_set: set[str] = set()
        self._output_set: set[str] = set()
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self._input_set:
            raise ValueError(f"duplicate primary input {name!r}")
        if self.has_driver(name):
            raise ValueError(f"net {name!r} already has a driver")
        self._inputs.append(name)
        self._input_set.add(name)
        self._invalidate()
        return name

    def add_output(self, name: str) -> str:
        """Declare a primary output net (may be driven later)."""
        if name in self._output_set:
            raise ValueError(f"duplicate primary output {name!r}")
        self._outputs.append(name)
        self._output_set.add(name)
        self._invalidate()
        return name

    def add_gate(self, output: str, gate_type: GateType, inputs: list[str] | tuple[str, ...]) -> Gate:
        """Add a combinational gate driving ``output``."""
        if self.has_driver(output):
            raise ValueError(f"net {output!r} already has a driver")
        gate = Gate(output=output, gate_type=gate_type, inputs=tuple(inputs))
        self._gates[output] = gate
        self._invalidate()
        return gate

    def add_flip_flop(self, q: str, d: str) -> FlipFlop:
        """Add a D flip-flop whose output net is ``q`` and data input is ``d``."""
        if self.has_driver(q):
            raise ValueError(f"net {q!r} already has a driver")
        ff = FlipFlop(q=q, d=d)
        self._flip_flops[q] = ff
        self._invalidate()
        return ff

    def remove_gate(self, output: str) -> None:
        """Remove the gate driving ``output`` (used by netlist transforms)."""
        if output not in self._gates:
            raise KeyError(f"no gate drives net {output!r}")
        del self._gates[output]
        self._invalidate()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input nets, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary output nets, in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> tuple[Gate, ...]:
        """All combinational gates."""
        return tuple(self._gates.values())

    @property
    def flip_flops(self) -> tuple[FlipFlop, ...]:
        """All D flip-flops."""
        return tuple(self._flip_flops.values())

    @property
    def num_gates(self) -> int:
        """Number of combinational gates."""
        return len(self._gates)

    @property
    def is_sequential(self) -> bool:
        """True if the netlist contains flip-flops."""
        return bool(self._flip_flops)

    @property
    def nets(self) -> tuple[str, ...]:
        """All nets: inputs, flip-flop outputs, then gate outputs in topological order."""
        return tuple(self._inputs) + tuple(self._flip_flops) + tuple(
            gate.output for gate in self.topological_gates()
        )

    def is_input(self, net: str) -> bool:
        """True if ``net`` is a primary input."""
        return net in self._input_set

    def is_output(self, net: str) -> bool:
        """True if ``net`` is a primary output."""
        return net in self._output_set

    def has_driver(self, net: str) -> bool:
        """True if ``net`` is driven by an input, a gate, or a flip-flop."""
        return net in self._input_set or net in self._gates or net in self._flip_flops

    def gate_for(self, net: str) -> Gate | None:
        """Return the gate driving ``net``, or None."""
        return self._gates.get(net)

    def fanout_map(self) -> dict[str, tuple[str, ...]]:
        """Map each net to the gate-output nets that consume it."""
        cached = self._cache.get("fanout")
        if cached is None:
            fanout: dict[str, list[str]] = {net: [] for net in self._all_net_names()}
            for gate in self._gates.values():
                for source in gate.inputs:
                    fanout.setdefault(source, []).append(gate.output)
            cached = {net: tuple(sinks) for net, sinks in fanout.items()}
            self._cache["fanout"] = cached
        return cached  # type: ignore[return-value]

    def topological_gates(self) -> tuple[Gate, ...]:
        """Gates in a topological order (inputs before consumers).

        Raises ValueError if the combinational logic contains a cycle.
        """
        cached = self._cache.get("topo")
        if cached is None:
            cached = self._compute_topological_order()
            self._cache["topo"] = cached
        return cached  # type: ignore[return-value]

    def levels(self) -> dict[str, int]:
        """Logic level of each net (inputs and flip-flop outputs are level 0)."""
        cached = self._cache.get("levels")
        if cached is None:
            levels: dict[str, int] = {net: 0 for net in self._inputs}
            levels.update({q: 0 for q in self._flip_flops})
            for gate in self.topological_gates():
                levels[gate.output] = 1 + max(
                    (levels.get(source, 0) for source in gate.inputs), default=0
                )
            cached = levels
            self._cache["levels"] = cached
        return dict(cached)  # type: ignore[arg-type]

    @property
    def depth(self) -> int:
        """Maximum logic level over all nets."""
        levels = self.levels()
        return max(levels.values(), default=0)

    def combinational_sources(self) -> tuple[str, ...]:
        """Nets that act as sources of the combinational logic.

        Primary inputs plus flip-flop Q outputs; under full scan these are the
        controllable nets of a test pattern.
        """
        return tuple(self._inputs) + tuple(self._flip_flops)

    def memo(self, key: str, builder):
        """Return a cached derived structure, building it on first use.

        The cache is invalidated whenever the netlist mutates, so expensive
        derived views (levelised schedules, compiled simulators) stay
        consistent with the structure without explicit lifetime management.
        """
        cached = self._cache.get(key)
        if cached is None:
            cached = builder()
            self._cache[key] = cached
        return cached

    def copy(self, name: str | None = None) -> "Netlist":
        """Return a deep structural copy of the netlist."""
        clone = Netlist(name or self.name)
        for net in self._inputs:
            clone.add_input(net)
        for net in self._outputs:
            clone.add_output(net)
        for ff in self._flip_flops.values():
            clone.add_flip_flop(ff.q, ff.d)
        for gate in self._gates.values():
            clone.add_gate(gate.output, gate.gate_type, gate.inputs)
        return clone

    def transitive_fanin(self, net: str) -> set[str]:
        """All nets in the cone of influence of ``net`` (including itself)."""
        seen: set[str] = set()
        stack = [net]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            gate = self._gates.get(current)
            if gate is not None:
                stack.extend(gate.inputs)
        return seen

    def __repr__(self) -> str:
        return (
            f"Netlist(name={self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={len(self._gates)}, "
            f"flip_flops={len(self._flip_flops)})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _all_net_names(self) -> list[str]:
        names = list(self._inputs)
        names.extend(self._flip_flops)
        names.extend(self._gates)
        for gate in self._gates.values():
            for source in gate.inputs:
                if not self.has_driver(source):
                    names.append(source)
        return names

    def _invalidate(self) -> None:
        self._cache.clear()

    def _compute_topological_order(self) -> tuple[Gate, ...]:
        in_degree: dict[str, int] = {}
        for gate in self._gates.values():
            in_degree[gate.output] = sum(
                1 for source in gate.inputs if source in self._gates
            )
        fanout: dict[str, list[str]] = {}
        for gate in self._gates.values():
            for source in gate.inputs:
                if source in self._gates:
                    fanout.setdefault(source, []).append(gate.output)
        ready = [net for net, degree in in_degree.items() if degree == 0]
        order: list[Gate] = []
        while ready:
            net = ready.pop()
            order.append(self._gates[net])
            for sink in fanout.get(net, ()):
                in_degree[sink] -= 1
                if in_degree[sink] == 0:
                    ready.append(sink)
        if len(order) != len(self._gates):
            unresolved = sorted(set(self._gates) - {gate.output for gate in order})
            raise ValueError(
                f"combinational cycle detected involving nets: {unresolved[:5]}"
            )
        return tuple(order)


__all__ = ["Netlist", "FlipFlop"]
