"""Fluent construction API for gate-level netlists.

:class:`NetlistBuilder` wraps a :class:`~repro.circuits.netlist.Netlist` with
automatic net naming and convenience methods for each gate type, so that the
word-level blocks in :mod:`repro.circuits.blocks` and the benchmark generators
read like structural RTL.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist


class NetlistBuilder:
    """Incrementally builds a :class:`Netlist` with generated net names."""

    def __init__(self, name: str = "top") -> None:
        self.netlist = Netlist(name)
        self._counter = 0

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare a single primary input."""
        return self.netlist.add_input(name)

    def inputs(self, prefix: str, width: int) -> list[str]:
        """Declare a bus of ``width`` primary inputs named ``prefix[i]``."""
        return [self.netlist.add_input(f"{prefix}[{i}]") for i in range(width)]

    def output(self, net: str, name: str | None = None) -> str:
        """Mark ``net`` as a primary output, optionally buffering it under ``name``."""
        if name is not None and name != net:
            self.gate(GateType.BUF, [net], name=name)
            net = name
        self.netlist.add_output(net)
        return net

    def outputs(self, nets: list[str], prefix: str | None = None) -> list[str]:
        """Mark a list of nets as primary outputs, optionally renaming to ``prefix[i]``."""
        result = []
        for index, net in enumerate(nets):
            name = f"{prefix}[{index}]" if prefix is not None else None
            result.append(self.output(net, name=name))
        return result

    def flip_flop(self, d: str, q: str | None = None) -> str:
        """Add a D flip-flop fed by ``d`` and return its Q net."""
        q = q or self.fresh("ff_q")
        self.netlist.add_flip_flop(q, d)
        return q

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def fresh(self, hint: str = "n") -> str:
        """Return a fresh unique net name."""
        self._counter += 1
        return f"{hint}_{self._counter}"

    def gate(self, gate_type: GateType, inputs: list[str], name: str | None = None) -> str:
        """Add a gate and return its output net name."""
        output = name or self.fresh(gate_type.value.lower())
        self.netlist.add_gate(output, gate_type, inputs)
        return output

    def and_(self, *inputs: str, name: str | None = None) -> str:
        """AND of two or more nets."""
        return self._reduce(GateType.AND, list(inputs), name)

    def or_(self, *inputs: str, name: str | None = None) -> str:
        """OR of two or more nets."""
        return self._reduce(GateType.OR, list(inputs), name)

    def nand(self, *inputs: str, name: str | None = None) -> str:
        """NAND of two or more nets."""
        return self.gate(GateType.NAND, list(inputs), name)

    def nor(self, *inputs: str, name: str | None = None) -> str:
        """NOR of two or more nets."""
        return self.gate(GateType.NOR, list(inputs), name)

    def xor(self, *inputs: str, name: str | None = None) -> str:
        """XOR of two or more nets."""
        return self._reduce(GateType.XOR, list(inputs), name)

    def xnor(self, *inputs: str, name: str | None = None) -> str:
        """XNOR of two or more nets."""
        return self.gate(GateType.XNOR, list(inputs), name)

    def not_(self, source: str, name: str | None = None) -> str:
        """Inverter."""
        return self.gate(GateType.NOT, [source], name)

    def buf(self, source: str, name: str | None = None) -> str:
        """Buffer."""
        return self.gate(GateType.BUF, [source], name)

    def mux2(self, select: str, when_zero: str, when_one: str, name: str | None = None) -> str:
        """2:1 multiplexer built from AND/OR/NOT gates."""
        select_n = self.not_(select)
        low = self.and_(select_n, when_zero)
        high = self.and_(select, when_one)
        return self.or_(low, high, name=name)

    def build(self) -> Netlist:
        """Return the constructed netlist."""
        return self.netlist

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reduce(self, gate_type: GateType, inputs: list[str], name: str | None) -> str:
        """Build a wide gate directly; single input degenerates to a buffer."""
        if len(inputs) == 1:
            return self.buf(inputs[0], name=name)
        return self.gate(gate_type, inputs, name)


__all__ = ["NetlistBuilder"]
