"""Summary statistics of a netlist.

Used by the experiment reports (Table 2 reports gate counts and rare-net
counts per design) and by the examples to describe the circuits they run on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.circuits.netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Aggregate structural statistics of a netlist."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_flip_flops: int
    depth: int
    gate_type_counts: dict[str, int]

    @property
    def num_nets(self) -> int:
        """Total number of driven nets."""
        return self.num_inputs + self.num_gates + self.num_flip_flops


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    counts = Counter(gate.gate_type.value for gate in netlist.gates)
    return NetlistStats(
        name=netlist.name,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        num_gates=netlist.num_gates,
        num_flip_flops=len(netlist.flip_flops),
        depth=netlist.depth,
        gate_type_counts=dict(counts),
    )


__all__ = ["NetlistStats", "netlist_stats"]
