"""Reader and writer for the ISCAS ``.bench`` netlist format.

The ``.bench`` format is the standard interchange format for the ISCAS-85 and
ISCAS-89 benchmark suites that the paper evaluates on.  This module lets users
load real benchmark files (if they have them) into the library and lets the
benchmark generators export their synthetic analogues in a format compatible
with external tools.

Grammar (one statement per line)::

    INPUT(net)
    OUTPUT(net)
    net = GATE(a, b, ...)          # AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF
    net = DFF(d)                   # D flip-flop
    # comment
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

_STATEMENT = re.compile(
    r"^\s*(?:"
    r"INPUT\((?P<input>[^)]+)\)"
    r"|OUTPUT\((?P<output>[^)]+)\)"
    r"|(?P<lhs>\S+)\s*=\s*(?P<func>\w+)\s*\((?P<args>[^)]*)\)"
    r")\s*$",
    re.IGNORECASE,
)

_GATE_ALIASES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}


class BenchParseError(ValueError):
    """Raised when a ``.bench`` file cannot be parsed."""


def loads_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`."""
    netlist = Netlist(name)
    pending_outputs: list[str] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _STATEMENT.match(line)
        if match is None:
            raise BenchParseError(f"line {line_number}: cannot parse {raw_line!r}")
        if match.group("input"):
            netlist.add_input(match.group("input").strip())
        elif match.group("output"):
            pending_outputs.append(match.group("output").strip())
        else:
            lhs = match.group("lhs").strip()
            func = match.group("func").upper()
            args = [arg.strip() for arg in match.group("args").split(",") if arg.strip()]
            if func == "DFF":
                if len(args) != 1:
                    raise BenchParseError(
                        f"line {line_number}: DFF takes exactly one input, got {len(args)}"
                    )
                netlist.add_flip_flop(lhs, args[0])
            elif func in _GATE_ALIASES:
                netlist.add_gate(lhs, _GATE_ALIASES[func], args)
            else:
                raise BenchParseError(f"line {line_number}: unknown function {func!r}")
    for output in pending_outputs:
        netlist.add_output(output)
    return netlist


def load_bench(path: str | Path, name: str | None = None) -> Netlist:
    """Load a ``.bench`` file from disk."""
    path = Path(path)
    return loads_bench(path.read_text(), name=name or path.stem)


def dumps_bench(netlist: Netlist) -> str:
    """Serialise a :class:`Netlist` to ``.bench`` text."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    lines.extend(f"{ff.q} = DFF({ff.d})" for ff in netlist.flip_flops)
    for gate in netlist.topological_gates():
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def dump_bench(netlist: Netlist, path: str | Path) -> None:
    """Write a :class:`Netlist` to a ``.bench`` file."""
    Path(path).write_text(dumps_bench(netlist))


__all__ = [
    "BenchParseError",
    "loads_bench",
    "load_bench",
    "dumps_bench",
    "dump_bench",
]
