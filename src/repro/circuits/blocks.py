"""Word-level combinational building blocks.

These functions compose primitive gates into the arithmetic and control
structures used by the benchmark generators: ripple-carry adders, array
multipliers, decoders, comparators, parity trees, ALUs and multiplexer trees.
They return lists of output net names and operate on an existing
:class:`~repro.circuits.builder.NetlistBuilder`.

The decoder and wide-comparator blocks are the main source of *rare nets*
(nets whose probability of taking one of the logic values under random inputs
is very small), which is the structural property the paper's benchmarks rely
on for Trojan trigger insertion.
"""

from __future__ import annotations

from repro.circuits.builder import NetlistBuilder


def half_adder(builder: NetlistBuilder, a: str, b: str) -> tuple[str, str]:
    """Half adder: returns (sum, carry)."""
    return builder.xor(a, b), builder.and_(a, b)


def full_adder(builder: NetlistBuilder, a: str, b: str, carry_in: str) -> tuple[str, str]:
    """Full adder: returns (sum, carry_out)."""
    partial = builder.xor(a, b)
    total = builder.xor(partial, carry_in)
    carry = builder.or_(builder.and_(a, b), builder.and_(partial, carry_in))
    return total, carry


def ripple_carry_adder(
    builder: NetlistBuilder, a: list[str], b: list[str], carry_in: str | None = None
) -> tuple[list[str], str]:
    """Ripple-carry adder over two equal-width buses: returns (sum bus, carry out)."""
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    sums: list[str] = []
    carry = carry_in
    for bit_a, bit_b in zip(a, b):
        if carry is None:
            bit_sum, carry = half_adder(builder, bit_a, bit_b)
        else:
            bit_sum, carry = full_adder(builder, bit_a, bit_b, carry)
        sums.append(bit_sum)
    return sums, carry


def subtractor(builder: NetlistBuilder, a: list[str], b: list[str]) -> tuple[list[str], str]:
    """Two's-complement subtractor a - b: returns (difference bus, borrow-free carry)."""
    b_inverted = [builder.not_(bit) for bit in b]
    # a + ~b + 1: seed the carry chain with a constant 1 by using (bit XOR bit -> 0? ) —
    # constants are avoided, so implement +1 by a dedicated half-adder chain on the
    # inverted operand first.
    plus_one, carry = _increment(builder, b_inverted)
    sums, carry_out = ripple_carry_adder(builder, a, plus_one)
    combined = builder.or_(carry, carry_out)
    return sums, combined


def _increment(builder: NetlistBuilder, bus: list[str]) -> tuple[list[str], str]:
    """Increment a bus by one without constant nets (carry seeded from bit 0)."""
    result = [builder.not_(bus[0])]
    carry = builder.buf(bus[0])
    for bit in bus[1:]:
        result.append(builder.xor(bit, carry))
        carry = builder.and_(bit, carry)
    return result, carry


def array_multiplier(builder: NetlistBuilder, a: list[str], b: list[str]) -> list[str]:
    """Unsigned array multiplier (the structure of ISCAS-85 c6288).

    Returns the ``len(a) + len(b)``-bit product bus.  Built from partial
    products reduced with carry-save rows of full/half adders.
    """
    width_a, width_b = len(a), len(b)
    partials = [
        [builder.and_(a[i], b[j]) for i in range(width_a)] for j in range(width_b)
    ]
    # Row-by-row carry-save accumulation.
    accum = list(partials[0])
    product: list[str] = [accum.pop(0)]
    for row_index in range(1, width_b):
        row = partials[row_index]
        next_accum: list[str] = []
        carry: str | None = None
        for position in range(width_a):
            addend = accum[position] if position < len(accum) else None
            if addend is None:
                if carry is None:
                    next_accum.append(row[position])
                else:
                    bit_sum, carry = half_adder(builder, row[position], carry)
                    next_accum.append(bit_sum)
            else:
                if carry is None:
                    bit_sum, carry = half_adder(builder, row[position], addend)
                else:
                    bit_sum, carry = full_adder(builder, row[position], addend, carry)
                next_accum.append(bit_sum)
        if carry is not None:
            next_accum.append(carry)
        product.append(next_accum.pop(0))
        accum = next_accum
    product.extend(accum)
    return product


def decoder(builder: NetlistBuilder, select: list[str]) -> list[str]:
    """N-to-2^N one-hot decoder.

    Each output is an AND of all select bits in true/complement form; under
    random inputs each output is 1 with probability 2^-N, so wide decoders
    are a rich source of rare nets.
    """
    inverted = [builder.not_(bit) for bit in select]
    outputs: list[str] = []
    for code in range(2 ** len(select)):
        terms = [
            select[i] if (code >> i) & 1 else inverted[i] for i in range(len(select))
        ]
        outputs.append(builder.and_(*terms))
    return outputs


def equality_comparator(builder: NetlistBuilder, a: list[str], b: list[str]) -> str:
    """Wide equality comparator: output is 1 iff the buses are bit-wise equal."""
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    bit_equal = [builder.xnor(x, y) for x, y in zip(a, b)]
    return builder.and_(*bit_equal) if len(bit_equal) > 1 else bit_equal[0]


def magnitude_comparator(builder: NetlistBuilder, a: list[str], b: list[str]) -> str:
    """Greater-than comparator: output is 1 iff unsigned a > b."""
    if len(a) != len(b):
        raise ValueError(f"operand widths differ: {len(a)} vs {len(b)}")
    greater = None
    equal_so_far = None
    for bit_a, bit_b in zip(reversed(a), reversed(b)):
        bit_gt = builder.and_(bit_a, builder.not_(bit_b))
        bit_eq = builder.xnor(bit_a, bit_b)
        if greater is None:
            greater = bit_gt
            equal_so_far = bit_eq
        else:
            greater = builder.or_(greater, builder.and_(equal_so_far, bit_gt))
            equal_so_far = builder.and_(equal_so_far, bit_eq)
    assert greater is not None
    return greater


def parity_tree(builder: NetlistBuilder, bits: list[str]) -> str:
    """Balanced XOR parity tree over a bus."""
    layer = list(bits)
    while len(layer) > 1:
        next_layer: list[str] = []
        for index in range(0, len(layer) - 1, 2):
            next_layer.append(builder.xor(layer[index], layer[index + 1]))
        if len(layer) % 2 == 1:
            next_layer.append(layer[-1])
        layer = next_layer
    return layer[0]


def mux_bus(
    builder: NetlistBuilder, select: str, when_zero: list[str], when_one: list[str]
) -> list[str]:
    """Bit-wise 2:1 mux between two equal-width buses."""
    if len(when_zero) != len(when_one):
        raise ValueError("mux operand widths differ")
    return [builder.mux2(select, z, o) for z, o in zip(when_zero, when_one)]


def mux_tree(builder: NetlistBuilder, select: list[str], choices: list[list[str]]) -> list[str]:
    """Select one of ``2**len(select)`` buses with a binary select bus."""
    expected = 2 ** len(select)
    if len(choices) != expected:
        raise ValueError(f"expected {expected} choices, got {len(choices)}")
    layer = [list(bus) for bus in choices]
    for bit in select:
        next_layer = []
        for index in range(0, len(layer), 2):
            next_layer.append(mux_bus(builder, bit, layer[index], layer[index + 1]))
        layer = next_layer
    return layer[0]


def alu(
    builder: NetlistBuilder, a: list[str], b: list[str], opcode: list[str]
) -> list[str]:
    """Small ALU: opcode selects between ADD, AND, OR, XOR (2-bit opcode).

    Wider opcodes select among replicated slices; only the two low bits are
    functional, which mirrors the partially-used control fields of real
    processor decoders (another source of biased nets).
    """
    add_bus, _carry = ripple_carry_adder(builder, a, b)
    and_bus = [builder.and_(x, y) for x, y in zip(a, b)]
    or_bus = [builder.or_(x, y) for x, y in zip(a, b)]
    xor_bus = [builder.xor(x, y) for x, y in zip(a, b)]
    return mux_tree(builder, opcode[:2], [add_bus, and_bus, or_bus, xor_bus])


__all__ = [
    "half_adder",
    "full_adder",
    "ripple_carry_adder",
    "subtractor",
    "array_multiplier",
    "decoder",
    "equality_comparator",
    "magnitude_comparator",
    "parity_tree",
    "mux_bus",
    "mux_tree",
    "alu",
]
