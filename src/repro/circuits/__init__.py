"""Gate-level circuit infrastructure.

This subpackage provides the netlist data model that every other part of the
library operates on, plus construction helpers, file I/O, scan conversion and
the benchmark suite used by the experiments.
"""

from repro.circuits.gates import GateType, Gate, evaluate_gate
from repro.circuits.netlist import Netlist
from repro.circuits.builder import NetlistBuilder
from repro.circuits.library import benchmark_suite, load_benchmark

__all__ = [
    "GateType",
    "Gate",
    "evaluate_gate",
    "Netlist",
    "NetlistBuilder",
    "benchmark_suite",
    "load_benchmark",
]
