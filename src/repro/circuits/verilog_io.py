"""Structural Verilog export and a restricted gate-level Verilog reader.

The paper's flow consumes gate-level Verilog netlists (and evaluates them with
Synopsys VCS).  This module provides the equivalent interchange path: the
writer emits one primitive instance per gate (``and``, ``or``, ``nand``,
``nor``, ``xor``, ``xnor``, ``not``, ``buf``) and the reader accepts netlists
written in that same restricted structural subset.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}
_PRIMITIVE_TO_GATE = {name: gate for gate, name in _PRIMITIVES.items()}


class VerilogParseError(ValueError):
    """Raised when structural Verilog cannot be parsed by the restricted reader."""


def _sanitize(net: str) -> str:
    """Escape net names that are not plain Verilog identifiers."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", net):
        return net
    return f"\\{net} "


def dumps_verilog(netlist: Netlist) -> str:
    """Serialise a netlist to structural Verilog."""
    inputs = list(netlist.inputs)
    outputs = list(netlist.outputs)
    ports = ", ".join(_sanitize(net).strip() for net in inputs + outputs)
    lines = [f"module {netlist.name} ({ports});"]
    for net in inputs:
        lines.append(f"  input {_sanitize(net)};")
    for net in outputs:
        lines.append(f"  output {_sanitize(net)};")
    declared = set(inputs) | set(outputs)
    wires = []
    for gate in netlist.topological_gates():
        if gate.output not in declared:
            wires.append(gate.output)
            declared.add(gate.output)
    for ff in netlist.flip_flops:
        if ff.q not in declared:
            wires.append(ff.q)
            declared.add(ff.q)
    for wire in wires:
        lines.append(f"  wire {_sanitize(wire)};")
    for index, ff in enumerate(netlist.flip_flops):
        lines.append(
            f"  // DFF {index}: {_sanitize(ff.q)} samples {_sanitize(ff.d)}"
        )
        lines.append(f"  dff dff_{index} ({_sanitize(ff.q)}, {_sanitize(ff.d)});")
    for index, gate in enumerate(netlist.topological_gates()):
        primitive = _PRIMITIVES[gate.gate_type]
        args = ", ".join(_sanitize(net) for net in (gate.output, *gate.inputs))
        lines.append(f"  {primitive} g_{index} ({args});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def dump_verilog(netlist: Netlist, path: str | Path) -> None:
    """Write structural Verilog to a file."""
    Path(path).write_text(dumps_verilog(netlist))


_INSTANCE = re.compile(
    r"^\s*(?P<prim>and|or|nand|nor|xor|xnor|not|buf|dff)\s+\S+\s*\((?P<args>[^)]*)\)\s*;\s*$"
)
_PORT_DECL = re.compile(r"^\s*(?P<kind>input|output|wire)\s+(?P<nets>[^;]+);\s*$")


def loads_verilog(text: str, name: str | None = None) -> Netlist:
    """Parse restricted structural Verilog produced by :func:`dumps_verilog`."""
    module_match = re.search(r"module\s+(\S+)\s*\(", text)
    netlist = Netlist(name or (module_match.group(1) if module_match else "top"))
    outputs: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line or line.startswith(("module", "endmodule")):
            continue
        decl = _PORT_DECL.match(line)
        if decl is not None:
            nets = [net.strip().lstrip("\\").strip() for net in decl.group("nets").split(",")]
            if decl.group("kind") == "input":
                for net in nets:
                    netlist.add_input(net)
            elif decl.group("kind") == "output":
                outputs.extend(nets)
            continue
        instance = _INSTANCE.match(line)
        if instance is None:
            raise VerilogParseError(f"cannot parse line: {raw_line!r}")
        args = [arg.strip().lstrip("\\").strip() for arg in instance.group("args").split(",")]
        primitive = instance.group("prim")
        if primitive == "dff":
            netlist.add_flip_flop(args[0], args[1])
        else:
            netlist.add_gate(args[0], _PRIMITIVE_TO_GATE[primitive], args[1:])
    for net in outputs:
        netlist.add_output(net)
    return netlist


__all__ = ["VerilogParseError", "dumps_verilog", "dump_verilog", "loads_verilog"]
