"""Full-scan conversion and sequential-view helpers.

The paper assumes full scan access for sequential circuits (§4.1): every
flip-flop can be loaded and observed through the scan chain, so for test
generation the flip-flop outputs behave as extra (pseudo) primary inputs and
the flip-flop inputs behave as extra (pseudo) primary outputs.

:func:`full_scan` performs that transformation explicitly, returning a purely
combinational netlist on which simulation, SAT justification, rare-net
extraction and Trojan insertion all operate.

The *sequential* workload family keeps the flip-flops in place instead:
:func:`sequential_interface` describes the raw sequential netlist as a state
machine (primary inputs, state nets, next-state nets) for the multi-cycle
engine in :mod:`repro.simulation.compiled`, which steps the combinational
core cycle by cycle rather than pretending every flip-flop is controllable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Netlist


@dataclass(frozen=True)
class ScanInfo:
    """Book-keeping produced by full-scan conversion.

    Attributes:
        pseudo_inputs: flip-flop Q nets that became controllable inputs.
        pseudo_outputs: flip-flop D nets that became observable outputs.
    """

    pseudo_inputs: tuple[str, ...]
    pseudo_outputs: tuple[str, ...]


def full_scan(netlist: Netlist) -> tuple[Netlist, ScanInfo]:
    """Convert a sequential netlist into its full-scan combinational view.

    Flip-flop Q nets become primary inputs; D nets become primary outputs
    (when not already outputs).  Purely combinational netlists are returned
    as copies with empty scan info.
    """
    scanned = Netlist(f"{netlist.name}_scan")
    for net in netlist.inputs:
        scanned.add_input(net)
    pseudo_inputs = []
    pseudo_outputs = []
    for ff in netlist.flip_flops:
        scanned.add_input(ff.q)
        pseudo_inputs.append(ff.q)
    for gate in netlist.gates:
        scanned.add_gate(gate.output, gate.gate_type, gate.inputs)
    for net in netlist.outputs:
        scanned.add_output(net)
    for ff in netlist.flip_flops:
        if not scanned.is_output(ff.d):
            scanned.add_output(ff.d)
            pseudo_outputs.append(ff.d)
    return scanned, ScanInfo(tuple(pseudo_inputs), tuple(pseudo_outputs))


def ensure_combinational(netlist: Netlist) -> Netlist:
    """Return a combinational view of ``netlist`` (full-scan if sequential)."""
    if not netlist.is_sequential:
        return netlist
    scanned, _info = full_scan(netlist)
    return scanned


@dataclass(frozen=True)
class SequentialInterface:
    """State-machine view of a sequential netlist.

    Attributes:
        inputs: primary inputs — the per-cycle stimulus of a test sequence.
        state: flip-flop Q nets, in flip-flop declaration order; their values
            at cycle ``t`` are the circuit state entering that cycle.
        next_state: flip-flop D nets, aligned with ``state``; their values at
            cycle ``t`` become ``state`` at cycle ``t + 1``.
    """

    inputs: tuple[str, ...]
    state: tuple[str, ...]
    next_state: tuple[str, ...]

    @property
    def num_state_bits(self) -> int:
        """Number of flip-flops (state-register width)."""
        return len(self.state)

    def reset_assignment(self) -> dict[str, int]:
        """The all-zero reset state: every flip-flop Q at 0.

        This is the initial state the multi-cycle engine assumes unless an
        explicit initial state is supplied; it matches a synchronous reset
        that clears the whole state register.
        """
        return {q: 0 for q in self.state}


def sequential_interface(netlist: Netlist) -> SequentialInterface:
    """Describe ``netlist`` as a Mealy machine for multi-cycle simulation.

    Raises ValueError on combinational netlists — callers that can handle
    both should branch on :attr:`Netlist.is_sequential` instead of relying on
    an empty interface.
    """
    if not netlist.is_sequential:
        raise ValueError(
            f"netlist {netlist.name!r} has no flip-flops; use the "
            "combinational flow directly"
        )
    flip_flops = netlist.flip_flops
    return SequentialInterface(
        inputs=netlist.inputs,
        state=tuple(ff.q for ff in flip_flops),
        next_state=tuple(ff.d for ff in flip_flops),
    )


__all__ = [
    "ScanInfo",
    "SequentialInterface",
    "full_scan",
    "ensure_combinational",
    "sequential_interface",
]
