"""Full-scan conversion of sequential netlists.

The paper assumes full scan access for sequential circuits (§4.1): every
flip-flop can be loaded and observed through the scan chain, so for test
generation the flip-flop outputs behave as extra (pseudo) primary inputs and
the flip-flop inputs behave as extra (pseudo) primary outputs.

:func:`full_scan` performs that transformation explicitly, returning a purely
combinational netlist on which simulation, SAT justification, rare-net
extraction and Trojan insertion all operate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Netlist


@dataclass(frozen=True)
class ScanInfo:
    """Book-keeping produced by full-scan conversion.

    Attributes:
        pseudo_inputs: flip-flop Q nets that became controllable inputs.
        pseudo_outputs: flip-flop D nets that became observable outputs.
    """

    pseudo_inputs: tuple[str, ...]
    pseudo_outputs: tuple[str, ...]


def full_scan(netlist: Netlist) -> tuple[Netlist, ScanInfo]:
    """Convert a sequential netlist into its full-scan combinational view.

    Flip-flop Q nets become primary inputs; D nets become primary outputs
    (when not already outputs).  Purely combinational netlists are returned
    as copies with empty scan info.
    """
    scanned = Netlist(f"{netlist.name}_scan")
    for net in netlist.inputs:
        scanned.add_input(net)
    pseudo_inputs = []
    pseudo_outputs = []
    for ff in netlist.flip_flops:
        scanned.add_input(ff.q)
        pseudo_inputs.append(ff.q)
    for gate in netlist.gates:
        scanned.add_gate(gate.output, gate.gate_type, gate.inputs)
    for net in netlist.outputs:
        scanned.add_output(net)
    for ff in netlist.flip_flops:
        if not scanned.is_output(ff.d):
            scanned.add_output(ff.d)
            pseudo_outputs.append(ff.d)
    return scanned, ScanInfo(tuple(pseudo_inputs), tuple(pseudo_outputs))


def ensure_combinational(netlist: Netlist) -> Netlist:
    """Return a combinational view of ``netlist`` (full-scan if sequential)."""
    if not netlist.is_sequential:
        return netlist
    scanned, _info = full_scan(netlist)
    return scanned


__all__ = ["ScanInfo", "full_scan", "ensure_combinational"]
