"""Parameterised benchmark-circuit generators.

The paper evaluates on ISCAS-85/89 circuits and an OpenCores MIPS processor,
distributed as gate-level netlists we cannot redistribute.  These generators
build *structural analogues*: circuits assembled from the same kinds of
blocks (ALUs, array multipliers, address decoders, comparators, scan-converted
control FSMs) whose signal-probability profiles contain a comparable
population of rare nets, so the whole DETERRENT pipeline — rare-net
extraction, compatibility analysis, RL training, SAT pattern generation, and
Trojan coverage evaluation — runs on realistic structures at laptop scale.

Every generator is deterministic for a given seed and returns a validated
:class:`~repro.circuits.netlist.Netlist`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import blocks
from repro.circuits.builder import NetlistBuilder
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.validate import validate_netlist
from repro.utils.rng import RngLike, make_rng


def _validated(netlist: Netlist) -> Netlist:
    report = validate_netlist(netlist)
    if not report.ok:
        raise ValueError(f"generated netlist {netlist.name!r} invalid: {report.errors[:3]}")
    return netlist


def c17() -> Netlist:
    """The real ISCAS-85 c17 circuit (6 NAND gates), used widely in unit tests."""
    netlist = Netlist("c17")
    for net in ("1", "2", "3", "6", "7"):
        netlist.add_input(net)
    netlist.add_gate("10", GateType.NAND, ("1", "3"))
    netlist.add_gate("11", GateType.NAND, ("3", "6"))
    netlist.add_gate("16", GateType.NAND, ("2", "11"))
    netlist.add_gate("19", GateType.NAND, ("11", "7"))
    netlist.add_gate("22", GateType.NAND, ("10", "16"))
    netlist.add_gate("23", GateType.NAND, ("16", "19"))
    netlist.add_output("22")
    netlist.add_output("23")
    return _validated(netlist)


def alu_control_circuit(
    name: str,
    data_width: int = 8,
    decoder_bits: int = 5,
    num_comparators: int = 3,
    seed: RngLike = 0,
) -> Netlist:
    """ALU + address decoder + comparator bank (c2670/c5315-style control logic).

    The decoder outputs and the wide equality comparators are the main rare
    nets: each is an AND over ``decoder_bits`` or ``data_width`` literals and
    therefore takes value 1 with probability ``2**-bits`` under random inputs.
    """
    rng = make_rng(seed)
    builder = NetlistBuilder(name)
    a = builder.inputs("a", data_width)
    b = builder.inputs("b", data_width)
    opcode = builder.inputs("op", 2)
    address = builder.inputs("addr", decoder_bits)

    alu_out = blocks.alu(builder, a, b, opcode)
    builder.outputs(alu_out, prefix="alu")

    select_lines = blocks.decoder(builder, address)
    # Gate the ALU result with a subset of the decoder outputs so rare nets
    # propagate toward primary outputs (observable rare logic).
    chosen = rng.choice(len(select_lines), size=min(8, len(select_lines)), replace=False)
    gated = [
        builder.and_(select_lines[int(index)], alu_out[int(index) % len(alu_out)])
        for index in chosen
    ]
    builder.outputs(gated, prefix="gated")

    for comparator_index in range(num_comparators):
        pattern_bits = [
            a[i] if rng.integers(2) else builder.not_(a[i]) for i in range(data_width)
        ]
        match = builder.and_(*pattern_bits, name=f"match_{comparator_index}")
        builder.output(match)

    greater = blocks.magnitude_comparator(builder, a, b)
    equal = blocks.equality_comparator(builder, a, b)
    builder.output(greater, name="a_gt_b")
    builder.output(equal, name="a_eq_b")
    parity = blocks.parity_tree(builder, a + b)
    builder.output(parity, name="parity")
    return _validated(builder.build())


def multiplier_circuit(name: str, width: int = 6) -> Netlist:
    """Unsigned array multiplier (c6288 analogue).

    c6288 is a 16x16 array multiplier; the default 6x6 analogue keeps the same
    carry-save structure (whose high-order product and carry bits are strongly
    biased) at a size the pure-Python SAT and RL stack handles quickly.
    """
    builder = NetlistBuilder(name)
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    product = blocks.array_multiplier(builder, a, b)
    builder.outputs(product, prefix="p")
    # Overflow-style flags: AND of the top product bits (rare under random inputs).
    top = product[-4:]
    builder.output(builder.and_(*top), name="all_top_set")
    builder.output(builder.nor(*top), name="all_top_clear")
    return _validated(builder.build())


def parity_decoder_circuit(
    name: str,
    data_width: int = 12,
    decoder_bits: int = 6,
    num_match_terms: int = 6,
    seed: RngLike = 1,
) -> Netlist:
    """Wide parity/ECC-style logic with address decoding (c7552 analogue)."""
    rng = make_rng(seed)
    builder = NetlistBuilder(name)
    data = builder.inputs("d", data_width)
    mask = builder.inputs("m", data_width)
    address = builder.inputs("addr", decoder_bits)

    masked = [builder.and_(d, m) for d, m in zip(data, mask)]
    builder.output(blocks.parity_tree(builder, masked), name="parity")

    select_lines = blocks.decoder(builder, address)
    sample = rng.choice(len(select_lines), size=min(12, len(select_lines)), replace=False)
    for rank, index in enumerate(sample):
        gated = builder.and_(select_lines[int(index)], masked[rank % data_width])
        builder.output(gated, name=f"sel_{rank}")

    for term_index in range(num_match_terms):
        literal_count = int(rng.integers(max(4, data_width // 2), data_width + 1))
        chosen_bits = rng.choice(data_width, size=literal_count, replace=False)
        literals = [
            data[int(i)] if rng.integers(2) else builder.not_(data[int(i)])
            for i in chosen_bits
        ]
        builder.output(builder.and_(*literals), name=f"term_{term_index}")

    total, carry = blocks.ripple_carry_adder(builder, data[: data_width // 2], mask[: data_width // 2])
    builder.outputs(total, prefix="sum")
    builder.output(carry, name="carry")
    return _validated(builder.build())


def sequential_controller(
    name: str,
    state_bits: int = 6,
    data_width: int = 8,
    num_counters: int = 2,
    seed: RngLike = 2,
) -> Netlist:
    """Scan-style sequential controller (s13207/s15850/s35932 analogue).

    A bank of flip-flops implements a state register and counters; the next-
    state logic contains one-hot state decoders and terminal-count detectors,
    which become rare nets once the circuit is viewed through full scan.
    """
    rng = make_rng(seed)
    builder = NetlistBuilder(name)
    data = builder.inputs("din", data_width)
    control = builder.inputs("ctl", 3)

    # State register: the Q nets are the current state, the D nets carry the
    # next-state logic built below.  Seeding the register from the control
    # inputs keeps every net driven while the feedback path is constructed.
    seed_bits = [builder.buf(control[i % len(control)]) for i in range(state_bits)]
    current_state = [
        builder.flip_flop(seed_bits[i], q=f"state_q{i}") for i in range(state_bits)
    ]

    one_hot = blocks.decoder(builder, current_state[: min(state_bits, 5)])
    sample = rng.choice(len(one_hot), size=min(10, len(one_hot)), replace=False)
    for rank, index in enumerate(sample):
        builder.output(builder.and_(one_hot[int(index)], data[rank % data_width]),
                       name=f"state_act_{rank}")

    # Next-state logic: XOR mix of state and data, registered.
    for i in range(state_bits):
        next_bit = builder.xor(current_state[i], data[i % data_width])
        gated = builder.mux2(control[0], current_state[i], next_bit)
        builder.flip_flop(gated, q=f"state_next_q{i}")
        builder.output(gated, name=f"ns_{i}")

    # Counters with terminal-count / all-zero detection (rare strobes).
    for counter_index in range(num_counters):
        counter_q = [
            builder.flip_flop(data[(counter_index + i) % data_width], q=f"cnt{counter_index}_q{i}")
            for i in range(data_width)
        ]
        incremented, _carry = blocks.ripple_carry_adder(builder, counter_q, counter_q)
        for bit_index, bit in enumerate(incremented):
            builder.flip_flop(bit, q=f"cnt{counter_index}_next_q{bit_index}")
        builder.output(builder.and_(*counter_q, name=f"tc_{counter_index}"))
        builder.output(builder.nor(*counter_q, name=f"zero_{counter_index}"))

    reversed_data = list(reversed(data))
    builder.output(
        blocks.equality_comparator(builder, data, reversed_data), name="palindrome"
    )
    greater = blocks.magnitude_comparator(builder, data[: data_width // 2], data[data_width // 2:])
    builder.output(greater, name="hi_gt_lo")
    return _validated(builder.build())


def mips16_circuit(
    name: str = "mips16_like",
    data_width: int = 8,
    num_registers: int = 4,
    seed: RngLike = 3,
) -> Netlist:
    """Gate-level single-cycle MIPS-style datapath slice (MIPS analogue).

    Contains an opcode decoder, register-address decoders, an ALU, a result
    write-back mux tree and branch-condition comparators.  The opcode and
    register decoders give the large population of rare nets that makes the
    real MIPS benchmark challenging (1005 rare nets in the paper).
    """
    rng = make_rng(seed)
    builder = NetlistBuilder(name)
    opcode = builder.inputs("opcode", 4)
    rs_addr = builder.inputs("rs", 2 if num_registers <= 4 else 3)
    rt_addr = builder.inputs("rt", 2 if num_registers <= 4 else 3)
    immediate = builder.inputs("imm", data_width)
    reg_data = [builder.inputs(f"r{i}", data_width) for i in range(num_registers)]

    opcode_lines = blocks.decoder(builder, opcode)
    rs_lines = blocks.decoder(builder, rs_addr)[:num_registers]
    rt_lines = blocks.decoder(builder, rt_addr)[:num_registers]

    # Register-file read ports as AND-OR mux trees driven by one-hot decoders.
    def read_port(select_lines: list[str]) -> list[str]:
        port = []
        for bit in range(data_width):
            terms = [
                builder.and_(select_lines[reg], reg_data[reg][bit])
                for reg in range(num_registers)
            ]
            port.append(builder.or_(*terms))
        return port

    rs_value = read_port(rs_lines)
    rt_value = read_port(rt_lines)

    use_immediate = builder.or_(opcode_lines[1], opcode_lines[5], opcode_lines[9])
    operand_b = blocks.mux_bus(builder, use_immediate, rt_value, immediate)
    alu_out = blocks.alu(builder, rs_value, operand_b, opcode[:2])
    builder.outputs(alu_out, prefix="alu")

    # Branch conditions and rare control strobes.
    builder.output(blocks.equality_comparator(builder, rs_value, rt_value), name="beq_taken")
    builder.output(blocks.magnitude_comparator(builder, rs_value, rt_value), name="bgt_taken")
    zero = builder.nor(*alu_out, name="alu_zero")
    builder.output(zero)
    overflow = builder.and_(*alu_out[-3:], name="alu_saturate")
    builder.output(overflow)
    for index in range(0, len(opcode_lines), 3):
        strobe = builder.and_(opcode_lines[index], zero if index % 2 else overflow)
        builder.output(strobe, name=f"ctl_strobe_{index}")

    # Write-back select logic gated by random opcode lines (biased control nets).
    sample = rng.choice(len(opcode_lines), size=6, replace=False)
    for rank, line in enumerate(sample):
        builder.output(
            builder.and_(opcode_lines[int(line)], alu_out[rank % data_width]),
            name=f"wb_{rank}",
        )
    return _validated(builder.build())


def random_logic_circuit(
    name: str,
    num_inputs: int = 16,
    num_gates: int = 300,
    num_outputs: int = 12,
    and_bias: float = 0.55,
    seed: RngLike = 4,
) -> Netlist:
    """Random levelised DAG with a controllable bias toward AND/NOR gates.

    Raising ``and_bias`` skews signal probabilities towards 0, producing more
    rare nets; the property-based tests and a few experiments use this
    generator to get circuits with tunable rare-net density.
    """
    if num_inputs < 2 or num_gates < 1:
        raise ValueError("random_logic_circuit needs at least 2 inputs and 1 gate")
    rng = make_rng(seed)
    builder = NetlistBuilder(name)
    nets = builder.inputs("x", num_inputs)
    biased = [GateType.AND, GateType.NOR]
    neutral = [GateType.OR, GateType.NAND, GateType.XOR, GateType.XNOR]
    for _ in range(num_gates):
        fanin = int(rng.integers(2, 5))
        sources = [nets[int(i)] for i in rng.choice(len(nets), size=fanin, replace=False)]
        if rng.random() < and_bias:
            gate_type = biased[int(rng.integers(len(biased)))]
        else:
            gate_type = neutral[int(rng.integers(len(neutral)))]
        nets.append(builder.gate(gate_type, sources))
    # Most recently created nets become outputs so deep (often rare) logic is observable.
    for index, net in enumerate(nets[-num_outputs:]):
        builder.output(net, name=f"y[{index}]")
    return _validated(builder.build())


__all__ = [
    "c17",
    "alu_control_circuit",
    "multiplier_circuit",
    "parity_decoder_circuit",
    "sequential_controller",
    "mips16_circuit",
    "random_logic_circuit",
]
