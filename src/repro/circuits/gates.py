"""Primitive gate types and their Boolean semantics.

Gates are the only combinational primitives in the netlist model.  Sequential
elements (D flip-flops) are represented separately by the netlist and are
removed by full-scan conversion before any analysis, mirroring the full scan
access assumption of the paper (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class GateType(str, Enum):
    """Supported combinational gate types."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"

    @property
    def is_inverting(self) -> bool:
        """True for gates whose output is the complement of the base function."""
        return self in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)

    @property
    def min_inputs(self) -> int:
        """Minimum legal fan-in for this gate type."""
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 2

    @property
    def max_inputs(self) -> int | None:
        """Maximum legal fan-in, or None for unbounded."""
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return None


@dataclass(frozen=True)
class Gate:
    """A single combinational gate.

    Attributes:
        output: name of the net driven by this gate.
        gate_type: the Boolean function computed.
        inputs: names of the input nets, in order.
    """

    output: str
    gate_type: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        n_inputs = len(self.inputs)
        if n_inputs < self.gate_type.min_inputs:
            raise ValueError(
                f"{self.gate_type.value} gate driving {self.output!r} needs at "
                f"least {self.gate_type.min_inputs} inputs, got {n_inputs}"
            )
        max_inputs = self.gate_type.max_inputs
        if max_inputs is not None and n_inputs > max_inputs:
            raise ValueError(
                f"{self.gate_type.value} gate driving {self.output!r} accepts at "
                f"most {max_inputs} inputs, got {n_inputs}"
            )

    @property
    def fanin(self) -> int:
        """Number of inputs."""
        return len(self.inputs)


def evaluate_gate(gate_type: GateType, values: list[int] | tuple[int, ...]) -> int:
    """Evaluate a gate on scalar 0/1 input values.

    This scalar evaluator is the reference semantics; the bit-parallel
    simulator in :mod:`repro.simulation.logic_sim` implements the same
    functions on packed 64-bit words and is property-tested against this one.
    """
    if not values:
        raise ValueError("gate evaluation requires at least one input value")
    if gate_type is GateType.AND:
        return int(all(values))
    if gate_type is GateType.NAND:
        return int(not all(values))
    if gate_type is GateType.OR:
        return int(any(values))
    if gate_type is GateType.NOR:
        return int(not any(values))
    if gate_type is GateType.XOR:
        return int(sum(values) % 2)
    if gate_type is GateType.XNOR:
        return int((sum(values) + 1) % 2)
    if gate_type is GateType.NOT:
        return int(not values[0])
    if gate_type is GateType.BUF:
        return int(bool(values[0]))
    raise ValueError(f"unknown gate type: {gate_type!r}")
