"""Benchmark registry: the suite of circuits used by the experiments.

Each entry is a laptop-scale structural analogue of one of the paper's
benchmarks (see DESIGN.md §1 for the substitution rationale) plus the paper's
reported metadata (gate count, number of rare nets at threshold 0.1) so the
experiment reports can show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits import generators
from repro.circuits.netlist import Netlist
from repro.circuits.scan import ensure_combinational


@dataclass(frozen=True)
class BenchmarkEntry:
    """One benchmark circuit and the paper's reported statistics for it."""

    name: str
    paper_name: str
    build: Callable[[], Netlist]
    paper_num_gates: int
    paper_num_rare_nets: int
    sequential: bool = False
    description: str = ""


def _entries() -> dict[str, BenchmarkEntry]:
    return {
        "c17": BenchmarkEntry(
            name="c17",
            paper_name="c17",
            build=generators.c17,
            paper_num_gates=6,
            paper_num_rare_nets=0,
            description="Real ISCAS-85 c17; used in unit tests and the quickstart.",
        ),
        "c2670_like": BenchmarkEntry(
            name="c2670_like",
            paper_name="c2670",
            build=lambda: generators.alu_control_circuit(
                "c2670_like", data_width=8, decoder_bits=5, num_comparators=3, seed=2670
            ),
            paper_num_gates=775,
            paper_num_rare_nets=43,
            description="ALU + interrupt-style decoder and comparator bank.",
        ),
        "c5315_like": BenchmarkEntry(
            name="c5315_like",
            paper_name="c5315",
            build=lambda: generators.alu_control_circuit(
                "c5315_like", data_width=10, decoder_bits=6, num_comparators=5, seed=5315
            ),
            paper_num_gates=2307,
            paper_num_rare_nets=165,
            description="Wider ALU/selector with larger decoder (more rare nets).",
        ),
        "c6288_like": BenchmarkEntry(
            name="c6288_like",
            paper_name="c6288",
            build=lambda: generators.multiplier_circuit("c6288_like", width=6),
            paper_num_gates=2416,
            paper_num_rare_nets=186,
            description="Array multiplier (same structure as the 16x16 c6288).",
        ),
        "c7552_like": BenchmarkEntry(
            name="c7552_like",
            paper_name="c7552",
            build=lambda: generators.parity_decoder_circuit(
                "c7552_like", data_width=12, decoder_bits=6, num_match_terms=8, seed=7552
            ),
            paper_num_gates=3513,
            paper_num_rare_nets=282,
            description="Parity/ECC datapath with address decoding and match terms.",
        ),
        "s13207_like": BenchmarkEntry(
            name="s13207_like",
            paper_name="s13207",
            build=lambda: generators.sequential_controller(
                "s13207_like", state_bits=6, data_width=8, num_counters=2, seed=13207
            ),
            paper_num_gates=1801,
            paper_num_rare_nets=604,
            sequential=True,
            description="Scan-converted FSM + counters with terminal-count strobes.",
        ),
        "s15850_like": BenchmarkEntry(
            name="s15850_like",
            paper_name="s15850",
            build=lambda: generators.sequential_controller(
                "s15850_like", state_bits=7, data_width=10, num_counters=2, seed=15850
            ),
            paper_num_gates=2412,
            paper_num_rare_nets=649,
            sequential=True,
            description="Larger scan-converted controller.",
        ),
        "s35932_like": BenchmarkEntry(
            name="s35932_like",
            paper_name="s35932",
            build=lambda: generators.sequential_controller(
                "s35932_like", state_bits=8, data_width=12, num_counters=3, seed=35932
            ),
            paper_num_gates=4736,
            paper_num_rare_nets=1151,
            sequential=True,
            description="Widest scan-converted controller in the suite.",
        ),
        "mips16_like": BenchmarkEntry(
            name="mips16_like",
            paper_name="MIPS",
            build=lambda: generators.mips16_circuit(
                "mips16_like", data_width=8, num_registers=4, seed=16
            ),
            paper_num_gates=23511,
            paper_num_rare_nets=1005,
            description="Single-cycle MIPS-style datapath slice with opcode decoding.",
        ),
    }


_REGISTRY = _entries()

#: Benchmarks used for the paper's Table 2 (everything except c17).
TABLE2_BENCHMARKS = (
    "c2670_like",
    "c5315_like",
    "c6288_like",
    "c7552_like",
    "s13207_like",
    "s15850_like",
    "s35932_like",
    "mips16_like",
)


def benchmark_suite() -> tuple[str, ...]:
    """Names of all registered benchmarks."""
    return tuple(_REGISTRY)


def register_benchmark(entry: BenchmarkEntry, replace: bool = False) -> BenchmarkEntry:
    """Add ``entry`` to the registry (process-local).

    This is how externally supplied circuits — e.g. a ``.bench`` netlist
    submitted to the detection service — join the experiment harness grid:
    register the parsed netlist under a deterministic name, then build
    cells with ``designs=[that name]``.  ``replace=True`` allows
    re-registration under the same name (idempotent service workers);
    without it a duplicate name raises.
    """
    if entry.name in _REGISTRY and not replace:
        raise ValueError(f"benchmark {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def register_netlist(
    netlist: Netlist, name: str, *, description: str = ""
) -> BenchmarkEntry:
    """Register a concrete :class:`Netlist` as a loadable benchmark.

    Sequentiality is detected from the netlist itself (any flip-flops), and
    the paper-statistics columns are zeroed — submitted circuits have no
    paper row to compare against.  Idempotent: re-registering the same name
    simply replaces the entry.
    """
    return register_benchmark(
        BenchmarkEntry(
            name=name,
            paper_name=name,
            build=lambda: netlist,
            paper_num_gates=0,
            paper_num_rare_nets=0,
            sequential=netlist.is_sequential,
            description=description or "externally submitted netlist",
        ),
        replace=True,
    )


def benchmark_entry(name: str) -> BenchmarkEntry:
    """Return the registry entry for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(_REGISTRY)
        raise KeyError(f"unknown benchmark {name!r}; available: {available}") from None


def load_benchmark(name: str, *, combinational_view: bool = True) -> Netlist:
    """Build a benchmark circuit by name.

    With ``combinational_view=True`` (the default) sequential benchmarks are
    returned after full-scan conversion, matching the paper's full-scan-access
    assumption; pass False to obtain the raw sequential netlist.
    """
    entry = benchmark_entry(name)
    netlist = entry.build()
    if combinational_view:
        return ensure_combinational(netlist)
    return netlist


__all__ = [
    "BenchmarkEntry",
    "TABLE2_BENCHMARKS",
    "benchmark_suite",
    "benchmark_entry",
    "load_benchmark",
    "register_benchmark",
    "register_netlist",
]
