"""Minimal neural-network components in numpy: MLPs and the Adam optimiser.

Only what PPO needs is implemented: fully-connected layers with tanh hidden
activations, manual backpropagation, and Adam.  Shapes follow the batch-first
convention (``(batch, features)``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, make_rng


class Mlp:
    """Fully-connected network with tanh hidden layers and a linear output."""

    def __init__(
        self,
        input_dim: int,
        hidden_sizes: tuple[int, ...],
        output_dim: int,
        seed: RngLike = None,
    ) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        rng = make_rng(seed)
        sizes = [input_dim, *hidden_sizes, output_dim]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._cache: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass; caches activations for a subsequent backward pass."""
        activations = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        self._cache = [activations]
        for layer_index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre_activation = activations @ weight + bias
            if layer_index < len(self.weights) - 1:
                activations = np.tanh(pre_activation)
            else:
                activations = pre_activation
            self._cache.append(activations)
        return activations

    def backward(self, grad_output: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Backpropagate ``d loss / d output``; returns (weight grads, bias grads)."""
        if len(self._cache) != len(self.weights) + 1:
            raise RuntimeError("backward called without a preceding forward pass")
        grad = np.asarray(grad_output, dtype=np.float64)
        weight_grads: list[np.ndarray] = [np.zeros_like(w) for w in self.weights]
        bias_grads: list[np.ndarray] = [np.zeros_like(b) for b in self.biases]
        for layer_index in reversed(range(len(self.weights))):
            layer_input = self._cache[layer_index]
            layer_output = self._cache[layer_index + 1]
            if layer_index < len(self.weights) - 1:
                grad = grad * (1.0 - layer_output**2)
            weight_grads[layer_index] = layer_input.T @ grad
            bias_grads[layer_index] = grad.sum(axis=0)
            if layer_index > 0:
                grad = grad @ self.weights[layer_index].T
        return weight_grads, bias_grads

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (weights then biases, per layer)."""
        params: list[np.ndarray] = []
        for weight, bias in zip(self.weights, self.biases):
            params.append(weight)
            params.append(bias)
        return params

    def apply_gradients(
        self,
        weight_grads: list[np.ndarray],
        bias_grads: list[np.ndarray],
    ) -> list[np.ndarray]:
        """Interleave gradients in the same order as :attr:`parameters`."""
        grads: list[np.ndarray] = []
        for weight_grad, bias_grad in zip(weight_grads, bias_grads):
            grads.append(weight_grad)
            grads.append(bias_grad)
        return grads


class Adam:
    """Adam optimiser over a list of parameter arrays (updated in place)."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        learning_rate: float = 3e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment = [np.zeros_like(p) for p in parameters]
        self._second_moment = [np.zeros_like(p) for p in parameters]
        self._step_count = 0

    def step(self, gradients: list[np.ndarray]) -> None:
        """Apply one Adam update given gradients aligned with ``parameters``."""
        if len(gradients) != len(self.parameters):
            raise ValueError(
                f"expected {len(self.parameters)} gradient arrays, got {len(gradients)}"
            )
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for index, (parameter, gradient) in enumerate(zip(self.parameters, gradients)):
            first = self._first_moment[index]
            second = self._second_moment[index]
            first *= self.beta1
            first += (1.0 - self.beta1) * gradient
            second *= self.beta2
            second += (1.0 - self.beta2) * gradient**2
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter -= self.learning_rate * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )


def clip_gradients(gradients: list[np.ndarray], max_norm: float) -> list[np.ndarray]:
    """Globally clip gradients to ``max_norm`` (no-op if already within)."""
    total = np.sqrt(sum(float(np.sum(g**2)) for g in gradients))
    if total <= max_norm or total == 0.0:
        return gradients
    scale = max_norm / total
    return [g * scale for g in gradients]


__all__ = ["Mlp", "Adam", "clip_gradients"]
