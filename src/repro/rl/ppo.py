"""Proximal Policy Optimization (clipped surrogate) in numpy.

The trainer follows the standard PPO recipe [Schulman et al., 2017]:

1. roll out ``num_steps`` transitions from a vectorised environment,
2. compute GAE(λ) advantages,
3. run several epochs of minibatch updates on the clipped surrogate objective
   with a value-function loss and an entropy bonus,

with the composite loss of the paper (§3.4): ``l = l_pi + c_ent * l_ent +
c_value * l_value`` where ``l_ent`` is the (negative) entropy.  Raising
``c_ent`` and the GAE λ is exactly the "boosted exploration" configuration the
paper uses for circuits such as c2670.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rl.buffer import RolloutBuffer
from repro.rl.env import VectorizedEnvironment
from repro.rl.nn import Adam, clip_gradients
from repro.rl.policy import MaskedCategoricalPolicy
from repro.utils.rng import RngLike, make_rng
from repro.utils.timing import Stopwatch


@dataclass
class PpoConfig:
    """Hyper-parameters of the PPO trainer.

    Defaults match the paper's statement that PPO is used "with default
    parameters unless specified otherwise"; ``entropy_coef`` and
    ``gae_lambda`` are the two knobs §3.4 overrides for boosted exploration.
    """

    num_steps: int = 128
    num_epochs: int = 4
    minibatch_size: int = 64
    learning_rate: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    max_grad_norm: float = 0.5
    hidden_sizes: tuple[int, ...] = (64, 64)
    normalize_advantages: bool = True

    def boosted_exploration(self) -> "PpoConfig":
        """Copy of this config with the paper's boosted-exploration settings."""
        return PpoConfig(
            num_steps=self.num_steps,
            num_epochs=self.num_epochs,
            minibatch_size=self.minibatch_size,
            learning_rate=self.learning_rate,
            gamma=self.gamma,
            gae_lambda=0.99,
            clip_range=self.clip_range,
            entropy_coef=1.0,
            value_coef=self.value_coef,
            max_grad_norm=self.max_grad_norm,
            hidden_sizes=self.hidden_sizes,
            normalize_advantages=self.normalize_advantages,
        )


@dataclass
class TrainingSummary:
    """Aggregated statistics of one training run."""

    total_steps: int = 0
    total_episodes: int = 0
    episode_rewards: list[float] = field(default_factory=list)
    episode_infos: list[dict] = field(default_factory=list)
    loss_history: list[float] = field(default_factory=list)
    policy_loss_history: list[float] = field(default_factory=list)
    value_loss_history: list[float] = field(default_factory=list)
    entropy_history: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def steps_per_minute(self) -> float:
        """Environment steps per minute (Table 1 metric)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return 60.0 * self.total_steps / self.elapsed_seconds

    @property
    def episodes_per_minute(self) -> float:
        """Episodes per minute (Table 1 / Figure 2 metric)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return 60.0 * self.total_episodes / self.elapsed_seconds

    @property
    def mean_episode_reward(self) -> float:
        """Average undiscounted episode return."""
        if not self.episode_rewards:
            return 0.0
        return float(np.mean(self.episode_rewards))


class PpoTrainer:
    """PPO training loop over a vectorised environment."""

    def __init__(
        self,
        environments: VectorizedEnvironment,
        config: PpoConfig | None = None,
        seed: RngLike = None,
    ) -> None:
        self.envs = environments
        self.config = config or PpoConfig()
        self._rng = make_rng(seed)
        self.policy = MaskedCategoricalPolicy(
            observation_dim=environments.observation_dim,
            num_actions=environments.num_actions,
            hidden_sizes=self.config.hidden_sizes,
            seed=self._rng,
        )
        parameters = self.policy.policy_net.parameters + self.policy.value_net.parameters
        self._optimizer = Adam(parameters, learning_rate=self.config.learning_rate)
        self._num_policy_params = len(self.policy.policy_net.parameters)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, total_steps: int, progress_callback=None) -> TrainingSummary:
        """Run PPO for approximately ``total_steps`` environment steps.

        Args:
            total_steps: target number of (vectorised) environment steps.
            progress_callback: optional callable invoked after every rollout
                with the running :class:`TrainingSummary`.
        """
        config = self.config
        summary = TrainingSummary()
        stopwatch = Stopwatch().start()
        num_envs = len(self.envs)
        buffer = RolloutBuffer(
            config.num_steps, num_envs, self.envs.observation_dim, self.envs.num_actions
        )
        observations = self.envs.reset()
        episode_returns = np.zeros(num_envs)

        while summary.total_steps < total_steps:
            buffer.reset()
            for _ in range(config.num_steps):
                masks = self.envs.action_masks()
                output = self.policy.act(observations, masks)
                values = self.policy.value(observations)
                next_observations, rewards, dones, infos = self.envs.step(output.actions)
                buffer.add(
                    observations, output.actions, masks, rewards, dones,
                    output.log_probs, values,
                )
                episode_returns += rewards
                for env_index, done in enumerate(dones):
                    if done:
                        summary.total_episodes += 1
                        summary.episode_rewards.append(float(episode_returns[env_index]))
                        summary.episode_infos.append(infos[env_index])
                        episode_returns[env_index] = 0.0
                observations = next_observations
                summary.total_steps += num_envs
            last_values = self.policy.value(observations)
            advantages, returns = buffer.compute_returns(
                last_values, config.gamma, config.gae_lambda
            )
            batch = buffer.batch(advantages, returns)
            self._update(batch, summary)
            if progress_callback is not None:
                progress_callback(summary)

        summary.elapsed_seconds = stopwatch.stop()
        return summary

    # ------------------------------------------------------------------
    # PPO update
    # ------------------------------------------------------------------
    def _update(self, batch, summary: TrainingSummary) -> None:
        config = self.config
        batch_size = batch.observations.shape[0]
        advantages = batch.advantages
        if config.normalize_advantages and batch_size > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        indices = np.arange(batch_size)
        for _ in range(config.num_epochs):
            self._rng.shuffle(indices)
            for start in range(0, batch_size, config.minibatch_size):
                selection = indices[start:start + config.minibatch_size]
                losses = self._update_minibatch(batch, advantages, selection)
                summary.loss_history.append(losses[0])
                summary.policy_loss_history.append(losses[1])
                summary.value_loss_history.append(losses[2])
                summary.entropy_history.append(losses[3])

    def _update_minibatch(
        self, batch, advantages: np.ndarray, selection: np.ndarray
    ) -> tuple[float, float, float, float]:
        config = self.config
        observations = batch.observations[selection]
        actions = batch.actions[selection]
        masks = batch.masks[selection]
        old_log_probs = batch.log_probs[selection]
        advantage = advantages[selection]
        returns = batch.returns[selection]
        count = len(selection)

        log_probs, entropies, probabilities = self.policy.evaluate_actions(
            observations, actions, masks
        )
        ratios = np.exp(log_probs - old_log_probs)
        clipped_ratios = np.clip(ratios, 1.0 - config.clip_range, 1.0 + config.clip_range)
        unclipped_objective = ratios * advantage
        clipped_objective = clipped_ratios * advantage
        policy_loss = -float(np.minimum(unclipped_objective, clipped_objective).mean())
        entropy = float(entropies.mean())

        # Gradient of the policy part of the loss with respect to the logits.
        batch_rows = np.arange(count)
        one_hot = np.zeros_like(probabilities)
        one_hot[batch_rows, actions] = 1.0
        dlogp_dlogits = one_hot - probabilities
        unclipped_active = unclipped_objective <= clipped_objective
        dloss_dlogp = np.where(unclipped_active, -advantage * ratios, 0.0) / count
        grad_logits = dlogp_dlogits * dloss_dlogp[:, None]

        # Entropy bonus: loss term is -entropy_coef * H, dH/dlogit = -p (log p + H).
        log_probabilities = np.log(np.clip(probabilities, 1e-12, None))
        dentropy_dlogits = -probabilities * (log_probabilities + entropies[:, None])
        grad_logits += -config.entropy_coef * dentropy_dlogits / count

        policy_weight_grads, policy_bias_grads = self.policy.policy_net.backward(grad_logits)
        policy_grads = self.policy.policy_net.apply_gradients(
            policy_weight_grads, policy_bias_grads
        )

        # Value loss: c_v * MSE(value, return).
        values = self.policy.value_net.forward(observations)[:, 0]
        value_error = values - returns
        value_loss = float(np.mean(value_error**2))
        grad_values = (2.0 * config.value_coef * value_error / count)[:, None]
        value_weight_grads, value_bias_grads = self.policy.value_net.backward(grad_values)
        value_grads = self.policy.value_net.apply_gradients(value_weight_grads, value_bias_grads)

        gradients = clip_gradients(policy_grads + value_grads, config.max_grad_norm)
        self._optimizer.step(gradients)

        total_loss = policy_loss + config.entropy_coef * (-entropy) + config.value_coef * value_loss
        return total_loss, policy_loss, value_loss, entropy


__all__ = ["PpoConfig", "PpoTrainer", "TrainingSummary"]
