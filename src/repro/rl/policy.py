"""Masked categorical policy and value function.

The policy network maps an observation to logits over the discrete action
space; invalid actions are masked by driving their logits to -inf before the
softmax, which implements the paper's state-dependent action masking (§3.3)
without ever sampling a masked action.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.nn import Mlp
from repro.utils.rng import RngLike, make_rng

_MASK_VALUE = -1e9


@dataclass
class PolicyOutput:
    """Result of evaluating the policy on a batch of observations."""

    actions: np.ndarray
    log_probs: np.ndarray
    entropies: np.ndarray
    probabilities: np.ndarray


def masked_softmax(logits: np.ndarray, masks: np.ndarray | None) -> np.ndarray:
    """Softmax with invalid entries forced to probability zero.

    ``masks`` uses 1 for valid actions and 0 for invalid ones.  Rows whose
    mask is all-zero raise, because sampling from them is undefined.
    """
    logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
    if masks is not None:
        masks = np.atleast_2d(np.asarray(masks, dtype=np.float64))
        if masks.shape != logits.shape:
            raise ValueError(f"mask shape {masks.shape} does not match logits {logits.shape}")
        if np.any(masks.sum(axis=1) == 0):
            raise ValueError("at least one action must be valid in every state")
        logits = np.where(masks > 0, logits, _MASK_VALUE)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    if masks is not None:
        exponentials = exponentials * (masks > 0)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class MaskedCategoricalPolicy:
    """Actor-critic pair: a policy MLP and a value MLP with shared interface."""

    def __init__(
        self,
        observation_dim: int,
        num_actions: int,
        hidden_sizes: tuple[int, ...] = (64, 64),
        seed: RngLike = None,
    ) -> None:
        rng = make_rng(seed)
        self.observation_dim = observation_dim
        self.num_actions = num_actions
        self.policy_net = Mlp(observation_dim, hidden_sizes, num_actions, seed=rng)
        self.value_net = Mlp(observation_dim, hidden_sizes, 1, seed=rng)
        self._rng = rng

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def action_probabilities(
        self, observations: np.ndarray, masks: np.ndarray | None = None
    ) -> np.ndarray:
        """Action distribution for each observation row."""
        logits = self.policy_net.forward(observations)
        return masked_softmax(logits, masks)

    def act(
        self,
        observations: np.ndarray,
        masks: np.ndarray | None = None,
        deterministic: bool = False,
    ) -> PolicyOutput:
        """Sample (or argmax-select) actions for a batch of observations."""
        probabilities = self.action_probabilities(observations, masks)
        batch_size = probabilities.shape[0]
        if deterministic:
            actions = probabilities.argmax(axis=1)
        else:
            cumulative = probabilities.cumsum(axis=1)
            draws = self._rng.random((batch_size, 1))
            actions = (draws < cumulative).argmax(axis=1)
        chosen = probabilities[np.arange(batch_size), actions]
        log_probs = np.log(np.clip(chosen, 1e-12, None))
        entropies = -(probabilities * np.log(np.clip(probabilities, 1e-12, None))).sum(axis=1)
        return PolicyOutput(
            actions=actions,
            log_probs=log_probs,
            entropies=entropies,
            probabilities=probabilities,
        )

    def value(self, observations: np.ndarray) -> np.ndarray:
        """State-value estimates, shape ``(batch,)``."""
        return self.value_net.forward(observations)[:, 0]

    # ------------------------------------------------------------------
    # Training-time evaluation (keeps caches for backprop)
    # ------------------------------------------------------------------
    def evaluate_actions(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        masks: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (log_probs, entropies, probabilities) for given actions.

        The policy network's forward cache is left in place so the PPO update
        can backpropagate through this evaluation.
        """
        logits = self.policy_net.forward(observations)
        probabilities = masked_softmax(logits, masks)
        batch = np.arange(probabilities.shape[0])
        chosen = probabilities[batch, actions]
        log_probs = np.log(np.clip(chosen, 1e-12, None))
        entropies = -(probabilities * np.log(np.clip(probabilities, 1e-12, None))).sum(axis=1)
        return log_probs, entropies, probabilities


__all__ = ["MaskedCategoricalPolicy", "PolicyOutput", "masked_softmax"]
