"""Environment interface and a synchronous vectorised wrapper.

The interface intentionally mirrors the Gym API the paper's PyTorch agent
would have used (``reset`` / ``step``) and adds ``action_mask`` for invalid-
action masking.  :class:`VectorizedEnvironment` is the equivalent of the
16-process vectorised environment the paper uses for the MIPS benchmark
(§4.1): it steps several independent environment copies per policy query so
the expensive parts (reward computation) amortise across parallel episodes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass
class StepResult:
    """Outcome of one environment step."""

    observation: np.ndarray
    reward: float
    done: bool
    info: dict


class Environment(ABC):
    """Discrete-action environment with observation vectors and action masks."""

    @property
    @abstractmethod
    def observation_dim(self) -> int:
        """Length of the observation vector."""

    @property
    @abstractmethod
    def num_actions(self) -> int:
        """Number of discrete actions."""

    @abstractmethod
    def reset(self) -> np.ndarray:
        """Start a new episode and return the initial observation."""

    @abstractmethod
    def step(self, action: int) -> StepResult:
        """Apply ``action`` and return the transition result."""

    def action_mask(self) -> np.ndarray:
        """Valid-action mask for the current state (1 = valid). Default: all valid."""
        return np.ones(self.num_actions, dtype=np.float64)


class VectorizedEnvironment:
    """Synchronous batch of independent environment instances.

    Episodes auto-reset: when an instance reports ``done`` its next
    observation is the reset observation of a fresh episode, so the PPO
    rollout never stalls.
    """

    def __init__(self, environments: list[Environment]) -> None:
        if not environments:
            raise ValueError("at least one environment is required")
        dims = {env.observation_dim for env in environments}
        actions = {env.num_actions for env in environments}
        if len(dims) != 1 or len(actions) != 1:
            raise ValueError("all environments must share observation/action spaces")
        self.environments = environments
        self.observation_dim = dims.pop()
        self.num_actions = actions.pop()

    def __len__(self) -> int:
        return len(self.environments)

    def reset(self) -> np.ndarray:
        """Reset every instance; returns observations of shape (n_envs, obs_dim)."""
        return np.stack([env.reset() for env in self.environments])

    def action_masks(self) -> np.ndarray:
        """Stack of per-instance action masks, shape (n_envs, num_actions)."""
        return np.stack([env.action_mask() for env in self.environments])

    def step(self, actions: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[dict]]:
        """Step every instance; returns (observations, rewards, dones, infos)."""
        if len(actions) != len(self.environments):
            raise ValueError(
                f"expected {len(self.environments)} actions, got {len(actions)}"
            )
        observations = np.zeros((len(self.environments), self.observation_dim))
        rewards = np.zeros(len(self.environments))
        dones = np.zeros(len(self.environments), dtype=bool)
        infos: list[dict] = []
        for index, (env, action) in enumerate(zip(self.environments, actions)):
            result = env.step(int(action))
            rewards[index] = result.reward
            dones[index] = result.done
            infos.append(result.info)
            observations[index] = env.reset() if result.done else result.observation
        return observations, rewards, dones, infos


__all__ = ["Environment", "StepResult", "VectorizedEnvironment"]
