"""Reinforcement-learning substrate: numpy PPO with invalid-action masking.

The paper trains its agent with Proximal Policy Optimization (PPO) [Schulman
et al., 2017] implemented on PyTorch; this subpackage provides an equivalent
PPO implementation in pure numpy, including the two "boosted exploration"
knobs the paper tunes in §3.4 (entropy-loss coefficient and the GAE smoothing
parameter λ) and the state-dependent action masking of §3.3.
"""

from repro.rl.nn import Mlp, Adam
from repro.rl.policy import MaskedCategoricalPolicy
from repro.rl.env import Environment, VectorizedEnvironment
from repro.rl.buffer import RolloutBuffer
from repro.rl.ppo import PpoConfig, PpoTrainer, TrainingSummary

__all__ = [
    "Mlp",
    "Adam",
    "MaskedCategoricalPolicy",
    "Environment",
    "VectorizedEnvironment",
    "RolloutBuffer",
    "PpoConfig",
    "PpoTrainer",
    "TrainingSummary",
]
