"""Rollout storage and Generalised Advantage Estimation (GAE).

PPO collects a fixed number of steps from the (vectorised) environment, then
computes per-step advantages and value targets with GAE(λ) before running the
clipped-surrogate updates.  The λ parameter is one of the two "boosted
exploration" knobs of the paper (§3.4): λ = 0.99 increases the variance of
the advantage estimates, which in turn keeps the policy stochastic for longer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RolloutBatch:
    """Flattened rollout data ready for minibatch updates."""

    observations: np.ndarray
    actions: np.ndarray
    masks: np.ndarray
    log_probs: np.ndarray
    advantages: np.ndarray
    returns: np.ndarray
    values: np.ndarray


class RolloutBuffer:
    """Fixed-horizon rollout storage for a vectorised environment."""

    def __init__(self, num_steps: int, num_envs: int, observation_dim: int, num_actions: int) -> None:
        if num_steps <= 0 or num_envs <= 0:
            raise ValueError("num_steps and num_envs must be positive")
        self.num_steps = num_steps
        self.num_envs = num_envs
        self.observations = np.zeros((num_steps, num_envs, observation_dim))
        self.actions = np.zeros((num_steps, num_envs), dtype=np.int64)
        self.masks = np.ones((num_steps, num_envs, num_actions))
        self.rewards = np.zeros((num_steps, num_envs))
        self.dones = np.zeros((num_steps, num_envs), dtype=bool)
        self.log_probs = np.zeros((num_steps, num_envs))
        self.values = np.zeros((num_steps, num_envs))
        self._cursor = 0

    @property
    def full(self) -> bool:
        """True once ``num_steps`` transitions have been recorded."""
        return self._cursor >= self.num_steps

    def add(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        masks: np.ndarray,
        rewards: np.ndarray,
        dones: np.ndarray,
        log_probs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Record one vectorised transition."""
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() before adding")
        step = self._cursor
        self.observations[step] = observations
        self.actions[step] = actions
        self.masks[step] = masks
        self.rewards[step] = rewards
        self.dones[step] = dones
        self.log_probs[step] = log_probs
        self.values[step] = values
        self._cursor += 1

    def reset(self) -> None:
        """Clear the cursor so the buffer can be reused for the next rollout."""
        self._cursor = 0

    def compute_returns(
        self,
        last_values: np.ndarray,
        gamma: float,
        gae_lambda: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """GAE(λ) advantages and discounted returns.

        Args:
            last_values: value estimates for the observation after the final
                recorded step, shape ``(num_envs,)``.
            gamma: discount factor.
            gae_lambda: GAE smoothing parameter λ.
        """
        if not self.full:
            raise RuntimeError("rollout buffer must be full before computing returns")
        advantages = np.zeros_like(self.rewards)
        last_advantage = np.zeros(self.num_envs)
        next_values = last_values
        for step in reversed(range(self.num_steps)):
            non_terminal = 1.0 - self.dones[step].astype(np.float64)
            delta = self.rewards[step] + gamma * next_values * non_terminal - self.values[step]
            last_advantage = delta + gamma * gae_lambda * non_terminal * last_advantage
            advantages[step] = last_advantage
            next_values = self.values[step]
        returns = advantages + self.values
        return advantages, returns

    def batch(self, advantages: np.ndarray, returns: np.ndarray) -> RolloutBatch:
        """Flatten the rollout into a single batch."""
        flat = lambda array: array.reshape(-1, *array.shape[2:])  # noqa: E731
        return RolloutBatch(
            observations=flat(self.observations),
            actions=self.actions.reshape(-1),
            masks=flat(self.masks),
            log_probs=self.log_probs.reshape(-1),
            advantages=advantages.reshape(-1),
            returns=returns.reshape(-1),
            values=self.values.reshape(-1),
        )


__all__ = ["RolloutBuffer", "RolloutBatch"]
