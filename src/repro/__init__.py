"""repro — reproduction of DETERRENT (DAC 2022).

DETERRENT generates compact test-pattern sets that activate rare hardware
Trojan trigger conditions by training a PPO agent to enumerate maximal sets of
*compatible rare nets* and converting those sets to input patterns with a SAT
solver.

The package is organised into substrates plus the paper's core contribution:

- :mod:`repro.circuits` — gate-level netlists, builders, benchmark generators.
- :mod:`repro.simulation` — bit-parallel logic simulation, signal
  probabilities, rare-net extraction, SCOAP testability.
- :mod:`repro.sat` — CNF, a CDCL SAT solver, Tseitin encoding, justification.
- :mod:`repro.rl` — numpy PPO with action masking and vectorised environments.
- :mod:`repro.core` — the DETERRENT environment, agent, and pipeline.
- :mod:`repro.trojan` — hardware Trojan model, insertion, coverage evaluation.
- :mod:`repro.baselines` — random, MERO, TARMAC, TGRL, and ATPG baselines.
- :mod:`repro.experiments` — harnesses that regenerate every paper table and
  figure.
"""

from repro.circuits.netlist import Netlist
from repro.core.config import DeterrentConfig
from repro.core.pipeline import DeterrentPipeline, DeterrentResult

__all__ = [
    "Netlist",
    "DeterrentConfig",
    "DeterrentPipeline",
    "DeterrentResult",
    "__version__",
]

__version__ = "1.0.0"
