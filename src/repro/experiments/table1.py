"""Table 1: per-step vs end-of-episode reward computation on the MIPS analogue.

The paper reports, for the MIPS benchmark, the maximum number of compatible
rare nets found, the training rate in steps/minute and in episodes/minute for
both reward-computation strategies, and the relative improvement.  The harness
reproduces those three rows on the ``mips16_like`` analogue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell

#: Paper values for Table 1 (MIPS).
PAPER_TABLE1 = {
    "per_step": {"max_compatible": 53, "steps_per_min": 108, "episodes_per_min": 0.72},
    "end_of_episode": {"max_compatible": 50, "steps_per_min": 9387, "episodes_per_min": 63},
}


@dataclass
class RewardModeResult:
    """Training statistics of one reward-computation mode."""

    reward_mode: str
    max_compatible: int
    steps_per_minute: float
    episodes_per_minute: float
    reward_checks: int


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design",)


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per reward-computation mode."""
    design = options.get("design", "mips16_like")
    return [
        GridCell(name=reward_mode, params={"design": design, "reward_mode": reward_mode})
        for reward_mode in ("per_step", "end_of_episode")
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> RewardModeResult:
    """Train one agent with one reward mode and collect its metrics."""
    context = prepare_benchmark(params["design"], profile)
    config = profile.deterrent_config(reward_mode=params["reward_mode"])
    agent = DeterrentAgent(context.compatibility, config)
    agent_result = agent.train()
    summary = agent_result.summary
    return RewardModeResult(
        reward_mode=params["reward_mode"],
        max_compatible=agent_result.max_compatible_set_size,
        steps_per_minute=summary.steps_per_minute,
        episodes_per_minute=summary.episodes_per_minute,
        reward_checks=agent.total_reward_checks,
    )


def collect(results: list[RewardModeResult]) -> dict[str, RewardModeResult]:
    """Key the cell results by reward mode."""
    return {result.reward_mode: result for result in results}


def run(
    design: str = "mips16_like",
    profile: ExperimentProfile = QUICK,
) -> dict[str, RewardModeResult]:
    """Train one agent per reward mode and collect Table 1's metrics."""
    from repro.runner.execution import run_experiment

    return run_experiment("table1", profile=profile, options={"design": design}).collected


def report(results: dict[str, RewardModeResult]) -> str:
    """Format the measured Table 1 next to the paper's values."""
    headers = ["Method", "Max #compat", "Steps/min", "Eps/min",
               "Paper max", "Paper steps/min", "Paper eps/min"]
    rows = []
    labels = {"per_step": "Reward at all steps", "end_of_episode": "End-of-episode reward"}
    for mode, result in results.items():
        paper = PAPER_TABLE1[mode]
        rows.append([
            labels[mode], result.max_compatible,
            round(result.steps_per_minute), round(result.episodes_per_minute, 2),
            paper["max_compatible"], paper["steps_per_min"], paper["episodes_per_min"],
        ])
    per_step = results["per_step"]
    end_of_episode = results["end_of_episode"]
    if per_step.max_compatible > 0 and per_step.steps_per_minute > 0:
        quality_change = 100.0 * (
            end_of_episode.max_compatible - per_step.max_compatible
        ) / per_step.max_compatible
        speedup = end_of_episode.steps_per_minute / per_step.steps_per_minute
        rows.append([
            "Improvement", f"{quality_change:+.1f}%", f"{speedup:.1f}x",
            f"{end_of_episode.episodes_per_minute / max(per_step.episodes_per_minute, 1e-9):.1f}x",
            "-5.6%", "86.91x", "87.5x",
        ])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.table1``."""
    from repro.experiments.common import profile_by_name

    results = run(profile=profile_by_name(profile_name))
    print(report(results))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
