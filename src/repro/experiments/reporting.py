"""Plain-text reporting helpers shared by the experiment harnesses."""

from __future__ import annotations

import json
from pathlib import Path


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a simple fixed-width text table."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(_format_cell(cell))
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row_index in range(len(rows)):
        lines.append(
            "  ".join(
                columns[col][row_index + 1].ljust(widths[col]) for col in range(len(headers))
            )
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if cell is None:
        return "—"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def save_json(data: object, path: str | Path) -> Path:
    """Serialise experiment results to JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, default=str) + "\n")
    return path


def results_dir() -> Path:
    """Default output directory for experiment artefacts."""
    return Path("results")


__all__ = ["format_table", "save_json", "results_dir"]
