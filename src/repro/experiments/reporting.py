"""Plain-text and structured-JSON reporting helpers shared by the harnesses."""

from __future__ import annotations

import json
from pathlib import Path


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a simple fixed-width text table.

    Rows shorter than the header list are padded with empty cells (rendered
    as ``—``); rows longer than the header list are rejected, since silently
    dropping trailing cells would misreport results.
    """
    num_columns = len(headers)
    columns = [[str(header)] for header in headers]
    for row_index, row in enumerate(rows):
        if len(row) > num_columns:
            raise ValueError(
                f"row {row_index} has {len(row)} cells but there are only "
                f"{num_columns} headers: {row!r}"
            )
        padded = list(row) + [None] * (num_columns - len(row))
        for index, cell in enumerate(padded):
            columns[index].append(_format_cell(cell))
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row_index in range(len(rows)):
        lines.append(
            "  ".join(
                columns[col][row_index + 1].ljust(widths[col]) for col in range(num_columns)
            )
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if cell is None:
        return "—"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def save_json(data: object, path: str | Path) -> Path:
    """Serialise experiment results to JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, default=str) + "\n")
    return path


def append_jsonl(record: object, path: str | Path) -> Path:
    """Append one JSON line to ``path`` (creating parent directories).

    Used by the experiment runner to stream per-cell results as they
    complete, so interrupted runs still leave partial structured output.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, default=str) + "\n")
    return path


def load_jsonl(path: str | Path) -> list[dict]:
    """Read back a JSONL stream written by :func:`append_jsonl`."""
    lines = Path(path).read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def results_dir() -> Path:
    """Default output directory for experiment artefacts."""
    return Path("results")


def resilience_summary(counters: dict | None) -> str:
    """One report line for a run's retry/downgrade counters.

    ``counters`` is the dict produced by
    :meth:`repro.runner.resilience.ResilientOutcome.counters` (also stored
    under the ``"resilience"`` key of a run record).  A clean run reads
    ``execution: backend=process, clean`` so every report states which
    backend produced it; a bumpy run itemises what happened, e.g.
    ``execution: backend=process, retries=2 (crashes=1, timeouts=1),
    degraded to serial (too many backend failures)``.
    """
    if not counters:
        return "execution: no resilience data"
    parts = [f"backend={counters.get('backend', '?')}"]
    retries = counters.get("retries", 0)
    if retries:
        causes = ", ".join(
            f"{key}={counters[key]}"
            for key in ("crashes", "timeouts", "errors", "corrupt")
            if counters.get(key)
        )
        parts.append(f"retries={retries}" + (f" ({causes})" if causes else ""))
    if counters.get("degraded"):
        reason = counters.get("degraded_reason")
        parts.append(
            f"degraded to {counters.get('final_backend', 'serial')}"
            + (f" ({reason})" if reason else "")
        )
    backend_counters = counters.get("backend_counters") or {}
    if backend_counters:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(backend_counters.items())
        )
        parts.append(f"queue: {rendered}")
    if len(parts) == 1:
        parts.append("clean")
    return "execution: " + ", ".join(parts)


def telemetry_summary(telemetry: dict | None) -> str | None:
    """One report line for a run's telemetry block, or None when absent.

    ``telemetry`` is the dict :func:`repro.obs.summary` put in the run
    record (``None`` when tracing was off).  Example output::

        telemetry: 42 spans -> /tmp/trace, counters: runner_cells=4, ...
    """
    if not telemetry:
        return None
    counters = telemetry.get("counters") or {}
    shown = ", ".join(
        f"{key}={value}" for key, value in sorted(counters.items())[:6]
    )
    extra = max(0, len(counters) - 6)
    line = (
        f"telemetry: {telemetry.get('spans', 0)} spans -> "
        f"{telemetry.get('trace_dir', '?')}"
    )
    if shown:
        line += f", counters: {shown}"
        if extra:
            line += f" (+{extra} more)"
    return line


__all__ = [
    "format_table",
    "save_json",
    "append_jsonl",
    "load_jsonl",
    "resilience_summary",
    "results_dir",
    "telemetry_summary",
]
