"""Figure 5: impact of the trigger width on trigger coverage (c6288).

The paper sweeps the trigger width from 2 to 12 on c6288 and shows that
TGRL's coverage collapses as the width grows while DETERRENT stays steady.
The harness repeats the sweep on the c6288 analogue: both techniques generate
their pattern sets once (trigger-width agnostic) and are evaluated against
Trojan populations of each width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tgrl import TgrlConfig, tgrl_pattern_set
from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, as_tuple, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell
from repro.trojan.evaluation import trigger_coverage
from repro.trojan.insertion import sample_trojans

#: Default trigger widths from the paper's Figure 5.
DEFAULT_WIDTHS = (2, 4, 6, 8, 10, 12)


@dataclass
class WidthPoint:
    """Coverage of both techniques for one trigger width."""

    width: int
    num_trojans: int
    deterrent_coverage: float
    tgrl_coverage: float


@dataclass
class TechniqueSweep:
    """One technique's coverage across the width sweep (one grid cell)."""

    technique: str
    points: list[tuple[int, int, float]]  # (width, num_trojans, coverage %)


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design", "widths")


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per technique; each sweeps every trigger width."""
    design = options.get("design", "c6288_like")
    widths = as_tuple(options.get("widths", DEFAULT_WIDTHS))
    return [
        GridCell(name=technique, params={"design": design, "widths": widths,
                                         "technique": technique})
        for technique in ("DETERRENT", "TGRL")
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> TechniqueSweep:
    """Build one technique's pattern set and evaluate it at every width.

    Trojan populations are sampled with a per-width seed derived only from
    ``(profile.seed, width)``, so both technique cells evaluate against the
    same populations even when they run in different worker processes.
    """
    context = prepare_benchmark(params["design"], profile)
    technique = params["technique"]
    if technique == "DETERRENT":
        agent = DeterrentAgent(context.compatibility, profile.deterrent_config())
        agent_result = agent.train()
        patterns = generate_patterns(
            context.compatibility, agent_result.largest_sets(profile.k_patterns),
            technique="DETERRENT",
        )
    else:
        patterns = tgrl_pattern_set(
            context.netlist,
            context.compatibility.rare_nets,
            TgrlConfig(
                total_training_steps=profile.tgrl_training_steps,
                num_envs=profile.num_envs,
                seed=profile.seed,
            ),
        )

    points: list[tuple[int, int, float]] = []
    for width in params["widths"]:
        if width > context.num_rare_nets:
            continue
        trojans = sample_trojans(
            context.netlist,
            context.compatibility.rare_nets,
            num_trojans=profile.num_trojans,
            trigger_width=width,
            seed=profile.seed + width,
            justifier=context.compatibility.justifier,
        )
        if not trojans:
            continue
        coverage = trigger_coverage(context.netlist, trojans, patterns)
        points.append((width, len(trojans), coverage.coverage_percent))
    return TechniqueSweep(technique=technique, points=points)


def collect(results: list[TechniqueSweep]) -> list[WidthPoint]:
    """Merge the per-technique sweeps into joint width points."""
    by_technique = {sweep.technique: dict() for sweep in results}
    counts: dict[int, int] = {}
    for sweep in results:
        for width, num_trojans, coverage in sweep.points:
            by_technique[sweep.technique][width] = coverage
            counts[width] = num_trojans
    deterrent = by_technique.get("DETERRENT", {})
    tgrl = by_technique.get("TGRL", {})
    return [
        WidthPoint(
            width=width,
            num_trojans=counts[width],
            deterrent_coverage=deterrent[width],
            tgrl_coverage=tgrl[width],
        )
        for width in sorted(set(deterrent) & set(tgrl))
    ]


def run(
    design: str = "c6288_like",
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    profile: ExperimentProfile = QUICK,
) -> list[WidthPoint]:
    """Evaluate DETERRENT and TGRL pattern sets against each trigger width."""
    from repro.runner.execution import run_experiment

    return run_experiment(
        "figure5", profile=profile, options={"design": design, "widths": widths}
    ).collected


def report(points: list[WidthPoint]) -> str:
    """Format the width sweep (the paper plots these as two curves)."""
    headers = ["Trigger width", "#HTs", "DETERRENT cov (%)", "TGRL cov (%)"]
    rows = [[p.width, p.num_trojans, p.deterrent_coverage, p.tgrl_coverage] for p in points]
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure5``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
