"""Ablations of DETERRENT's design choices (DESIGN.md §5).

Beyond the comparisons the paper reports, this harness quantifies the effect
of three design choices on one benchmark:

1. reward shape — linear vs squared set size (the paper argues for convexity);
2. exact vs pairwise-only set verification in the reward;
3. the number of kept sets ``k`` — pattern count vs coverage trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell
from repro.trojan.evaluation import trigger_coverage


@dataclass
class AblationPoint:
    """One ablation configuration and its outcome."""

    label: str
    max_compatible: int
    test_length: int
    coverage_percent: float


def _evaluate(context, agent_result, profile, k_patterns) -> tuple[int, float]:
    patterns = generate_patterns(
        context.compatibility, agent_result.largest_sets(k_patterns), technique="DETERRENT"
    )
    coverage = trigger_coverage(context.netlist, context.trojans, patterns)
    return len(patterns), coverage.coverage_percent


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design",)


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per ablated configuration (the k sweep shares one agent)."""
    design = options.get("design", "c6288_like")
    return [
        GridCell(name="reward-linear",
                 params={"design": design, "kind": "reward_power", "power": 1.0,
                         "label": "reward |s| (linear)"}),
        GridCell(name="reward-squared",
                 params={"design": design, "kind": "reward_power", "power": 2.0,
                         "label": "reward |s|^2 (paper)"}),
        GridCell(name="pairwise-only",
                 params={"design": design, "kind": "pairwise_only",
                         "label": "pairwise-only compatibility"}),
        GridCell(name="k-sweep", params={"design": design, "kind": "k_sweep"}),
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> list[AblationPoint]:
    """Run one ablated configuration (the k sweep yields several points)."""
    context = prepare_benchmark(params["design"], profile)
    kind = params["kind"]
    if kind == "reward_power":
        config = profile.deterrent_config(reward_power=params["power"])
    elif kind == "pairwise_only":
        config = profile.deterrent_config(exact_set_reward=False)
    elif kind == "k_sweep":
        config = profile.deterrent_config()
    else:
        raise ValueError(f"unknown ablation kind {kind!r}")
    agent_result = DeterrentAgent(context.compatibility, config).train()

    if kind == "k_sweep":
        points: list[AblationPoint] = []
        for k in (profile.k_patterns // 4, profile.k_patterns // 2, profile.k_patterns):
            if k <= 0:
                continue
            length, coverage = _evaluate(context, agent_result, profile, k)
            points.append(AblationPoint(
                f"k = {k}", agent_result.max_compatible_set_size, length, coverage
            ))
        return points
    length, coverage = _evaluate(context, agent_result, profile, profile.k_patterns)
    return [AblationPoint(
        params["label"], agent_result.max_compatible_set_size, length, coverage
    )]


def collect(results: list[list[AblationPoint]]) -> list[AblationPoint]:
    """Flatten cell results, preserving grid order."""
    return [point for cell_points in results for point in cell_points]


def run(design: str = "c6288_like", profile: ExperimentProfile = QUICK) -> list[AblationPoint]:
    """Run the ablation grid on one design."""
    from repro.runner.execution import run_experiment

    return run_experiment("ablations", profile=profile, options={"design": design}).collected


def report(points: list[AblationPoint]) -> str:
    """Format the ablation grid."""
    headers = ["Configuration", "Max #compat", "Test length", "Coverage (%)"]
    rows = [[p.label, p.max_compatible, p.test_length, p.coverage_percent] for p in points]
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.ablations``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
