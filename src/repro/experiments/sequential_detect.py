"""SAT-guided sequential detection: temporal justification vs random sequences.

The ``sequential`` harness established the problem: random input sequences
from reset achieve near-zero coverage of multi-cycle (count-k) triggers on
raw sequential netlists.  This harness evaluates the answer — the temporal
SAT subsystem.  For each grid cell it

1. loads the raw sequential benchmark and its *state-dependent* rare nets
   (shared with the ``sequential`` harness through the artifact cache),
2. samples the same multi-cycle Trojan population (``mode``/``count``
   temporal rules over the rare nets),
3. generates a **SAT-guided sequence set**
   (:func:`repro.core.sequence_gen.generate_sequences`): rare nets are
   pre-filtered by temporal activatability on the unrolled transition
   relation, grouped into greedy jointly-justifiable sets, and each set is
   turned into one replay-verified witness sequence,
4. measures trigger coverage of the SAT-guided set **and** of a random
   sequence baseline at the same sequence budget, with the batched
   multi-cycle evaluator.

The SAT-guided column should strictly dominate the random column wherever
any sampled trigger is temporally reachable at all; the "viable" column
(rare nets surviving the temporal pre-filter) quantifies how much of the
full-scan rare-net space is actually exercisable from reset.

Generated sequence sets are cached per (netlist, rare nets, rule, budget)
in the artifact cache (kind ``sat_sequences``), so the harness is shard-safe
under ``--jobs N`` and a second run is served entirely from disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.library import load_benchmark
from repro.circuits.netlist import Netlist
from repro.core.patterns import SequenceSet
from repro.core.sequence_gen import generate_sequences
from repro.experiments.common import ExperimentProfile, QUICK
from repro.experiments.reporting import format_table
from repro.experiments.sequential import (
    DEFAULT_CYCLES,
    DEFAULT_DESIGNS,
    DEFAULT_MODES,
    DEFAULT_COUNTS,
    _rare_nets,
    _trojans,
    cells as _sequential_cells,
)
from repro.runner.cache import get_default_cache, netlist_fingerprint
from repro.sat.solver import SolverConfig
from repro.simulation.rare_nets import RareNet
from repro.trojan.evaluation import sequence_trigger_coverage

#: Option keys this harness accepts (validated by the runner).  ``solver``
#: takes a :meth:`repro.sat.solver.SolverConfig.from_mapping` dict, e.g.
#: ``--set 'solver={"restart_policy": "geometric", "var_decay": 0.9}'``.
OPTIONS = ("designs", "cycles", "modes", "counts", "solver")


@dataclass
class SequentialDetectCellResult:
    """SAT-guided vs random coverage of one (design, cycles, rule) grid cell."""

    design: str
    cycles: int
    mode: str
    count: int
    num_rare_nets: int
    num_viable: int
    num_trojans: int
    budget: int
    num_sat_sequences: int
    sat_coverage_percent: float
    random_coverage_percent: float
    solver_stats: dict | None = None


def cells(profile: ExperimentProfile, options: dict):
    """Same grid shape as the ``sequential`` harness (designs × cycles × rule).

    A ``solver`` option (SolverConfig mapping) is validated once here and
    attached to every cell, so sharded workers rebuild the exact same
    configuration from the cell params alone.
    """
    grid = _sequential_cells(profile, options)
    solver = options.get("solver")
    if solver is not None:
        if not isinstance(solver, dict):
            raise ValueError(
                f"solver option must be a mapping of SolverConfig fields, got {solver!r}"
            )
        SolverConfig.from_mapping(solver)  # validate keys and ranges up front
        for cell in grid:
            cell.params["solver"] = dict(solver)
    return grid


def _guided_sequences(
    netlist: Netlist,
    rare_nets: list[RareNet],
    cycles: int,
    mode: str,
    count: int,
    budget: int,
    profile: ExperimentProfile,
    solver_config: SolverConfig | None = None,
) -> SequenceSet:
    """SAT-guided sequence set, shared through the artifact cache.

    The solver configuration is part of the cache key: a tuned solver may
    produce different (equally valid) witnesses, so sets generated under one
    configuration are never served for another.
    """

    def _generate() -> SequenceSet:
        return generate_sequences(
            netlist,
            rare_nets,
            cycles,
            mode=mode,
            count=count,
            num_sequences=budget,
            seed=profile.seed + 3,
            solver_config=solver_config,
        )

    cache = get_default_cache()
    if cache is None:
        return _generate()
    return cache.fetch(
        "sat_sequences",
        _generate,
        netlist=netlist_fingerprint(netlist),
        rare_nets=[(rare.net, rare.rare_value) for rare in rare_nets],
        cycles=cycles,
        mode=mode,
        count=count,
        budget=budget,
        seed=profile.seed + 3,
        solver=sorted((solver_config or SolverConfig()).as_dict().items()),
    )


def run_cell(params: dict, profile: ExperimentProfile) -> SequentialDetectCellResult | None:
    """Evaluate one (design, cycles, mode, count) cell (None if no Trojans fit)."""
    design = params["design"]
    cycles = params["cycles"]
    mode = params["mode"]
    count = params["count"]
    solver_config = (
        SolverConfig.from_mapping(params["solver"]) if "solver" in params else None
    )
    netlist = load_benchmark(design, combinational_view=False)
    rare_nets = _rare_nets(netlist, cycles, profile)
    trojans = _trojans(netlist, rare_nets, mode, count, profile)
    if not trojans:
        return None
    budget = profile.k_patterns
    guided = _guided_sequences(
        netlist, rare_nets, cycles, mode, count, budget, profile,
        solver_config=solver_config,
    )
    random_sequences = SequenceSet.random(
        netlist,
        num_sequences=budget,
        cycles=cycles,
        seed=profile.seed + 2,
        technique="Random sequences",
    )
    sat_coverage = sequence_trigger_coverage(netlist, trojans, guided)
    random_coverage = sequence_trigger_coverage(netlist, trojans, random_sequences)
    return SequentialDetectCellResult(
        design=design,
        cycles=cycles,
        mode=mode,
        count=count,
        num_rare_nets=len(rare_nets),
        num_viable=int(guided.metadata.get("num_activatable", 0)),
        num_trojans=len(trojans),
        budget=budget,
        num_sat_sequences=len(guided),
        sat_coverage_percent=sat_coverage.coverage_percent,
        random_coverage_percent=random_coverage.coverage_percent,
        solver_stats=guided.metadata.get("solver_stats"),
    )


def test_set(params: dict, profile: ExperimentProfile) -> SequenceSet:
    """The SAT-guided sequence set a cell produced (detection-service hook).

    Re-derives the cell's guided set through the same artifact-cache key
    ``run_cell`` used, so right after a cell has run this is a cache load,
    not a recomputation.  The service serialises the returned set into the
    job record — the "submit a netlist, get its test set back" payload.
    """
    design = params["design"]
    cycles = params["cycles"]
    solver_config = (
        SolverConfig.from_mapping(params["solver"]) if "solver" in params else None
    )
    netlist = load_benchmark(design, combinational_view=False)
    rare_nets = _rare_nets(netlist, cycles, profile)
    return _guided_sequences(
        netlist, rare_nets, cycles, params["mode"], params["count"],
        profile.k_patterns, profile, solver_config=solver_config,
    )


def collect(
    results: list[SequentialDetectCellResult | None],
) -> list[SequentialDetectCellResult]:
    """Drop skipped cells, keeping grid order."""
    return [result for result in results if result is not None]


def report(results: list[SequentialDetectCellResult]) -> str:
    """Render the SAT-guided vs random coverage table."""
    headers = [
        "Design", "Cycles", "Mode", "k", "#rare", "#viable", "#HT",
        "Budget", "SAT seqs", "SAT cov (%)", "Random cov (%)",
    ]
    rows = [
        [
            result.design, result.cycles, result.mode, result.count,
            result.num_rare_nets, result.num_viable, result.num_trojans,
            result.budget, result.num_sat_sequences,
            round(result.sat_coverage_percent, 1),
            round(result.random_coverage_percent, 1),
        ]
        for result in results
    ]
    table = format_table(headers, rows)
    note = (
        "SAT-guided sequences justify greedy sets of state-dependent rare nets on\n"
        "the unrolled transition relation (consecutive: shift-chain clauses;\n"
        "cumulative: cardinality ladder) and replay every witness through the\n"
        "compiled multi-cycle engine.  '#viable' counts rare nets whose rare value\n"
        "is provably reachable under the temporal rule; the random column is the\n"
        "same budget of uniform sequences from reset (the 'sequential' harness\n"
        "baseline)."
    )
    aggregate = _aggregate_solver_stats(results)
    if aggregate is not None:
        summary = ", ".join(f"{key}={value}" for key, value in aggregate.items())
        note += f"\n\nAggregate solver stats (fresh cells only): {summary}"
    return f"{table}\n\n{note}"


def _aggregate_solver_stats(
    results: list[SequentialDetectCellResult],
) -> dict | None:
    """Merge per-cell solver stats (None when every cell was cache-served)."""
    from repro.sat.solver import SolverStats

    merged: SolverStats | None = None
    for result in results:
        if not result.solver_stats:
            continue
        snapshot = SolverStats(**result.solver_stats)
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged.as_dict() if merged is not None else None


def run(
    designs: tuple[str, ...] = DEFAULT_DESIGNS,
    cycles: tuple[int, ...] = DEFAULT_CYCLES,
    modes: tuple[str, ...] = DEFAULT_MODES,
    counts: tuple[int, ...] = DEFAULT_COUNTS,
    profile: ExperimentProfile = QUICK,
    solver: dict | None = None,
) -> list[SequentialDetectCellResult]:
    """Run the SAT-guided detection grid through the experiment runner."""
    from repro.runner.execution import run_experiment

    options: dict = {
        "designs": tuple(designs),
        "cycles": tuple(cycles),
        "modes": tuple(modes),
        "counts": tuple(counts),
    }
    if solver is not None:
        options["solver"] = dict(solver)
    return run_experiment(
        "sequential_detect",
        profile=profile,
        options=options,
    ).collected


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.sequential_detect``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
