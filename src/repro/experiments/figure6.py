"""Figure 6: trigger coverage vs number of test patterns (c2670 and c6288).

The paper plots, for DETERRENT and TGRL, the cumulative trigger coverage as a
function of how many of each technique's patterns have been applied; DETERRENT
saturates with very few patterns.  The harness produces the same cumulative
curves on the analogues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tgrl import TgrlConfig, tgrl_pattern_set
from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.trojan.evaluation import coverage_curve

#: Designs shown in the paper's Figure 6.
DEFAULT_DESIGNS = ("c2670_like", "c6288_like")


@dataclass
class CurveResult:
    """Coverage curves for one design."""

    design: str
    deterrent_curve: list[tuple[int, float]]
    tgrl_curve: list[tuple[int, float]]

    def patterns_to_reach(self, coverage_percent: float, technique: str = "deterrent") -> int | None:
        """Smallest number of patterns reaching ``coverage_percent`` (None if never)."""
        curve = self.deterrent_curve if technique == "deterrent" else self.tgrl_curve
        for num_patterns, coverage in curve:
            if coverage >= coverage_percent:
                return num_patterns
        return None


def run(
    designs: tuple[str, ...] = DEFAULT_DESIGNS, profile: ExperimentProfile = QUICK
) -> list[CurveResult]:
    """Compute cumulative coverage curves for DETERRENT and TGRL."""
    results: list[CurveResult] = []
    for design in designs:
        context = prepare_benchmark(design, profile)
        agent = DeterrentAgent(context.compatibility, profile.deterrent_config())
        agent_result = agent.train()
        deterrent_patterns = generate_patterns(
            context.compatibility,
            agent_result.largest_sets(profile.k_patterns),
            technique="DETERRENT",
        )
        tgrl_patterns = tgrl_pattern_set(
            context.netlist,
            context.compatibility.rare_nets,
            TgrlConfig(
                total_training_steps=profile.tgrl_training_steps,
                num_envs=profile.num_envs,
                seed=profile.seed,
            ),
        )
        results.append(
            CurveResult(
                design=design,
                deterrent_curve=coverage_curve(context.netlist, context.trojans, deterrent_patterns),
                tgrl_curve=coverage_curve(context.netlist, context.trojans, tgrl_patterns),
            )
        )
    return results


def report(results: list[CurveResult]) -> str:
    """Summarise the curves: final coverage and patterns needed for 90% of it."""
    headers = [
        "Design", "Technique", "Test len", "Final cov (%)", "Patterns to 90% of final",
    ]
    rows: list[list[object]] = []
    for result in results:
        for technique, curve in (("DETERRENT", result.deterrent_curve),
                                 ("TGRL", result.tgrl_curve)):
            if not curve:
                rows.append([result.design, technique, 0, 0.0, None])
                continue
            final = curve[-1][1]
            target = 0.9 * final
            reached = next((n for n, c in curve if c >= target), None)
            rows.append([result.design, technique, curve[-1][0], final, reached])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure6``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
