"""Figure 6: trigger coverage vs number of test patterns (c2670 and c6288).

The paper plots, for DETERRENT and TGRL, the cumulative trigger coverage as a
function of how many of each technique's patterns have been applied; DETERRENT
saturates with very few patterns.  The harness produces the same cumulative
curves on the analogues.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tgrl import TgrlConfig, tgrl_pattern_set
from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, as_tuple, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell
from repro.trojan.evaluation import coverage_curve

#: Designs shown in the paper's Figure 6.
DEFAULT_DESIGNS = ("c2670_like", "c6288_like")


@dataclass
class CurveResult:
    """Coverage curves for one design."""

    design: str
    deterrent_curve: list[tuple[int, float]]
    tgrl_curve: list[tuple[int, float]]

    def patterns_to_reach(self, coverage_percent: float, technique: str = "deterrent") -> int | None:
        """Smallest number of patterns reaching ``coverage_percent`` (None if never)."""
        curve = self.deterrent_curve if technique == "deterrent" else self.tgrl_curve
        for num_patterns, coverage in curve:
            if coverage >= coverage_percent:
                return num_patterns
        return None


@dataclass
class CurveCell:
    """One technique's cumulative coverage curve on one design (one cell)."""

    design: str
    technique: str
    curve: list[tuple[int, float]]


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("designs",)


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per (design, technique)."""
    designs = as_tuple(options.get("designs", DEFAULT_DESIGNS))
    return [
        GridCell(name=f"{design}-{technique}",
                 params={"design": design, "technique": technique})
        for design in designs
        for technique in ("DETERRENT", "TGRL")
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> CurveCell:
    """Build one technique's pattern set and its cumulative coverage curve."""
    context = prepare_benchmark(params["design"], profile)
    if params["technique"] == "DETERRENT":
        agent = DeterrentAgent(context.compatibility, profile.deterrent_config())
        agent_result = agent.train()
        patterns = generate_patterns(
            context.compatibility,
            agent_result.largest_sets(profile.k_patterns),
            technique="DETERRENT",
        )
    else:
        patterns = tgrl_pattern_set(
            context.netlist,
            context.compatibility.rare_nets,
            TgrlConfig(
                total_training_steps=profile.tgrl_training_steps,
                num_envs=profile.num_envs,
                seed=profile.seed,
            ),
        )
    return CurveCell(
        design=params["design"],
        technique=params["technique"],
        curve=coverage_curve(context.netlist, context.trojans, patterns),
    )


def collect(results: list[CurveCell]) -> list[CurveResult]:
    """Merge per-technique curves into one :class:`CurveResult` per design."""
    curves: dict[str, dict[str, list[tuple[int, float]]]] = {}
    order: list[str] = []
    for cell in results:
        if cell.design not in curves:
            curves[cell.design] = {}
            order.append(cell.design)
        curves[cell.design][cell.technique] = cell.curve
    return [
        CurveResult(
            design=design,
            deterrent_curve=curves[design].get("DETERRENT", []),
            tgrl_curve=curves[design].get("TGRL", []),
        )
        for design in order
    ]


def run(
    designs: tuple[str, ...] = DEFAULT_DESIGNS, profile: ExperimentProfile = QUICK
) -> list[CurveResult]:
    """Compute cumulative coverage curves for DETERRENT and TGRL."""
    from repro.runner.execution import run_experiment

    return run_experiment(
        "figure6", profile=profile, options={"designs": tuple(designs)}
    ).collected


def report(results: list[CurveResult]) -> str:
    """Summarise the curves: final coverage and patterns needed for 90% of it."""
    headers = [
        "Design", "Technique", "Test len", "Final cov (%)", "Patterns to 90% of final",
    ]
    rows: list[list[object]] = []
    for result in results:
        for technique, curve in (("DETERRENT", result.deterrent_curve),
                                 ("TGRL", result.tgrl_curve)):
            if not curve:
                rows.append([result.design, technique, 0, 0.0, None])
                continue
            final = curve[-1][1]
            target = 0.9 * final
            reached = next((n for n, c in curve if c >= target), None)
            rows.append([result.design, technique, curve[-1][0], final, reached])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure6``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
