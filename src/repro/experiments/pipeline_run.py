"""End-to-end pipeline experiment: the full Figure-4 flow on one design.

Runs :class:`repro.core.pipeline.DeterrentPipeline` (rare-net extraction →
compatibility → PPO training → SAT pattern generation) and evaluates the
generated pattern set against the design's sampled Trojan population.  This is
the "does the whole system work" experiment the CLI exposes as ``pipeline``;
the other harnesses measure individual figures/tables of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import DeterrentPipeline
from repro.experiments.common import ExperimentProfile, QUICK, as_tuple, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell
from repro.trojan.evaluation import trigger_coverage


@dataclass
class PipelineSummary:
    """Headline metrics of one end-to-end pipeline run."""

    design: str
    num_rare_nets: int
    max_compatible_set_size: int
    test_length: int
    coverage_percent: float
    timings: dict[str, float] = field(default_factory=dict)


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design", "designs")


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per requested design."""
    designs = as_tuple(options.get("designs") or options.get("design", "c6288_like"))
    return [GridCell(name=design, params={"design": design}) for design in designs]


def run_cell(params: dict, profile: ExperimentProfile) -> PipelineSummary:
    """Run the full pipeline on one design and score its patterns."""
    design = params["design"]
    context = prepare_benchmark(design, profile)
    pipeline = DeterrentPipeline(profile.deterrent_config(rareness_threshold=context.threshold))
    result = pipeline.run(
        context.netlist, rare_nets=context.rare_nets, compatibility=context.compatibility
    )
    coverage = trigger_coverage(context.netlist, context.trojans, result.pattern_set)
    return PipelineSummary(
        design=design,
        num_rare_nets=result.compatibility.num_rare_nets,
        max_compatible_set_size=result.max_compatible_set_size,
        test_length=result.test_length,
        coverage_percent=coverage.coverage_percent,
        timings={name: round(value, 3) for name, value in result.timings.items()},
    )


def collect(results: list[PipelineSummary]) -> list[PipelineSummary]:
    """Cell results, in design order."""
    return results


def report(results: list[PipelineSummary]) -> str:
    """Summarise each pipeline run as one table row."""
    headers = ["Design", "#rare", "Max #compat", "Test len", "Coverage (%)", "Total (s)"]
    rows = [
        [
            summary.design,
            summary.num_rare_nets,
            summary.max_compatible_set_size,
            summary.test_length,
            summary.coverage_percent,
            summary.timings.get("pattern_generation"),
        ]
        for summary in results
    ]
    return format_table(headers, rows)


def run(
    design: str = "c6288_like", profile: ExperimentProfile = QUICK
) -> list[PipelineSummary]:
    """Run the end-to-end pipeline experiment through the runner."""
    from repro.runner.execution import run_experiment

    return run_experiment("pipeline", profile=profile, options={"design": design}).collected


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.pipeline_run``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
