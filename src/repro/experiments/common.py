"""Shared infrastructure for the experiment harnesses.

Provides the quick/full execution profiles, cached benchmark preparation
(rare nets, compatibility analysis, Trojan populations), and the paper's
reference numbers used for paper-vs-measured reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.library import benchmark_entry, load_benchmark
from repro.circuits.netlist import Netlist
from repro.core.compatibility import CompatibilityAnalysis, compute_compatibility
from repro.core.config import DeterrentConfig
from repro.rl.ppo import PpoConfig
from repro.runner.cache import ArtifactCache, get_default_cache, netlist_fingerprint
from repro.simulation.rare_nets import RareNet, extract_rare_nets
from repro.trojan.insertion import sample_trojans
from repro.trojan.model import Trojan


@dataclass(frozen=True)
class ExperimentProfile:
    """Execution scale of an experiment run."""

    name: str
    num_trojans: int
    trigger_width: int
    training_steps: int
    tgrl_training_steps: int
    k_patterns: int
    num_cliques: int
    num_probability_patterns: int
    num_envs: int
    episode_length: int
    seed: int = 0

    def deterrent_config(self, **overrides) -> DeterrentConfig:
        """Build a :class:`DeterrentConfig` matching this profile."""
        config = DeterrentConfig(
            num_probability_patterns=self.num_probability_patterns,
            episode_length=self.episode_length,
            num_envs=self.num_envs,
            total_training_steps=self.training_steps,
            k_patterns=self.k_patterns,
            seed=self.seed,
            ppo=PpoConfig(num_steps=64, minibatch_size=64, hidden_sizes=(64, 64)),
        )
        return config.with_overrides(**overrides) if overrides else config


#: Fast profile used by pytest-benchmark and CI; minutes across all harnesses.
QUICK = ExperimentProfile(
    name="quick",
    num_trojans=40,
    trigger_width=4,
    training_steps=2048,
    tgrl_training_steps=1024,
    k_patterns=128,
    num_cliques=64,
    num_probability_patterns=2048,
    num_envs=2,
    episode_length=30,
)

#: Larger profile that tracks the paper's qualitative results more closely.
FULL = ExperimentProfile(
    name="full",
    num_trojans=100,
    trigger_width=4,
    training_steps=8192,
    tgrl_training_steps=4096,
    k_patterns=400,
    num_cliques=300,
    num_probability_patterns=4096,
    num_envs=4,
    episode_length=35,
)


#: Smallest profile: CLI smoke tests and unit tests; seconds per harness.
TINY = ExperimentProfile(
    name="tiny",
    num_trojans=12,
    trigger_width=3,
    training_steps=256,
    tgrl_training_steps=128,
    k_patterns=16,
    num_cliques=12,
    num_probability_patterns=512,
    num_envs=2,
    episode_length=12,
)


def as_tuple(value) -> tuple:
    """Normalise an experiment option to a tuple.

    CLI ``--set`` values arrive as scalars (``--set designs=c2670_like``
    json-decodes to a bare string); wrapping instead of iterating prevents a
    string from being consumed character by character.
    """
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def profile_by_name(name: str) -> ExperimentProfile:
    """Look up a profile by its name ('tiny', 'quick', or 'full')."""
    profiles = {"tiny": TINY, "quick": QUICK, "full": FULL}
    try:
        return profiles[name]
    except KeyError:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(profiles)}") from None


@dataclass
class BenchmarkContext:
    """Everything the harnesses need about one benchmark circuit."""

    name: str
    netlist: Netlist
    rare_nets: list[RareNet]
    compatibility: CompatibilityAnalysis
    trojans: list[Trojan]
    paper_num_gates: int = 0
    paper_num_rare_nets: int = 0
    threshold: float = 0.1

    @property
    def num_rare_nets(self) -> int:
        """Number of activatable rare nets used by the techniques."""
        return self.compatibility.num_rare_nets


_CONTEXT_CACHE: dict[tuple, BenchmarkContext] = {}


#: Sentinel meaning "use the process-wide default artifact cache".
_DEFAULT_CACHE = object()


def prepare_benchmark(
    name: str,
    profile: ExperimentProfile = QUICK,
    threshold: float = 0.1,
    trigger_width: int | None = None,
    use_cache: bool = True,
    cache: ArtifactCache | None | object = _DEFAULT_CACHE,
    n_jobs: int = 1,
) -> BenchmarkContext:
    """Load a benchmark and precompute rare nets, compatibility, and Trojans.

    The offline phase (probability estimation + pairwise compatibility) is the
    same for every technique, so results are cached per (benchmark, profile,
    threshold, width) within the process, and — when an on-disk artifact
    cache is configured (``cache`` argument, :func:`repro.runner.cache
    .set_default_cache`, or ``DETERRENT_CACHE_DIR``) — shared across worker
    processes and re-runs.  ``n_jobs > 1`` shards the pairwise-compatibility
    queries across worker processes (bit-identical result).
    """
    width = trigger_width if trigger_width is not None else profile.trigger_width
    # The whole (frozen, hashable) profile is part of the key: two profiles
    # that share a name but differ in scale must not collide.
    key = (name, profile, threshold, width)
    if cache is _DEFAULT_CACHE:
        cache = get_default_cache()
    if use_cache and key in _CONTEXT_CACHE:
        context = _CONTEXT_CACHE[key]
        if cache is not None:
            # The context may have been memoised before any disk cache was
            # configured; make sure its artifacts reach the disk so worker
            # processes and later sessions can reuse them.
            _write_through(cache, context, profile, threshold, width)
        return context

    entry = benchmark_entry(name)
    netlist = load_benchmark(name)

    def _extract_rare_nets() -> list[RareNet]:
        return extract_rare_nets(
            netlist,
            threshold=threshold,
            num_patterns=profile.num_probability_patterns,
            seed=profile.seed,
        )

    if cache is not None:
        rare_nets = cache.fetch(
            "rare_nets",
            _extract_rare_nets,
            netlist=netlist_fingerprint(netlist),
            threshold=threshold,
            num_patterns=profile.num_probability_patterns,
            seed=profile.seed,
        )
    else:
        rare_nets = _extract_rare_nets()

    compatibility = compute_compatibility(netlist, rare_nets, n_jobs=n_jobs, cache=cache)
    compatibility.justifier.set_preferred_values(
        {rare.net: rare.rare_value for rare in compatibility.rare_nets}
    )

    def _sample_trojans() -> list[Trojan]:
        return sample_trojans(
            netlist,
            compatibility.rare_nets,
            num_trojans=profile.num_trojans,
            trigger_width=width,
            seed=profile.seed + 1,
            justifier=compatibility.justifier,
        )

    if cache is not None:
        trojans = cache.fetch(
            "trojans",
            _sample_trojans,
            netlist=netlist_fingerprint(netlist),
            rare_nets=[(rare.net, rare.rare_value) for rare in compatibility.rare_nets],
            num_trojans=profile.num_trojans,
            trigger_width=width,
            seed=profile.seed + 1,
        )
    else:
        trojans = _sample_trojans()
    context = BenchmarkContext(
        name=name,
        netlist=netlist,
        rare_nets=rare_nets,
        compatibility=compatibility,
        trojans=trojans,
        paper_num_gates=entry.paper_num_gates,
        paper_num_rare_nets=entry.paper_num_rare_nets,
        threshold=threshold,
    )
    if use_cache:
        _CONTEXT_CACHE[key] = context
    return context


def _write_through(
    cache: ArtifactCache,
    context: BenchmarkContext,
    profile: ExperimentProfile,
    threshold: float,
    width: int,
) -> None:
    """Persist a memoised context's artifacts to disk if they are missing.

    Key construction mirrors the compute path of :func:`prepare_benchmark`
    and :func:`repro.core.compatibility.compute_compatibility` exactly, so
    write-through entries and computed entries are interchangeable.
    """
    fingerprint = netlist_fingerprint(context.netlist)
    rare_key = {
        "netlist": fingerprint,
        "threshold": threshold,
        "num_patterns": profile.num_probability_patterns,
        "seed": profile.seed,
    }
    if not cache.path_for("rare_nets", **rare_key).exists():
        cache.store("rare_nets", context.rare_nets, **rare_key)
    compat_key = {
        "netlist": fingerprint,
        "rare_nets": [(rare.net, rare.rare_value) for rare in context.rare_nets],
    }
    if not cache.path_for("compatibility", **compat_key).exists():
        cache.store(
            "compatibility",
            {
                "rare_nets": context.compatibility.rare_nets,
                "matrix": context.compatibility.matrix,
                "unsatisfiable": context.compatibility.unsatisfiable,
            },
            **compat_key,
        )
    trojan_key = {
        "netlist": fingerprint,
        "rare_nets": [
            (rare.net, rare.rare_value) for rare in context.compatibility.rare_nets
        ],
        "num_trojans": profile.num_trojans,
        "trigger_width": width,
        "seed": profile.seed + 1,
    }
    if not cache.path_for("trojans", **trojan_key).exists():
        cache.store("trojans", context.trojans, **trojan_key)


def clear_context_cache() -> None:
    """Drop all cached benchmark contexts (used by tests)."""
    _CONTEXT_CACHE.clear()


#: Paper Table 2 reference values: design -> (rare nets, gates, per-technique
#: (test length, coverage %)).  ``None`` marks cells the paper leaves empty.
PAPER_TABLE2: dict[str, dict] = {
    "c2670": {
        "rare_nets": 43, "gates": 775,
        "Random": (5306, 10), "TestMAX": (89, 27), "TARMAC": (5306, 100),
        "TGRL": (5306, 96), "DETERRENT": (8, 100),
    },
    "c5315": {
        "rare_nets": 165, "gates": 2307,
        "Random": (8066, 37), "TestMAX": (103, 5), "TARMAC": (8066, 61),
        "TGRL": (8066, 94), "DETERRENT": (1585, 99),
    },
    "c6288": {
        "rare_nets": 186, "gates": 2416,
        "Random": (3205, 54), "TestMAX": (38, 4), "TARMAC": (3205, 100),
        "TGRL": (3205, 85), "DETERRENT": (2096, 99),
    },
    "c7552": {
        "rare_nets": 282, "gates": 3513,
        "Random": (9357, 10), "TestMAX": (137, 4), "TARMAC": (9357, 73),
        "TGRL": (9357, 71), "DETERRENT": (5910, 85),
    },
    "s13207": {
        "rare_nets": 604, "gates": 1801,
        "Random": (9659, 3), "TestMAX": (106, 4), "TARMAC": (9659, 80),
        "TGRL": (9659, 5), "DETERRENT": (9600, 80),
    },
    "s15850": {
        "rare_nets": 649, "gates": 2412,
        "Random": (9512, 3), "TestMAX": (110, 3), "TARMAC": (9512, 79),
        "TGRL": (9512, 8), "DETERRENT": (6197, 81),
    },
    "s35932": {
        "rare_nets": 1151, "gates": 4736,
        "Random": (3083, 99), "TestMAX": (37, 68), "TARMAC": (3083, 100),
        "TGRL": (3083, 58), "DETERRENT": (6, 100),
    },
    "MIPS": {
        "rare_nets": 1005, "gates": 23511,
        "Random": (25000, 0), "TestMAX": (796, 0), "TARMAC": (25000, 100),
        "TGRL": (None, None), "DETERRENT": (1304, 97),
    },
}


__all__ = [
    "ExperimentProfile",
    "QUICK",
    "FULL",
    "TINY",
    "profile_by_name",
    "BenchmarkContext",
    "prepare_benchmark",
    "clear_context_cache",
    "PAPER_TABLE2",
]
