"""Figure 3: total-loss trend with default vs boosted exploration (c2670).

The paper shows that with the default PPO settings the total loss collapses
quickly (the agent commits to a sub-optimal policy), whereas with the boosted
exploration configuration (entropy coefficient 1.0 and GAE λ = 0.99) the loss
stays non-zero for much longer, keeping the policy stochastic and the set
diversity high.  The harness records both loss curves and the resulting set
diversity on the c2670 analogue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agent import DeterrentAgent
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table


@dataclass
class ExplorationResult:
    """Loss trajectory and diversity statistics for one exploration setting."""

    label: str
    loss_history: list[float]
    num_distinct_sets: int
    max_compatible: int

    @property
    def mean_late_loss(self) -> float:
        """Mean |total loss| over the last quarter of training (0 when converged)."""
        if not self.loss_history:
            return 0.0
        tail = self.loss_history[-max(1, len(self.loss_history) // 4):]
        return float(np.mean(np.abs(tail)))


def run(
    design: str = "c2670_like", profile: ExperimentProfile = QUICK
) -> dict[str, ExplorationResult]:
    """Train a default-exploration and a boosted-exploration agent."""
    context = prepare_benchmark(design, profile)
    results: dict[str, ExplorationResult] = {}
    for label, boosted in (("default", False), ("boosted", True)):
        config = profile.deterrent_config(boosted_exploration=boosted)
        agent = DeterrentAgent(context.compatibility, config)
        agent_result = agent.train()
        results[label] = ExplorationResult(
            label=label,
            loss_history=list(agent_result.summary.loss_history),
            num_distinct_sets=len(agent_result.distinct_sets),
            max_compatible=agent_result.max_compatible_set_size,
        )
    return results


def report(results: dict[str, ExplorationResult]) -> str:
    """Summarise both loss trajectories (the paper plots the full curves)."""
    headers = ["Exploration", "Updates", "Mean |loss| (late)", "#distinct sets", "Max #compat"]
    rows = []
    for label, result in results.items():
        rows.append([
            label, len(result.loss_history), result.mean_late_loss,
            result.num_distinct_sets, result.max_compatible,
        ])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure3``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
