"""Figure 3: total-loss trend with default vs boosted exploration (c2670).

The paper shows that with the default PPO settings the total loss collapses
quickly (the agent commits to a sub-optimal policy), whereas with the boosted
exploration configuration (entropy coefficient 1.0 and GAE λ = 0.99) the loss
stays non-zero for much longer, keeping the policy stochastic and the set
diversity high.  The harness records both loss curves and the resulting set
diversity on the c2670 analogue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agent import DeterrentAgent
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell


@dataclass
class ExplorationResult:
    """Loss trajectory and diversity statistics for one exploration setting."""

    label: str
    loss_history: list[float]
    num_distinct_sets: int
    max_compatible: int

    @property
    def mean_late_loss(self) -> float:
        """Mean |total loss| over the last quarter of training (0 when converged)."""
        if not self.loss_history:
            return 0.0
        tail = self.loss_history[-max(1, len(self.loss_history) // 4):]
        return float(np.mean(np.abs(tail)))


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design",)


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per exploration setting."""
    design = options.get("design", "c2670_like")
    return [
        GridCell(name=label, params={"design": design, "label": label, "boosted": boosted})
        for label, boosted in (("default", False), ("boosted", True))
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> ExplorationResult:
    """Train one agent with one exploration setting."""
    context = prepare_benchmark(params["design"], profile)
    config = profile.deterrent_config(boosted_exploration=params["boosted"])
    agent = DeterrentAgent(context.compatibility, config)
    agent_result = agent.train()
    return ExplorationResult(
        label=params["label"],
        loss_history=list(agent_result.summary.loss_history),
        num_distinct_sets=len(agent_result.distinct_sets),
        max_compatible=agent_result.max_compatible_set_size,
    )


def collect(results: list[ExplorationResult]) -> dict[str, ExplorationResult]:
    """Key the cell results by exploration label."""
    return {result.label: result for result in results}


def run(
    design: str = "c2670_like", profile: ExperimentProfile = QUICK
) -> dict[str, ExplorationResult]:
    """Train a default-exploration and a boosted-exploration agent."""
    from repro.runner.execution import run_experiment

    return run_experiment("figure3", profile=profile, options={"design": design}).collected


def report(results: dict[str, ExplorationResult]) -> str:
    """Summarise both loss trajectories (the paper plots the full curves)."""
    headers = ["Exploration", "Updates", "Mean |loss| (late)", "#distinct sets", "Max #compat"]
    rows = []
    for label, result in results.items():
        rows.append([
            label, len(result.loss_history), result.mean_late_loss,
            result.num_distinct_sets, result.max_compatible,
        ])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure3``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
