"""Sequential-circuit workload: multi-cycle trigger coverage beyond full scan.

Every other harness evaluates on the full-scan combinational view, where any
flip-flop can be loaded directly and a Trojan trigger is a single-cycle
event.  Real Trojan triggers fire across clock cycles on the raw sequential
netlist — a counter accumulates rare activations, or a shift register demands
a streak of them — and a full-scan test set says nothing about whether random
*sequences* from reset ever exercise such a trigger.

This harness opens that axis: for each grid cell it

1. loads the **raw** sequential benchmark (flip-flops in place),
2. extracts *state-dependent* rare nets — activation counts aggregated over
   ``cycles`` clock cycles of random input sequences stepped from reset
   (:func:`repro.simulation.rare_nets.extract_rare_nets` with ``cycles=``),
3. samples multi-cycle Trojans whose per-cycle condition uses those rare nets
   and whose temporal rule is ``mode``/``count`` (consecutive streak or
   cumulative counter),
4. measures trigger coverage of a random sequence workload with the batched
   multi-cycle evaluator, alongside the fraction of bare conditions that
   fired at least once (the single-cycle view) — the gap between the two
   columns is the temporal depth a combinational flow cannot see.

The grid is cycle depth × trigger arity (mode, count); the offline phase
(state-dependent rare nets, Trojan populations) is shared through the
artifact cache, so the harness is shard-safe under ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.library import benchmark_entry, load_benchmark
from repro.circuits.netlist import Netlist
from repro.core.patterns import SequenceSet
from repro.experiments.common import ExperimentProfile, QUICK, as_tuple
from repro.experiments.reporting import format_table
from repro.runner.cache import get_default_cache, netlist_fingerprint
from repro.runner.registry import GridCell
from repro.simulation.rare_nets import RareNet, extract_rare_nets
from repro.trojan.evaluation import sequence_trigger_coverage
from repro.trojan.insertion import sample_sequential_trojans
from repro.trojan.model import (
    SEQUENTIAL_TRIGGER_MODES,
    SequentialTrigger,
    SequentialTrojan,
)

#: Default grid: one mid-size sequential benchmark, two cycle depths, both
#: temporal rules at arity 2 and 3.
DEFAULT_DESIGNS = ("s13207_like",)
DEFAULT_CYCLES = (4, 8)
DEFAULT_MODES = SEQUENTIAL_TRIGGER_MODES
DEFAULT_COUNTS = (2, 3)

#: Rareness threshold for the state-dependent extraction (paper footnote 1).
RARENESS_THRESHOLD = 0.1

#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("designs", "cycles", "modes", "counts")


@dataclass
class SequentialCellResult:
    """Coverage of one (design, cycle depth, temporal rule) grid cell."""

    design: str
    cycles: int
    mode: str
    count: int
    num_rare_nets: int
    num_trojans: int
    num_sequences: int
    condition_fired_percent: float
    coverage_percent: float


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per (design, cycle depth, mode, count) combination."""
    designs = as_tuple(options.get("designs", DEFAULT_DESIGNS))
    cycle_depths = as_tuple(options.get("cycles", DEFAULT_CYCLES))
    modes = as_tuple(options.get("modes", DEFAULT_MODES))
    counts = as_tuple(options.get("counts", DEFAULT_COUNTS))
    for design in designs:
        if not benchmark_entry(str(design)).sequential:
            raise ValueError(
                f"design {design!r} is combinational; the sequential harness "
                "needs a benchmark with flip-flops (s13207_like, s15850_like, "
                "s35932_like)"
            )
    for mode in modes:
        if mode not in SEQUENTIAL_TRIGGER_MODES:
            raise ValueError(
                f"mode must be one of {SEQUENTIAL_TRIGGER_MODES}, got {mode!r}"
            )
    grid: list[GridCell] = []
    for design in designs:
        for cycles_ in cycle_depths:
            for mode in modes:
                for count in counts:
                    if int(count) < 1:
                        raise ValueError(f"count must be >= 1, got {count}")
                    grid.append(
                        GridCell(
                            name=f"{design}-c{int(cycles_)}-{mode}-k{int(count)}",
                            params={
                                "design": str(design),
                                "cycles": int(cycles_),
                                "mode": str(mode),
                                "count": int(count),
                            },
                        )
                    )
    return grid


def _rare_nets(netlist: Netlist, cycles: int, profile: ExperimentProfile) -> list[RareNet]:
    """State-dependent rare nets, shared through the artifact cache."""

    def _extract() -> list[RareNet]:
        return extract_rare_nets(
            netlist,
            threshold=RARENESS_THRESHOLD,
            num_patterns=profile.num_probability_patterns,
            seed=profile.seed,
            cycles=cycles,
        )

    cache = get_default_cache()
    if cache is None:
        return _extract()
    return cache.fetch(
        "sequential_rare_nets",
        _extract,
        netlist=netlist_fingerprint(netlist),
        cycles=cycles,
        threshold=RARENESS_THRESHOLD,
        num_sequences=profile.num_probability_patterns,
        seed=profile.seed,
    )


def _trojans(
    netlist: Netlist,
    rare_nets: list[RareNet],
    mode: str,
    count: int,
    profile: ExperimentProfile,
) -> list[SequentialTrojan]:
    """Multi-cycle Trojan population, shared through the artifact cache."""

    def _sample() -> list[SequentialTrojan]:
        return sample_sequential_trojans(
            netlist,
            rare_nets,
            num_trojans=profile.num_trojans,
            trigger_width=profile.trigger_width,
            mode=mode,
            count=count,
            seed=profile.seed + 1,
        )

    cache = get_default_cache()
    if cache is None:
        return _sample()
    return cache.fetch(
        "sequential_trojans",
        _sample,
        netlist=netlist_fingerprint(netlist),
        rare_nets=[(rare.net, rare.rare_value) for rare in rare_nets],
        num_trojans=profile.num_trojans,
        trigger_width=profile.trigger_width,
        mode=mode,
        count=count,
        seed=profile.seed + 1,
    )


def run_cell(params: dict, profile: ExperimentProfile) -> SequentialCellResult | None:
    """Evaluate one (design, cycles, mode, count) cell (None if no Trojans fit)."""
    design = params["design"]
    cycles = params["cycles"]
    mode = params["mode"]
    count = params["count"]
    netlist = load_benchmark(design, combinational_view=False)
    rare_nets = _rare_nets(netlist, cycles, profile)
    trojans = _trojans(netlist, rare_nets, mode, count, profile)
    if not trojans:
        return None
    sequences = SequenceSet.random(
        netlist,
        num_sequences=profile.k_patterns,
        cycles=cycles,
        seed=profile.seed + 2,
        technique="Random sequences",
    )
    # Single-cycle view of the same conditions: did the bare conjunction fire
    # at least once?  The drop from this column to the temporal coverage is
    # what the full-scan flow cannot measure.  Both populations ride on one
    # clean-netlist simulation by evaluating them in a single batched call.
    single_cycle = [
        SequentialTrojan(
            trigger=SequentialTrigger(
                condition=trojan.trigger.condition, mode=trojan.trigger.mode, count=1
            ),
            payload_output=trojan.payload_output,
            name=trojan.name,
        )
        for trojan in trojans
    ]
    combined = sequence_trigger_coverage(netlist, trojans + single_cycle, sequences)
    detected = combined.detected[: len(trojans)]
    condition_fired = combined.detected[len(trojans):]
    return SequentialCellResult(
        design=design,
        cycles=cycles,
        mode=mode,
        count=count,
        num_rare_nets=len(rare_nets),
        num_trojans=len(trojans),
        num_sequences=len(sequences),
        condition_fired_percent=100.0 * sum(condition_fired) / len(trojans),
        coverage_percent=100.0 * sum(detected) / len(trojans),
    )


def collect(results: list[SequentialCellResult | None]) -> list[SequentialCellResult]:
    """Drop skipped cells, keeping grid order."""
    return [result for result in results if result is not None]


def report(results: list[SequentialCellResult]) -> str:
    """Render the cycle-depth × trigger-arity coverage table."""
    headers = [
        "Design", "Cycles", "Mode", "k", "#rare", "#HT",
        "Sequences", "Cond fired (%)", "Coverage (%)",
    ]
    rows = [
        [
            result.design, result.cycles, result.mode, result.count,
            result.num_rare_nets, result.num_trojans, result.num_sequences,
            round(result.condition_fired_percent, 1),
            round(result.coverage_percent, 1),
        ]
        for result in results
    ]
    table = format_table(headers, rows)
    note = (
        "Multi-cycle trigger coverage of random sequences from reset on the raw\n"
        "sequential netlist; 'Cond fired' is the single-cycle view of the same\n"
        "trigger conditions (the full-scan assumption).  The gap between the two\n"
        "columns is the temporal depth a combinational test flow cannot see."
    )
    return f"{table}\n\n{note}"


def run(
    designs: tuple[str, ...] = DEFAULT_DESIGNS,
    cycles: tuple[int, ...] = DEFAULT_CYCLES,
    modes: tuple[str, ...] = DEFAULT_MODES,
    counts: tuple[int, ...] = DEFAULT_COUNTS,
    profile: ExperimentProfile = QUICK,
) -> list[SequentialCellResult]:
    """Run the sequential workload grid through the experiment runner."""
    from repro.runner.execution import run_experiment

    return run_experiment(
        "sequential",
        profile=profile,
        options={
            "designs": tuple(designs),
            "cycles": tuple(cycles),
            "modes": tuple(modes),
            "counts": tuple(counts),
        },
    ).collected


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.sequential``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
