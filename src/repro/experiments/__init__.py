"""Experiment harnesses that regenerate every table and figure of the paper.

Each module exposes ``run(profile=...)`` returning structured results and a
``main()`` entry point that prints the same rows/series the paper reports
(paper reference values alongside the measured ones).  Modules:

- :mod:`repro.experiments.table1`   — reward-timing comparison (Table 1).
- :mod:`repro.experiments.table2`   — coverage / test-length comparison (Table 2).
- :mod:`repro.experiments.figure2`  — reward × masking combinations (Figure 2).
- :mod:`repro.experiments.figure3`  — loss trends, default vs boosted exploration (Figure 3).
- :mod:`repro.experiments.figure5`  — trigger-width sweep (Figure 5).
- :mod:`repro.experiments.figure6`  — coverage vs number of patterns (Figure 6).
- :mod:`repro.experiments.figure7`  — rareness-threshold sweep (Figure 7).
- :mod:`repro.experiments.transfer` — §4.5 threshold-transfer experiment.
- :mod:`repro.experiments.ablations`— design-choice ablations from DESIGN.md.
- :mod:`repro.experiments.pipeline_run` — end-to-end Figure-4 pipeline flow.

Every harness implements the runner protocol (``cells`` / ``run_cell`` /
``collect`` / ``report``) and is registered in
:mod:`repro.runner.registry`, so it can execute through
``deterrent run <name>`` with any profile (``tiny``, ``quick``, ``full``)
and any worker-process count; the module-level ``run(...)`` functions remain
as thin wrappers over the runner for programmatic use.
"""

from repro.experiments.common import (
    ExperimentProfile,
    FULL,
    QUICK,
    TINY,
    prepare_benchmark,
)

__all__ = ["ExperimentProfile", "QUICK", "FULL", "TINY", "prepare_benchmark"]
