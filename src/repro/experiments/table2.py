"""Table 2: trigger coverage and test length of all techniques on all designs.

For every benchmark the harness runs Random, the TestMAX-style ATPG proxy,
TARMAC, TGRL and DETERRENT, evaluates their pattern sets against the same
population of randomly inserted width-4 Trojans, and prints the measured
coverage / test-length rows next to the paper's reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.atpg import atpg_pattern_set
from repro.baselines.random_patterns import random_pattern_set
from repro.baselines.tarmac import TarmacConfig, tarmac_pattern_set
from repro.baselines.tgrl import TgrlConfig, tgrl_pattern_set
from repro.circuits.library import TABLE2_BENCHMARKS, benchmark_entry
from repro.core.agent import DeterrentAgent
from repro.core.patterns import PatternSet, generate_patterns
from repro.experiments.common import (
    QUICK,
    BenchmarkContext,
    ExperimentProfile,
    PAPER_TABLE2,
    as_tuple,
    prepare_benchmark,
)
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell
from repro.trojan.evaluation import trigger_coverage

#: Benchmarks used by default outside the full profile (one per class).
QUICK_DESIGNS = ("c2670_like", "c6288_like", "s13207_like", "mips16_like")

#: Canonical technique ordering (matches the paper's column order).
ALL_TECHNIQUES = ("Random", "ATPG", "TARMAC", "TGRL", "DETERRENT")

#: Techniques that must run in the same grid cell: the paper sizes the random
#: budget to TGRL's test length, so Random depends on TGRL's output.
TECHNIQUE_GROUPS = (("TGRL", "Random"), ("ATPG",), ("TARMAC",), ("DETERRENT",))


@dataclass
class TechniqueOutcome:
    """Coverage and test length of one technique on one design."""

    technique: str
    test_length: int
    coverage_percent: float


@dataclass
class Table2Row:
    """All techniques' outcomes on one design."""

    design: str
    paper_design: str
    num_rare_nets: int
    num_gates: int
    outcomes: dict[str, TechniqueOutcome] = field(default_factory=dict)


def _technique_outcomes(
    context: BenchmarkContext,
    profile: ExperimentProfile,
    techniques: tuple[str, ...],
) -> dict[str, TechniqueOutcome]:
    """Build and evaluate the pattern sets of the requested techniques."""
    pattern_sets: dict[str, PatternSet] = {}
    if "TGRL" in techniques:
        pattern_sets["TGRL"] = tgrl_pattern_set(
            context.netlist,
            context.compatibility.rare_nets,
            TgrlConfig(
                total_training_steps=profile.tgrl_training_steps,
                num_envs=profile.num_envs,
                seed=profile.seed,
            ),
        )
    if "Random" in techniques:
        # The paper sizes the random budget to TGRL's test length.
        budget = len(pattern_sets.get("TGRL", [])) or profile.tgrl_training_steps
        pattern_sets["Random"] = random_pattern_set(context.netlist, budget, seed=profile.seed)
    if "ATPG" in techniques:
        pattern_sets["ATPG"] = atpg_pattern_set(
            context.netlist, context.compatibility.rare_nets,
            justifier=context.compatibility.justifier,
        )
    if "TARMAC" in techniques:
        pattern_sets["TARMAC"] = tarmac_pattern_set(
            context.compatibility,
            TarmacConfig(num_cliques=profile.num_cliques, seed=profile.seed),
        )
    if "DETERRENT" in techniques:
        agent = DeterrentAgent(context.compatibility, profile.deterrent_config())
        agent_result = agent.train()
        selected = agent_result.largest_sets(profile.k_patterns)
        pattern_sets["DETERRENT"] = generate_patterns(
            context.compatibility, selected, technique="DETERRENT"
        )

    outcomes: dict[str, TechniqueOutcome] = {}
    for technique, pattern_set in pattern_sets.items():
        coverage = trigger_coverage(context.netlist, context.trojans, pattern_set)
        outcomes[technique] = TechniqueOutcome(
            technique=technique,
            test_length=len(pattern_set),
            coverage_percent=coverage.coverage_percent,
        )
    return outcomes


def run_design(
    context: BenchmarkContext,
    profile: ExperimentProfile = QUICK,
    techniques: tuple[str, ...] = ALL_TECHNIQUES,
) -> Table2Row:
    """Run the requested techniques on one prepared benchmark."""
    entry = benchmark_entry(context.name)
    row = Table2Row(
        design=context.name,
        paper_design=entry.paper_name,
        num_rare_nets=context.num_rare_nets,
        num_gates=context.netlist.num_gates,
    )
    row.outcomes = _technique_outcomes(context, profile, techniques)
    return row


@dataclass
class DesignGroupCell:
    """One technique group evaluated on one design (one grid cell)."""

    design: str
    num_rare_nets: int
    num_gates: int
    outcomes: dict[str, TechniqueOutcome]


def default_designs(profile: ExperimentProfile) -> tuple[str, ...]:
    """The designs Table 2 runs on when none are requested explicitly."""
    return TABLE2_BENCHMARKS if profile.name == "full" else QUICK_DESIGNS


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("designs", "techniques")


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per (design, technique group)."""
    designs = as_tuple(options.get("designs") or default_designs(profile))
    techniques = as_tuple(options.get("techniques", ALL_TECHNIQUES))
    grid: list[GridCell] = []
    for design in designs:
        for group in TECHNIQUE_GROUPS:
            members = tuple(t for t in group if t in techniques)
            if not members:
                continue
            grid.append(
                GridCell(
                    name=f"{design}-{'+'.join(members)}",
                    params={"design": design, "techniques": members},
                )
            )
    return grid


def run_cell(params: dict, profile: ExperimentProfile) -> DesignGroupCell:
    """Evaluate one technique group on one design."""
    context = prepare_benchmark(params["design"], profile)
    return DesignGroupCell(
        design=params["design"],
        num_rare_nets=context.num_rare_nets,
        num_gates=context.netlist.num_gates,
        outcomes=_technique_outcomes(context, profile, tuple(params["techniques"])),
    )


def collect(results: list[DesignGroupCell]) -> list[Table2Row]:
    """Merge the group cells into one row per design (canonical column order)."""
    merged: dict[str, DesignGroupCell] = {}
    outcomes: dict[str, dict[str, TechniqueOutcome]] = {}
    order: list[str] = []
    for cell in results:
        if cell.design not in merged:
            merged[cell.design] = cell
            outcomes[cell.design] = {}
            order.append(cell.design)
        outcomes[cell.design].update(cell.outcomes)
    rows: list[Table2Row] = []
    for design in order:
        entry = benchmark_entry(design)
        row = Table2Row(
            design=design,
            paper_design=entry.paper_name,
            num_rare_nets=merged[design].num_rare_nets,
            num_gates=merged[design].num_gates,
        )
        row.outcomes = {
            technique: outcomes[design][technique]
            for technique in ALL_TECHNIQUES
            if technique in outcomes[design]
        }
        rows.append(row)
    return rows


def run(
    designs: tuple[str, ...] | None = None,
    profile: ExperimentProfile = QUICK,
    techniques: tuple[str, ...] = ALL_TECHNIQUES,
) -> list[Table2Row]:
    """Run the Table 2 comparison over the requested designs."""
    from repro.runner.execution import run_experiment

    options = {"techniques": tuple(techniques)}
    if designs is not None:
        options["designs"] = tuple(designs)
    return run_experiment("table2", profile=profile, options=options).collected


def report(rows: list[Table2Row]) -> str:
    """Format measured rows next to the paper's Table 2 values."""
    headers = ["Design", "#rare", "Technique", "Test len", "Cov (%)",
               "Paper len", "Paper cov (%)"]
    table_rows: list[list[object]] = []
    for row in rows:
        paper = PAPER_TABLE2.get(row.paper_design, {})
        for technique, outcome in row.outcomes.items():
            paper_key = "TestMAX" if technique == "ATPG" else technique
            paper_len, paper_cov = paper.get(paper_key, (None, None))
            table_rows.append([
                row.design, row.num_rare_nets, technique,
                outcome.test_length, outcome.coverage_percent,
                paper_len, paper_cov,
            ])
    return format_table(headers, table_rows)


def reduction_vs_baselines(rows: list[Table2Row]) -> float:
    """Average test-length reduction of DETERRENT vs TARMAC and TGRL.

    Mirrors the paper's headline "169x fewer patterns" metric (computed over
    designs where all three techniques produced patterns).
    """
    ratios: list[float] = []
    for row in rows:
        deterrent = row.outcomes.get("DETERRENT")
        if deterrent is None or deterrent.test_length == 0:
            continue
        for baseline in ("TARMAC", "TGRL"):
            outcome = row.outcomes.get(baseline)
            if outcome is not None and outcome.test_length > 0:
                ratios.append(outcome.test_length / deterrent.test_length)
    if not ratios:
        return 0.0
    return sum(ratios) / len(ratios)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.table2 [quick|full]``."""
    from repro.experiments.common import profile_by_name

    profile = profile_by_name(profile_name)
    rows = run(profile=profile)
    print(report(rows))
    print(f"\nAverage test-length reduction of DETERRENT vs TARMAC/TGRL: "
          f"{reduction_vs_baselines(rows):.1f}x (paper: 169x)")


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
