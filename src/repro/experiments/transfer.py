"""§4.5 threshold-transfer experiment.

The paper trains the agent on the rare nets of a *larger* threshold (0.14) and
evaluates the generated test patterns against Trojans built from the rare nets
of the *smaller* threshold (0.1), observing 99% coverage — evidence that one
agent trained on a superset of rare nets transfers to subsets.  The harness
repeats the experiment on the c6288 analogue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.runner.registry import GridCell
from repro.trojan.evaluation import trigger_coverage


@dataclass
class TransferResult:
    """Outcome of training at one threshold and evaluating at another."""

    design: str
    train_threshold: float
    eval_threshold: float
    train_rare_nets: int
    eval_rare_nets: int
    test_length: int
    coverage_percent: float


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design", "train_threshold", "eval_threshold")


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """A single grid cell: the train→evaluate threshold pair."""
    params = {
        "design": options.get("design", "c6288_like"),
        "train_threshold": options.get("train_threshold", 0.14),
        "eval_threshold": options.get("eval_threshold", 0.10),
    }
    return [GridCell(name=f"{params['train_threshold']}-to-{params['eval_threshold']}",
                     params=params)]


def run_cell(params: dict, profile: ExperimentProfile) -> TransferResult:
    """Train at one threshold; evaluate on Trojans from the other."""
    return _run_transfer(
        params["design"], params["train_threshold"], params["eval_threshold"], profile
    )


def collect(results: list[TransferResult]) -> TransferResult:
    """The single cell result."""
    return results[0]


def run(
    design: str = "c6288_like",
    train_threshold: float = 0.14,
    eval_threshold: float = 0.10,
    profile: ExperimentProfile = QUICK,
) -> TransferResult:
    """Train at ``train_threshold``; evaluate on Trojans from ``eval_threshold``."""
    from repro.runner.execution import run_experiment

    return run_experiment(
        "transfer",
        profile=profile,
        options={
            "design": design,
            "train_threshold": train_threshold,
            "eval_threshold": eval_threshold,
        },
    ).collected


def _run_transfer(
    design: str,
    train_threshold: float,
    eval_threshold: float,
    profile: ExperimentProfile,
) -> TransferResult:
    train_context = prepare_benchmark(design, profile, threshold=train_threshold)
    eval_context = prepare_benchmark(design, profile, threshold=eval_threshold)

    agent = DeterrentAgent(
        train_context.compatibility,
        profile.deterrent_config(rareness_threshold=train_threshold),
    )
    agent_result = agent.train()
    patterns = generate_patterns(
        train_context.compatibility,
        agent_result.largest_sets(profile.k_patterns),
        technique="DETERRENT",
    )
    coverage = trigger_coverage(eval_context.netlist, eval_context.trojans, patterns)
    return TransferResult(
        design=design,
        train_threshold=train_threshold,
        eval_threshold=eval_threshold,
        train_rare_nets=train_context.num_rare_nets,
        eval_rare_nets=eval_context.num_rare_nets,
        test_length=len(patterns),
        coverage_percent=coverage.coverage_percent,
    )


def report(result: TransferResult) -> str:
    """One-line paper-vs-measured summary."""
    return (
        f"{result.design}: trained on {result.train_rare_nets} rare nets "
        f"(threshold {result.train_threshold}), evaluated on Trojans from "
        f"{result.eval_rare_nets} rare nets (threshold {result.eval_threshold}): "
        f"coverage {result.coverage_percent:.1f}% with {result.test_length} patterns "
        f"(paper: 99%)"
    )


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.transfer``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
