"""Figure 2: reward-timing × masking combinations on the MIPS analogue.

The paper compares four agent architectures — {reward at all steps,
end-of-episode reward} × {masking, no masking} — on two axes: training rate in
episodes/minute and the maximum number of compatible rare nets found.  The
conclusion (replicated here) is that masking always helps, per-step rewards
find the largest sets, and end-of-episode rewards train fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table

#: Approximate values read from the paper's Figure 2 bar chart (MIPS).
PAPER_FIGURE2 = {
    ("per_step", False): {"episodes_per_min": 1, "max_compatible": 52},
    ("per_step", True): {"episodes_per_min": 1, "max_compatible": 60},
    ("end_of_episode", False): {"episodes_per_min": 55, "max_compatible": 50},
    ("end_of_episode", True): {"episodes_per_min": 63, "max_compatible": 55},
}


@dataclass
class ComboResult:
    """Metrics of one (reward mode, masking) combination."""

    reward_mode: str
    masking: bool
    episodes_per_minute: float
    max_compatible: int


def run(
    design: str = "mips16_like", profile: ExperimentProfile = QUICK
) -> list[ComboResult]:
    """Train one agent per combination and collect Figure 2's metrics."""
    context = prepare_benchmark(design, profile)
    results: list[ComboResult] = []
    for reward_mode in ("per_step", "end_of_episode"):
        for masking in (False, True):
            config = profile.deterrent_config(reward_mode=reward_mode, masking=masking)
            agent = DeterrentAgent(context.compatibility, config)
            agent_result = agent.train()
            results.append(
                ComboResult(
                    reward_mode=reward_mode,
                    masking=masking,
                    episodes_per_minute=agent_result.summary.episodes_per_minute,
                    max_compatible=agent_result.max_compatible_set_size,
                )
            )
    return results


def report(results: list[ComboResult]) -> str:
    """Format the four combinations next to the paper's Figure 2 values."""
    headers = ["Combination", "Eps/min", "Max #compat", "Paper eps/min", "Paper max"]
    labels = {"per_step": "All rew", "end_of_episode": "Eoe rew"}
    rows = []
    for result in results:
        label = f"{labels[result.reward_mode]} + {'M' if result.masking else 'NM'}"
        paper = PAPER_FIGURE2[(result.reward_mode, result.masking)]
        rows.append([
            label, round(result.episodes_per_minute, 2), result.max_compatible,
            paper["episodes_per_min"], paper["max_compatible"],
        ])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure2``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
