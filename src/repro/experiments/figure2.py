"""Figure 2: reward-timing × masking combinations on the MIPS analogue.

The paper compares four agent architectures — {reward at all steps,
end-of-episode reward} × {masking, no masking} — on two axes: training rate in
episodes/minute and the maximum number of compatible rare nets found.  The
conclusion (replicated here) is that masking always helps, per-step rewards
find the largest sets, and end-of-episode rewards train fastest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell

#: Approximate values read from the paper's Figure 2 bar chart (MIPS).
PAPER_FIGURE2 = {
    ("per_step", False): {"episodes_per_min": 1, "max_compatible": 52},
    ("per_step", True): {"episodes_per_min": 1, "max_compatible": 60},
    ("end_of_episode", False): {"episodes_per_min": 55, "max_compatible": 50},
    ("end_of_episode", True): {"episodes_per_min": 63, "max_compatible": 55},
}


@dataclass
class ComboResult:
    """Metrics of one (reward mode, masking) combination."""

    reward_mode: str
    masking: bool
    episodes_per_minute: float
    max_compatible: int


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design",)


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per (reward mode, masking) combination."""
    design = options.get("design", "mips16_like")
    return [
        GridCell(
            name=f"{reward_mode}-{'masked' if masking else 'unmasked'}",
            params={"design": design, "reward_mode": reward_mode, "masking": masking},
        )
        for reward_mode in ("per_step", "end_of_episode")
        for masking in (False, True)
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> ComboResult:
    """Train one agent for one combination and collect its metrics."""
    context = prepare_benchmark(params["design"], profile)
    config = profile.deterrent_config(
        reward_mode=params["reward_mode"], masking=params["masking"]
    )
    agent = DeterrentAgent(context.compatibility, config)
    agent_result = agent.train()
    return ComboResult(
        reward_mode=params["reward_mode"],
        masking=params["masking"],
        episodes_per_minute=agent_result.summary.episodes_per_minute,
        max_compatible=agent_result.max_compatible_set_size,
    )


def collect(results: list[ComboResult]) -> list[ComboResult]:
    """Cell results, in grid order."""
    return results


def run(
    design: str = "mips16_like", profile: ExperimentProfile = QUICK
) -> list[ComboResult]:
    """Run all four combinations through the experiment runner."""
    from repro.runner.execution import run_experiment

    return run_experiment("figure2", profile=profile, options={"design": design}).collected


def report(results: list[ComboResult]) -> str:
    """Format the four combinations next to the paper's Figure 2 values."""
    headers = ["Combination", "Eps/min", "Max #compat", "Paper eps/min", "Paper max"]
    labels = {"per_step": "All rew", "end_of_episode": "Eoe rew"}
    rows = []
    for result in results:
        label = f"{labels[result.reward_mode]} + {'M' if result.masking else 'NM'}"
        paper = PAPER_FIGURE2[(result.reward_mode, result.masking)]
        rows.append([
            label, round(result.episodes_per_minute, 2), result.max_compatible,
            paper["episodes_per_min"], paper["max_compatible"],
        ])
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure2``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
