"""Figure 7: impact of the rareness threshold on rare nets and coverage (c6288).

Raising the rareness threshold increases the number of rare nets (and hence
the number of potential trigger combinations) combinatorially; the paper shows
that DETERRENT's trigger coverage stays within 2% across thresholds 0.10-0.14.
The harness sweeps the same thresholds on the c6288 analogue, re-running the
offline phase and the agent at each threshold and evaluating against Trojans
sampled from that threshold's rare-net population.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.trojan.evaluation import trigger_coverage

#: Thresholds from the paper's Figure 7.
DEFAULT_THRESHOLDS = (0.10, 0.11, 0.12, 0.13, 0.14)


@dataclass
class ThresholdPoint:
    """Rare-net count and DETERRENT coverage at one rareness threshold."""

    threshold: float
    num_rare_nets: int
    coverage_percent: float
    test_length: int


def run(
    design: str = "c6288_like",
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    profile: ExperimentProfile = QUICK,
) -> list[ThresholdPoint]:
    """Run DETERRENT at each rareness threshold."""
    points: list[ThresholdPoint] = []
    for threshold in thresholds:
        context = prepare_benchmark(design, profile, threshold=threshold)
        if not context.trojans:
            continue
        agent = DeterrentAgent(
            context.compatibility,
            profile.deterrent_config(rareness_threshold=threshold),
        )
        agent_result = agent.train()
        patterns = generate_patterns(
            context.compatibility,
            agent_result.largest_sets(profile.k_patterns),
            technique="DETERRENT",
        )
        coverage = trigger_coverage(context.netlist, context.trojans, patterns)
        points.append(
            ThresholdPoint(
                threshold=threshold,
                num_rare_nets=context.num_rare_nets,
                coverage_percent=coverage.coverage_percent,
                test_length=len(patterns),
            )
        )
    return points


def report(points: list[ThresholdPoint]) -> str:
    """Format the threshold sweep (the paper plots nets and coverage together)."""
    headers = ["Threshold", "#rare nets", "Test length", "DETERRENT cov (%)"]
    rows = [[p.threshold, p.num_rare_nets, p.test_length, p.coverage_percent] for p in points]
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure7``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
