"""Figure 7: impact of the rareness threshold on rare nets and coverage (c6288).

Raising the rareness threshold increases the number of rare nets (and hence
the number of potential trigger combinations) combinatorially; the paper shows
that DETERRENT's trigger coverage stays within 2% across thresholds 0.10-0.14.
The harness sweeps the same thresholds on the c6288 analogue, re-running the
offline phase and the agent at each threshold and evaluating against Trojans
sampled from that threshold's rare-net population.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import ExperimentProfile, QUICK, as_tuple, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.runner.registry import GridCell
from repro.trojan.evaluation import trigger_coverage

#: Thresholds from the paper's Figure 7.
DEFAULT_THRESHOLDS = (0.10, 0.11, 0.12, 0.13, 0.14)


@dataclass
class ThresholdPoint:
    """Rare-net count and DETERRENT coverage at one rareness threshold."""

    threshold: float
    num_rare_nets: int
    coverage_percent: float
    test_length: int


#: Option keys this harness accepts (validated by the runner).
OPTIONS = ("design", "thresholds")


def cells(profile: ExperimentProfile, options: dict) -> list[GridCell]:
    """One grid cell per rareness threshold."""
    design = options.get("design", "c6288_like")
    thresholds = as_tuple(options.get("thresholds", DEFAULT_THRESHOLDS))
    return [
        GridCell(name=f"threshold-{threshold}", params={"design": design,
                                                        "threshold": threshold})
        for threshold in thresholds
    ]


def run_cell(params: dict, profile: ExperimentProfile) -> ThresholdPoint | None:
    """Run DETERRENT at one rareness threshold (None if no Trojans fit)."""
    threshold = params["threshold"]
    context = prepare_benchmark(params["design"], profile, threshold=threshold)
    if not context.trojans:
        return None
    agent = DeterrentAgent(
        context.compatibility,
        profile.deterrent_config(rareness_threshold=threshold),
    )
    agent_result = agent.train()
    patterns = generate_patterns(
        context.compatibility,
        agent_result.largest_sets(profile.k_patterns),
        technique="DETERRENT",
    )
    coverage = trigger_coverage(context.netlist, context.trojans, patterns)
    return ThresholdPoint(
        threshold=threshold,
        num_rare_nets=context.num_rare_nets,
        coverage_percent=coverage.coverage_percent,
        test_length=len(patterns),
    )


def collect(results: list[ThresholdPoint | None]) -> list[ThresholdPoint]:
    """Drop skipped thresholds, keeping sweep order."""
    return [point for point in results if point is not None]


def run(
    design: str = "c6288_like",
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    profile: ExperimentProfile = QUICK,
) -> list[ThresholdPoint]:
    """Run DETERRENT at each rareness threshold."""
    from repro.runner.execution import run_experiment

    return run_experiment(
        "figure7", profile=profile,
        options={"design": design, "thresholds": tuple(thresholds)},
    ).collected


def report(points: list[ThresholdPoint]) -> str:
    """Format the threshold sweep (the paper plots nets and coverage together)."""
    headers = ["Threshold", "#rare nets", "Test length", "DETERRENT cov (%)"]
    rows = [[p.threshold, p.num_rare_nets, p.test_length, p.coverage_percent] for p in points]
    return format_table(headers, rows)


def main(profile_name: str = "quick") -> None:
    """Command-line entry point: ``python -m repro.experiments.figure7``."""
    from repro.experiments.common import profile_by_name

    print(report(run(profile=profile_by_name(profile_name))))


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
