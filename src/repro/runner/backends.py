"""Pluggable execution backends: where a unit of work actually runs.

Every parallel stage of the reproduction — grid cells in
:mod:`repro.runner.execution`, SAT shards in :mod:`repro.runner.parallel` —
used to hard-code a ``ProcessPoolExecutor``.  This module is the seam that
removes that assumption: an :class:`ExecutionBackend` turns ``(max_workers,
initializer, initargs)`` into a ``concurrent.futures.Executor``-shaped
object, and the callers only ever talk to that interface.  Three
implementations ship:

- :class:`SerialBackend` — runs everything in the calling process, in
  submission order.  The initializer runs once, in-process, so worker-state
  contracts (e.g. the per-worker solver stacks in ``parallel.py``) hold
  unchanged.  This is the ``--jobs 1`` path, the reference for bit-identity
  checks, and the graceful-degradation target when a pooled backend keeps
  failing.
- :class:`ProcessPoolBackend` — the classic ``ProcessPoolExecutor``: real
  isolation, real parallelism, and the only backend whose workers can
  genuinely crash (a dead worker surfaces as ``BrokenProcessPool``).
- :class:`ThreadPoolBackend` — an in-process ``ThreadPoolExecutor``: no
  pickling, no fork cost.  Suited to I/O-bound cells and cheap tests;
  CPU-bound SAT work gains little under the GIL.  Worker initializers run
  once per thread, so per-worker state must be thread-local (which the
  sharded SAT paths guarantee).

Backends are deliberately *dumb*: no retries, no timeouts, no fault
handling.  That robustness layer lives in :mod:`repro.runner.resilience`,
which drives any backend through this interface — including rebuilding a
broken pool and downgrading to :class:`SerialBackend` mid-run.

Backends resolve by *registered name* (:func:`register_backend` /
:func:`backend_names`), so out-of-tree implementations plug into
``--backend`` without touching this module.  The durable-queue backend
(:mod:`repro.service.queue_backend`, the detection-as-a-service remote
half) registers lazily under ``"queue"`` — its factory imports the service
package only when the name is actually requested.
"""

from __future__ import annotations

from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, runtime_checkable

#: The built-in in-process backends (historical constant; the full set of
#: resolvable names — including registered extras like ``"queue"`` — comes
#: from :func:`backend_names`).
BACKEND_NAMES = ("serial", "process", "thread")


@runtime_checkable
class ExecutionBackend(Protocol):
    """The backend seam: build an executor for one round of work.

    Attributes:
        name: stable identifier (``"serial"``, ``"process"``, ``"thread"``,
            or a custom name for third-party backends).
        workers_are_processes: True when workers live in dedicated
            processes — a scripted ``crash`` fault may really ``os._exit``,
            and an abandoned executor's workers can be terminated.
        supports_timeout: True when the caller can keep going after a
            worker exceeds a per-attempt timeout (pooled backends); the
            serial backend runs work inline and cannot preempt it.
    """

    name: str
    workers_are_processes: bool
    supports_timeout: bool

    def make_executor(
        self,
        max_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Executor:
        """A fresh executor; the caller owns its lifecycle.

        The returned executor may additionally expose two *optional* hooks
        the resilience layer probes for: ``cancel_pending()`` (withdraw
        work that never started, called when a round is abandoned) and
        ``backend_counters() -> dict[str, int]`` (self-reported robustness
        counters — the queue executor reports worker ``respawns``, lease
        ``reclaims``, and total job ``deliveries``; collected via
        :func:`collect_executor_counters` before shutdown).
        """
        ...


def collect_executor_counters(executor: Executor) -> dict[str, int]:
    """An executor's self-reported counters, or ``{}``.

    Probes the optional ``backend_counters()`` hook (see
    :meth:`ExecutionBackend.make_executor`).  Must be called *before* the
    executor shuts down: the queue executor derives its counters from an
    event log that lives in a directory shutdown may delete.  Never raises —
    counters are telemetry, not control flow.
    """
    collect = getattr(executor, "backend_counters", None)
    if not callable(collect):
        return {}
    try:
        counters = collect()
    except Exception:  # noqa: BLE001 - telemetry must not fail the round
        return {}
    if not isinstance(counters, dict):
        return {}
    return {
        str(key): int(value)
        for key, value in counters.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


class _SerialExecutor(Executor):
    """Inline ``Executor``: ``submit`` runs the work before returning.

    The initializer runs lazily on the first submit so that an initializer
    failure surfaces as that future's exception — the same observable
    behaviour a broken pool initializer has — rather than at construction.
    """

    def __init__(
        self, initializer: Callable[..., None] | None, initargs: tuple
    ) -> None:
        self._initializer = initializer
        self._initargs = initargs
        self._initialized = initializer is None

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        future: Future = Future()
        if not self._initialized:
            try:
                self._initializer(*self._initargs)
            except BaseException as error:  # noqa: BLE001 - mirrored into the future
                future.set_exception(error)
                return future
            self._initialized = True
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - mirrored into the future
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        pass


class SerialBackend:
    """Run every task inline in the calling process (the reference path)."""

    name = "serial"
    workers_are_processes = False
    supports_timeout = False

    def make_executor(
        self,
        max_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Executor:
        return _SerialExecutor(initializer, initargs)


class ProcessPoolBackend:
    """Dedicated worker processes (the historical hard-coded default)."""

    name = "process"
    workers_are_processes = True
    supports_timeout = True

    def make_executor(
        self,
        max_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Executor:
        return ProcessPoolExecutor(
            max_workers=max_workers, initializer=initializer, initargs=initargs
        )


class ThreadPoolBackend:
    """In-process worker threads (I/O-bound cells, cheap tests)."""

    name = "thread"
    workers_are_processes = False
    supports_timeout = True

    def make_executor(
        self,
        max_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Executor:
        return ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix="deterrent-worker",
            initializer=initializer,
            initargs=initargs,
        )


def _queue_backend_factory() -> "ExecutionBackend":
    """Lazy factory for the durable-queue backend (avoids an import cycle
    and keeps the service package out of the CLI's import hot path)."""
    from repro.service.queue_backend import QueueBackend

    return QueueBackend()


#: The registered-name table behind :func:`resolve_backend`.  Each entry is
#: a zero-argument factory returning a fresh backend instance.
_BACKENDS: dict[str, Callable[[], "ExecutionBackend"]] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "thread": ThreadPoolBackend,
    "queue": _queue_backend_factory,
}


def register_backend(
    name: str, factory: Callable[[], "ExecutionBackend"], replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` for :func:`resolve_backend`.

    The factory takes no arguments and returns a fresh backend; it may
    import lazily.  Re-registering an existing name requires
    ``replace=True`` so typos cannot silently shadow a built-in.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def backend_names() -> tuple[str, ...]:
    """Every resolvable backend name (built-ins plus registered extras)."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(
    backend: "ExecutionBackend | str | None", jobs: int | None = None
) -> ExecutionBackend:
    """Normalise a backend request: instance, registered name, or None.

    None picks the historical default from the job count: serial for
    ``jobs`` <= 1 (or unknown), the process pool otherwise.
    """
    if backend is None:
        backend = "serial" if jobs is None or jobs <= 1 else "process"
    if isinstance(backend, str):
        try:
            factory = _BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {backend!r}; "
                f"choose from: {', '.join(backend_names())}"
            ) from None
        return factory()
    return backend


__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "backend_names",
    "collect_executor_counters",
    "register_backend",
    "resolve_backend",
]
