"""Process-sharded pairwise-compatibility computation (paper §3.3).

DETERRENT precomputes the O(r²) rare-net compatibility dictionary before
training and parallelises it over 64 processes.  This module reproduces that
shape: the upper triangle of the pair matrix is split into deterministic
shards, each worker process owns its **own** incremental SAT stack
(:class:`~repro.sat.justify.Justifier` over a private
:class:`~repro.sat.solver.CdclSolver`) built from the shared circuit
encoding, and the parent assembles the boolean matrix from the shard results.

Two properties matter:

- **Bit-identity** — every pair query is an exact SAT verdict, so the sharded
  matrix equals the serial one bit for bit regardless of shard count or
  completion order (:func:`serial_compatibility_matrix` is the ``n_jobs=1``
  fallback and the reference).
- **Determinism** — shard→pair assignment is a pure function of (pair count,
  shard count), and each shard receives a seed derived only from
  ``(base_seed, shard index)``, so any future randomised solver heuristic
  stays reproducible under resharding of the same ``n_shards``.

The shard→seed determinism contract, spelled out (anything touching
:func:`make_shards` must preserve all three):

1. pairs are enumerated in row-major upper-triangle order and dealt
   round-robin — shard ``s`` owns pair number ``p`` iff ``p % n_shards ==
   s`` — with no dependence on wall clock, process ids, or completion order;
2. ``shard.seed == base_seed + 7919 * shard.index`` (a fixed prime stride,
   so distinct shards never share a seed for any ``base_seed`` spacing
   < 7919), which makes worker-side randomness a pure function of the
   submitted work, not of which process picks it up;
3. empty shards are dropped *after* indices and seeds are assigned, so a
   shard's identity never shifts with the number of non-empty peers.

Consumers may therefore cache, replay, or re-execute any shard in isolation
and obtain the same verdicts the full run would have produced.

Netlists travel to workers as canonical ``.bench`` text (compact, and avoids
pickling memoised derived structures); each worker re-encodes the CNF once in
its initializer and answers all its shards incrementally.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.circuits.bench_io import dumps_bench, loads_bench
from repro.circuits.netlist import Netlist
from repro.sat.justify import Justifier

#: Shards submitted per worker; >1 smooths load imbalance between shards.
OVERSUBSCRIPTION = 4


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise a job-count request: None or <= 0 means "all CPUs"."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


@dataclass(frozen=True)
class CompatibilityShard:
    """One worker-sized slice of the pairwise-compatibility upper triangle.

    ``seed`` is assigned deterministically from ``(base_seed, index)``.  The
    current solver is deterministic, so the seed does not influence results —
    it exists so a future randomised heuristic (restarts, phase flipping)
    keeps the shard→seed mapping reproducible.
    """

    index: int
    seed: int
    pairs: tuple[tuple[int, int], ...]


def make_shards(num_items: int, n_shards: int, base_seed: int = 0) -> list[CompatibilityShard]:
    """Split the upper-triangle pairs of ``num_items`` items into shards.

    Pairs are enumerated in row-major order and dealt round-robin, so early
    (long) rows and late (short) rows mix within every shard — cheap static
    load balancing with a fully deterministic assignment.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    buckets: list[list[tuple[int, int]]] = [[] for _ in range(n_shards)]
    position = 0
    for i in range(num_items):
        for j in range(i + 1, num_items):
            buckets[position % n_shards].append((i, j))
            position += 1
    return [
        CompatibilityShard(index=index, seed=base_seed + 7919 * index, pairs=tuple(bucket))
        for index, bucket in enumerate(buckets)
        if bucket
    ]


Requirement = tuple[str, int]


def serial_compatibility_matrix(
    justifier: Justifier, requirements: list[Requirement]
) -> np.ndarray:
    """Reference single-solver pairwise matrix (the ``n_jobs=1`` path)."""
    count = len(requirements)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    for i in range(count):
        net_i, value_i = requirements[i]
        for j in range(i + 1, count):
            net_j, value_j = requirements[j]
            compatible = justifier.are_compatible({net_i: value_i}, {net_j: value_j})
            matrix[i, j] = compatible
            matrix[j, i] = compatible
    return matrix


# ----------------------------------------------------------------------
# Worker-process state
# ----------------------------------------------------------------------
_WORKER_JUSTIFIER: Justifier | None = None
_WORKER_REQUIREMENTS: list[Requirement] = []


def _init_compat_worker(
    search_paths: list[str], bench_text: str, name: str, requirements: list[Requirement]
) -> None:
    """Build this worker's private solver stack over the shared encoding.

    ``search_paths`` replays the parent's ``sys.path`` so spawned workers can
    import ``repro`` from a fresh checkout that was never pip-installed.
    """
    global _WORKER_JUSTIFIER, _WORKER_REQUIREMENTS
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    _WORKER_JUSTIFIER = Justifier(loads_bench(bench_text, name=name))
    _WORKER_REQUIREMENTS = requirements


def _run_shard(shard: CompatibilityShard) -> list[tuple[int, int, bool]]:
    """Answer every pair query of one shard on the worker's own solver."""
    assert _WORKER_JUSTIFIER is not None, "worker initializer did not run"
    results: list[tuple[int, int, bool]] = []
    for i, j in shard.pairs:
        net_i, value_i = _WORKER_REQUIREMENTS[i]
        net_j, value_j = _WORKER_REQUIREMENTS[j]
        compatible = _WORKER_JUSTIFIER.are_compatible({net_i: value_i}, {net_j: value_j})
        results.append((i, j, compatible))
    return results


def parallel_compatibility_matrix(
    netlist: Netlist,
    requirements: list[Requirement],
    n_jobs: int,
    base_seed: int = 0,
) -> np.ndarray:
    """Compute the pairwise matrix across ``n_jobs`` worker processes.

    Bit-identical to :func:`serial_compatibility_matrix` on the same inputs.
    """
    n_jobs = resolve_jobs(n_jobs)
    count = len(requirements)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    if count < 2:
        return matrix
    shards = make_shards(count, n_jobs * OVERSUBSCRIPTION, base_seed=base_seed)
    bench_text = dumps_bench(netlist)
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(shards)),
        initializer=_init_compat_worker,
        initargs=(list(sys.path), bench_text, netlist.name, list(requirements)),
    ) as pool:
        for shard_result in pool.map(_run_shard, shards):
            for i, j, compatible in shard_result:
                matrix[i, j] = compatible
                matrix[j, i] = compatible
    return matrix


__all__ = [
    "OVERSUBSCRIPTION",
    "CompatibilityShard",
    "make_shards",
    "parallel_compatibility_matrix",
    "resolve_jobs",
    "serial_compatibility_matrix",
]
