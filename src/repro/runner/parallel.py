"""Process-sharded SAT workloads: pair queries, pre-filters, witnesses.

DETERRENT precomputes the O(r²) rare-net compatibility dictionary before
training and parallelises it over 64 processes.  This module reproduces that
shape: the upper triangle of the pair matrix is split into deterministic
shards, each worker process owns its **own** incremental SAT stack
(:class:`~repro.sat.justify.Justifier` over a private
:class:`~repro.sat.solver.CdclSolver`) built from the shared circuit
encoding, and the parent assembles the boolean matrix from the shard results.

The same sharding discipline covers the other serial SAT stages of the flow:

- the O(r) **activatability pre-filter** (is each rare net individually
  justifiable?) — exact verdicts, so the sharded result is bit-identical to
  :func:`serial_activatability`;
- **per-set witness generation** (one SAT witness per compatible set,
  including the greedy repair of jointly-unsatisfiable sets) — valid
  witnesses on every path, though the concrete model may differ from the
  serial path because each worker solves on a fresh clause database (the same
  caveat :func:`repro.core.compatibility.compute_compatibility` documents);
- **sequence witnesses** on the unrolled transition relation
  (:class:`~repro.sat.temporal.SequentialJustifier`), used by the
  sequence-aware generation pipeline in :mod:`repro.core.sequence_gen`.

All of them keep the ``n_jobs=1`` fallback contract: the serial path is the
reference implementation, runs on the caller's own (incremental) solver
stack, and is what every sharded path's verdicts are tested against.

Two properties matter:

- **Bit-identity** — every pair query is an exact SAT verdict, so the sharded
  matrix equals the serial one bit for bit regardless of shard count or
  completion order (:func:`serial_compatibility_matrix` is the ``n_jobs=1``
  fallback and the reference).
- **Determinism** — shard→pair assignment is a pure function of (pair count,
  shard count), and each shard receives a seed derived only from
  ``(base_seed, shard index)``, so any future randomised solver heuristic
  stays reproducible under resharding of the same ``n_shards``.

The shard→seed determinism contract, spelled out (anything touching
:func:`make_shards` must preserve all three):

1. pairs are enumerated in row-major upper-triangle order and dealt
   round-robin — shard ``s`` owns pair number ``p`` iff ``p % n_shards ==
   s`` — with no dependence on wall clock, process ids, or completion order;
2. ``shard.seed == base_seed + 7919 * shard.index`` (a fixed prime stride,
   so distinct shards never share a seed for any ``base_seed`` spacing
   < 7919), which makes worker-side randomness a pure function of the
   submitted work, not of which process picks it up;
3. empty shards are dropped *after* indices and seeds are assigned, so a
   shard's identity never shifts with the number of non-empty peers.

Consumers may therefore cache, replay, or re-execute any shard in isolation
and obtain the same verdicts the full run would have produced.

Netlists travel to workers as canonical ``.bench`` text (compact, and avoids
pickling memoised derived structures); each worker re-encodes the CNF once in
its initializer and answers all its shards incrementally.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.circuits.bench_io import dumps_bench, loads_bench
from repro.circuits.netlist import Netlist
from repro.sat.justify import Justifier, greedy_maximal_subset
from repro.sat.solver import SolverConfig

#: Shards submitted per worker; >1 smooths load imbalance between shards.
OVERSUBSCRIPTION = 4


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise a job-count request: None or <= 0 means "all CPUs"."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


@dataclass(frozen=True)
class CompatibilityShard:
    """One worker-sized slice of the pairwise-compatibility upper triangle.

    ``seed`` is assigned deterministically from ``(base_seed, index)``.  The
    current solver is deterministic, so the seed does not influence results —
    it exists so a future randomised heuristic (restarts, phase flipping)
    keeps the shard→seed mapping reproducible.
    """

    index: int
    seed: int
    pairs: tuple[tuple[int, int], ...]


def make_shards(num_items: int, n_shards: int, base_seed: int = 0) -> list[CompatibilityShard]:
    """Split the upper-triangle pairs of ``num_items`` items into shards.

    Pairs are enumerated in row-major order and dealt round-robin, so early
    (long) rows and late (short) rows mix within every shard — cheap static
    load balancing with a fully deterministic assignment.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    buckets: list[list[tuple[int, int]]] = [[] for _ in range(n_shards)]
    position = 0
    for i in range(num_items):
        for j in range(i + 1, num_items):
            buckets[position % n_shards].append((i, j))
            position += 1
    return [
        CompatibilityShard(index=index, seed=base_seed + 7919 * index, pairs=tuple(bucket))
        for index, bucket in enumerate(buckets)
        if bucket
    ]


@dataclass(frozen=True)
class WorkShard:
    """One worker-sized slice of an indexed item list (pre-filter / witnesses).

    Follows the exact shard→seed determinism contract of
    :class:`CompatibilityShard`: items are dealt round-robin in index order,
    ``seed == base_seed + 7919 * index``, and empty shards are dropped after
    identities are assigned.
    """

    index: int
    seed: int
    items: tuple[int, ...]


def make_item_shards(num_items: int, n_shards: int, base_seed: int = 0) -> list[WorkShard]:
    """Split ``num_items`` indexed items into deterministic round-robin shards."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    buckets: list[list[int]] = [[] for _ in range(n_shards)]
    for item in range(num_items):
        buckets[item % n_shards].append(item)
    return [
        WorkShard(index=index, seed=base_seed + 7919 * index, items=tuple(bucket))
        for index, bucket in enumerate(buckets)
        if bucket
    ]


Requirement = tuple[str, int]


def serial_compatibility_matrix(
    justifier: Justifier, requirements: list[Requirement]
) -> np.ndarray:
    """Reference single-solver pairwise matrix (the ``n_jobs=1`` path)."""
    count = len(requirements)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    for i in range(count):
        net_i, value_i = requirements[i]
        for j in range(i + 1, count):
            net_j, value_j = requirements[j]
            compatible = justifier.are_compatible({net_i: value_i}, {net_j: value_j})
            matrix[i, j] = compatible
            matrix[j, i] = compatible
    return matrix


# ----------------------------------------------------------------------
# Worker-process state
# ----------------------------------------------------------------------
_WORKER_JUSTIFIER: Justifier | None = None
_WORKER_REQUIREMENTS: list[Requirement] = []


def _init_compat_worker(
    search_paths: list[str],
    bench_text: str,
    name: str,
    requirements: list[Requirement],
    solver_config: SolverConfig | None = None,
) -> None:
    """Build this worker's private solver stack over the shared encoding.

    ``search_paths`` replays the parent's ``sys.path`` so spawned workers can
    import ``repro`` from a fresh checkout that was never pip-installed.
    ``solver_config`` (a picklable frozen dataclass) replicates the parent's
    solver tuning on the worker's private stack.
    """
    global _WORKER_JUSTIFIER, _WORKER_REQUIREMENTS
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    _WORKER_JUSTIFIER = Justifier(loads_bench(bench_text, name=name), config=solver_config)
    _WORKER_REQUIREMENTS = requirements


def _run_shard(shard: CompatibilityShard) -> list[tuple[int, int, bool]]:
    """Answer every pair query of one shard on the worker's own solver."""
    assert _WORKER_JUSTIFIER is not None, "worker initializer did not run"
    results: list[tuple[int, int, bool]] = []
    for i, j in shard.pairs:
        net_i, value_i = _WORKER_REQUIREMENTS[i]
        net_j, value_j = _WORKER_REQUIREMENTS[j]
        compatible = _WORKER_JUSTIFIER.are_compatible({net_i: value_i}, {net_j: value_j})
        results.append((i, j, compatible))
    return results


def parallel_compatibility_matrix(
    netlist: Netlist,
    requirements: list[Requirement],
    n_jobs: int,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
) -> np.ndarray:
    """Compute the pairwise matrix across ``n_jobs`` worker processes.

    Bit-identical to :func:`serial_compatibility_matrix` on the same inputs.
    """
    n_jobs = resolve_jobs(n_jobs)
    count = len(requirements)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    if count < 2:
        return matrix
    shards = make_shards(count, n_jobs * OVERSUBSCRIPTION, base_seed=base_seed)
    bench_text = dumps_bench(netlist)
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(shards)),
        initializer=_init_compat_worker,
        initargs=(
            list(sys.path), bench_text, netlist.name, list(requirements),
            solver_config,
        ),
    ) as pool:
        for shard_result in pool.map(_run_shard, shards):
            for i, j, compatible in shard_result:
                matrix[i, j] = compatible
                matrix[j, i] = compatible
    return matrix


# ----------------------------------------------------------------------
# Activatability pre-filter (the O(r) stage before the O(r²) pair queries)
# ----------------------------------------------------------------------
def serial_activatability(
    justifier: Justifier, requirements: list[Requirement]
) -> list[bool]:
    """Reference single-solver pre-filter (the ``n_jobs=1`` path).

    ``verdicts[i]`` is True iff requirement ``i`` is individually justifiable
    — i.e. the rare net can take its rare value at all.
    """
    return [justifier.is_satisfiable({net: value}) for net, value in requirements]


def _run_activatability_shard(shard: WorkShard) -> list[tuple[int, bool]]:
    """Answer one shard of single-net justifiability queries."""
    assert _WORKER_JUSTIFIER is not None, "worker initializer did not run"
    results: list[tuple[int, bool]] = []
    for item in shard.items:
        net, value = _WORKER_REQUIREMENTS[item]
        results.append((item, _WORKER_JUSTIFIER.is_satisfiable({net: value})))
    return results


def parallel_activatability(
    netlist: Netlist,
    requirements: list[Requirement],
    n_jobs: int,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
) -> list[bool]:
    """Shard the activatability pre-filter across worker processes.

    Verdicts are exact SAT answers, so the result is bit-identical to
    :func:`serial_activatability` regardless of shard count.
    """
    n_jobs = resolve_jobs(n_jobs)
    if not requirements:
        return []
    shards = make_item_shards(
        len(requirements), n_jobs * OVERSUBSCRIPTION, base_seed=base_seed
    )
    verdicts = [False] * len(requirements)
    bench_text = dumps_bench(netlist)
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(shards)),
        initializer=_init_compat_worker,
        initargs=(
            list(sys.path), bench_text, netlist.name, list(requirements),
            solver_config,
        ),
    ) as pool:
        for shard_result in pool.map(_run_activatability_shard, shards):
            for item, verdict in shard_result:
                verdicts[item] = verdict
    return verdicts


# ----------------------------------------------------------------------
# Per-set witness generation (combinational patterns)
# ----------------------------------------------------------------------
OrderedRequirements = tuple[Requirement, ...]

_WITNESS_SETS: list[OrderedRequirements] = []


def _witness_with_repair(
    justifier: Justifier, ordered_requirements: OrderedRequirements
) -> tuple[dict[str, int] | None, int]:
    """Witness one requirement set, greedily repairing unsatisfiable sets.

    ``ordered_requirements`` must be sorted rarest-first: when the full set
    has no witness, nets are re-added greedily in that order, keeping each
    only while the accumulated set stays satisfiable — the shared policy of
    :func:`repro.sat.justify.greedy_maximal_subset`, same as the serial
    ``_repair_set`` in :mod:`repro.core.patterns`.  Returns ``(witness or
    None, number of requirements realised)``.
    """
    requirements = dict(ordered_requirements)
    witness = justifier.witness(requirements)
    if witness is not None:
        return witness, len(requirements)
    kept = greedy_maximal_subset(
        list(ordered_requirements),
        lambda candidate: justifier.is_satisfiable(dict(candidate)),
    )
    if not kept:
        return None, 0
    return justifier.witness(dict(kept)), len(kept)


def _init_witness_worker(
    search_paths: list[str],
    bench_text: str,
    name: str,
    ordered_sets: list[OrderedRequirements],
    preferred_values: dict[str, int],
    solver_config: SolverConfig | None = None,
) -> None:
    """Build this worker's solver stack plus the shared witness work list."""
    global _WORKER_JUSTIFIER, _WITNESS_SETS
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    _WORKER_JUSTIFIER = Justifier(
        loads_bench(bench_text, name=name),
        preferred_values=preferred_values or None,
        config=solver_config,
    )
    _WITNESS_SETS = ordered_sets


def _run_witness_shard(
    shard: WorkShard,
) -> list[tuple[int, dict[str, int] | None, int]]:
    """Generate the witnesses of one shard of requirement sets."""
    assert _WORKER_JUSTIFIER is not None, "worker initializer did not run"
    results: list[tuple[int, dict[str, int] | None, int]] = []
    for item in shard.items:
        witness, realized = _witness_with_repair(_WORKER_JUSTIFIER, _WITNESS_SETS[item])
        results.append((item, witness, realized))
    return results


def parallel_pattern_witnesses(
    netlist: Netlist,
    ordered_sets: list[OrderedRequirements],
    n_jobs: int,
    preferred_values: dict[str, int] | None = None,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
) -> list[tuple[dict[str, int] | None, int]]:
    """Generate one SAT witness per requirement set across worker processes.

    Every returned witness is a valid input pattern for its (possibly
    repaired) set; the concrete model may differ from the serial path's
    because workers solve on fresh clause databases (see the module
    docstring).  Result order matches ``ordered_sets``.
    """
    n_jobs = resolve_jobs(n_jobs)
    if not ordered_sets:
        return []
    shards = make_item_shards(
        len(ordered_sets), n_jobs * OVERSUBSCRIPTION, base_seed=base_seed
    )
    witnesses: list[tuple[dict[str, int] | None, int]] = [(None, 0)] * len(ordered_sets)
    bench_text = dumps_bench(netlist)
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(shards)),
        initializer=_init_witness_worker,
        initargs=(
            list(sys.path), bench_text, netlist.name,
            list(ordered_sets), dict(preferred_values or {}),
            solver_config,
        ),
    ) as pool:
        for shard_result in pool.map(_run_witness_shard, shards):
            for item, witness, realized in shard_result:
                witnesses[item] = (witness, realized)
    return witnesses


# ----------------------------------------------------------------------
# Per-set sequence witnesses (temporal SAT, repro.core.sequence_gen)
# ----------------------------------------------------------------------
_SEQUENCE_JUSTIFIER = None
_SEQUENCE_SETS: list[OrderedRequirements] = []
_SEQUENCE_RULE: tuple[str, int] = ("consecutive", 1)


def _init_sequence_worker(
    search_paths: list[str],
    bench_text: str,
    name: str,
    cycles: int,
    mode: str,
    count: int,
    ordered_sets: list[OrderedRequirements],
    preferred_values: dict[str, int],
    initial_state: dict[str, int] | None,
    solver_config: SolverConfig | None = None,
) -> None:
    """Build this worker's unrolled solver stack for sequence witnesses."""
    global _SEQUENCE_JUSTIFIER, _SEQUENCE_SETS, _SEQUENCE_RULE
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    from repro.sat.temporal import SequentialJustifier

    justifier = SequentialJustifier(
        loads_bench(bench_text, name=name), cycles,
        initial_state=initial_state, config=solver_config,
    )
    if preferred_values:
        justifier.set_preferred_values(preferred_values)
    _SEQUENCE_JUSTIFIER = justifier
    _SEQUENCE_SETS = ordered_sets
    _SEQUENCE_RULE = (mode, count)


def _run_sequence_shard(shard: WorkShard) -> list[tuple[int, object, int, int]]:
    """Generate the sequence witnesses of one shard of requirement sets."""
    assert _SEQUENCE_JUSTIFIER is not None, "worker initializer did not run"
    from repro.core.sequence_gen import sequence_witness_with_repair

    mode, count = _SEQUENCE_RULE
    results: list[tuple[int, object, int, int]] = []
    for item in shard.items:
        sequence, fire_cycle, realized = sequence_witness_with_repair(
            _SEQUENCE_JUSTIFIER, _SEQUENCE_SETS[item], mode, count
        )
        results.append((item, sequence, fire_cycle, realized))
    return results


def parallel_sequence_witnesses(
    netlist: Netlist,
    ordered_sets: list[OrderedRequirements],
    cycles: int,
    mode: str,
    count: int,
    n_jobs: int,
    preferred_values: dict[str, int] | None = None,
    initial_state: dict[str, int] | None = None,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
) -> list[tuple[object, int, int]]:
    """Generate one replay-verified sequence witness per set across workers.

    The sequential counterpart of :func:`parallel_pattern_witnesses`; result
    order matches ``ordered_sets`` and each entry is ``(sequence or None,
    first fire cycle or -1, number of requirements realised)``.
    ``initial_state`` must match the state the sets were analysed from, so
    worker unrolls justify from the same machine as the caller's.
    """
    n_jobs = resolve_jobs(n_jobs)
    if not ordered_sets:
        return []
    shards = make_item_shards(
        len(ordered_sets), n_jobs * OVERSUBSCRIPTION, base_seed=base_seed
    )
    witnesses: list[tuple[object, int, int]] = [(None, -1, 0)] * len(ordered_sets)
    bench_text = dumps_bench(netlist)
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, len(shards)),
        initializer=_init_sequence_worker,
        initargs=(
            list(sys.path), bench_text, netlist.name, cycles, mode, count,
            list(ordered_sets), dict(preferred_values or {}),
            dict(initial_state) if initial_state else None,
            solver_config,
        ),
    ) as pool:
        for shard_result in pool.map(_run_sequence_shard, shards):
            for item, sequence, fire_cycle, realized in shard_result:
                witnesses[item] = (sequence, fire_cycle, realized)
    return witnesses


__all__ = [
    "OVERSUBSCRIPTION",
    "CompatibilityShard",
    "WorkShard",
    "make_item_shards",
    "make_shards",
    "parallel_activatability",
    "parallel_compatibility_matrix",
    "parallel_pattern_witnesses",
    "parallel_sequence_witnesses",
    "resolve_jobs",
    "serial_activatability",
    "serial_compatibility_matrix",
]
