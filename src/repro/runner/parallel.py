"""Process-sharded SAT workloads: pair queries, pre-filters, witnesses.

DETERRENT precomputes the O(r²) rare-net compatibility dictionary before
training and parallelises it over 64 processes.  This module reproduces that
shape: the upper triangle of the pair matrix is split into deterministic
shards, each worker process owns its **own** incremental SAT stack
(:class:`~repro.sat.justify.Justifier` over a private
:class:`~repro.sat.solver.CdclSolver`) built from the shared circuit
encoding, and the parent assembles the boolean matrix from the shard results.

The same sharding discipline covers the other serial SAT stages of the flow:

- the O(r) **activatability pre-filter** (is each rare net individually
  justifiable?) — exact verdicts, so the sharded result is bit-identical to
  :func:`serial_activatability`;
- **per-set witness generation** (one SAT witness per compatible set,
  including the greedy repair of jointly-unsatisfiable sets) — valid
  witnesses on every path, though the concrete model may differ from the
  serial path because each worker solves on a fresh clause database (the same
  caveat :func:`repro.core.compatibility.compute_compatibility` documents);
- **sequence witnesses** on the unrolled transition relation
  (:class:`~repro.sat.temporal.SequentialJustifier`), used by the
  sequence-aware generation pipeline in :mod:`repro.core.sequence_gen`.

All of them keep the ``n_jobs=1`` fallback contract: the serial path is the
reference implementation, runs on the caller's own (incremental) solver
stack, and is what every sharded path's verdicts are tested against.

Two properties matter:

- **Bit-identity** — every pair query is an exact SAT verdict, so the sharded
  matrix equals the serial one bit for bit regardless of shard count or
  completion order (:func:`serial_compatibility_matrix` is the ``n_jobs=1``
  fallback and the reference).
- **Determinism** — shard→pair assignment is a pure function of (pair count,
  shard count), and each shard receives a seed derived only from
  ``(base_seed, shard index)``, so any future randomised solver heuristic
  stays reproducible under resharding of the same ``n_shards``.

The shard→seed determinism contract, spelled out (anything touching
:func:`make_shards` must preserve all three):

1. pairs are enumerated in row-major upper-triangle order and dealt
   round-robin — shard ``s`` owns pair number ``p`` iff ``p % n_shards ==
   s`` — with no dependence on wall clock, process ids, or completion order;
2. ``shard.seed == base_seed + 7919 * shard.index`` (a fixed prime stride,
   so distinct shards never share a seed for any ``base_seed`` spacing
   < 7919), which makes worker-side randomness a pure function of the
   submitted work, not of which process picks it up;
3. empty shards are dropped *after* indices and seeds are assigned, so a
   shard's identity never shifts with the number of non-empty peers.

Consumers may therefore cache, replay, or re-execute any shard in isolation
and obtain the same verdicts the full run would have produced.

Netlists travel to workers as canonical ``.bench`` text (compact, and avoids
pickling memoised derived structures); each worker re-encodes the CNF once in
its initializer and answers all its shards incrementally.

Where the shards *run* is pluggable: every entry point routes through
:func:`repro.runner.resilience.run_tasks` over an
:class:`~repro.runner.backends.ExecutionBackend` (process pool by default,
thread pool or in-process serial on request), which also supplies per-shard
retry with deterministic backoff, per-attempt timeouts, crash recovery, and
graceful degradation to the serial backend.  Worker solver stacks are
thread-local, so the same initializer contract holds under every backend.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass

import numpy as np

from repro.circuits.bench_io import dumps_bench, loads_bench
from repro.circuits.netlist import Netlist
from repro.runner.backends import ExecutionBackend
from repro.runner.faults import FaultPlan
from repro.runner.resilience import ResiliencePolicy, run_tasks
from repro.sat.justify import Justifier, greedy_maximal_subset
from repro.sat.solver import SolverConfig

#: Shards submitted per worker; >1 smooths load imbalance between shards.
OVERSUBSCRIPTION = 4


def resolve_jobs(n_jobs: int | None) -> int:
    """Normalise a job-count request: None or <= 0 means "all CPUs"."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


@dataclass(frozen=True)
class CompatibilityShard:
    """One worker-sized slice of the pairwise-compatibility upper triangle.

    ``seed`` is assigned deterministically from ``(base_seed, index)``.  The
    current solver is deterministic, so the seed does not influence results —
    it exists so a future randomised heuristic (restarts, phase flipping)
    keeps the shard→seed mapping reproducible.
    """

    index: int
    seed: int
    pairs: tuple[tuple[int, int], ...]


def make_shards(num_items: int, n_shards: int, base_seed: int = 0) -> list[CompatibilityShard]:
    """Split the upper-triangle pairs of ``num_items`` items into shards.

    Pairs are enumerated in row-major order and dealt round-robin, so early
    (long) rows and late (short) rows mix within every shard — cheap static
    load balancing with a fully deterministic assignment.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    buckets: list[list[tuple[int, int]]] = [[] for _ in range(n_shards)]
    position = 0
    for i in range(num_items):
        for j in range(i + 1, num_items):
            buckets[position % n_shards].append((i, j))
            position += 1
    return [
        CompatibilityShard(index=index, seed=base_seed + 7919 * index, pairs=tuple(bucket))
        for index, bucket in enumerate(buckets)
        if bucket
    ]


@dataclass(frozen=True)
class WorkShard:
    """One worker-sized slice of an indexed item list (pre-filter / witnesses).

    Follows the exact shard→seed determinism contract of
    :class:`CompatibilityShard`: items are dealt round-robin in index order,
    ``seed == base_seed + 7919 * index``, and empty shards are dropped after
    identities are assigned.
    """

    index: int
    seed: int
    items: tuple[int, ...]


def make_item_shards(num_items: int, n_shards: int, base_seed: int = 0) -> list[WorkShard]:
    """Split ``num_items`` indexed items into deterministic round-robin shards."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    buckets: list[list[int]] = [[] for _ in range(n_shards)]
    for item in range(num_items):
        buckets[item % n_shards].append(item)
    return [
        WorkShard(index=index, seed=base_seed + 7919 * index, items=tuple(bucket))
        for index, bucket in enumerate(buckets)
        if bucket
    ]


Requirement = tuple[str, int]


def serial_compatibility_matrix(
    justifier: Justifier, requirements: list[Requirement]
) -> np.ndarray:
    """Reference single-solver pairwise matrix (the ``n_jobs=1`` path)."""
    count = len(requirements)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    for i in range(count):
        net_i, value_i = requirements[i]
        for j in range(i + 1, count):
            net_j, value_j = requirements[j]
            compatible = justifier.are_compatible({net_i: value_i}, {net_j: value_j})
            matrix[i, j] = compatible
            matrix[j, i] = compatible
    return matrix


# ----------------------------------------------------------------------
# Worker state
# ----------------------------------------------------------------------
# Thread-local so every worker owns a private solver stack under *any*
# backend: a process-pool worker (initializer and tasks share the worker's
# main thread), a thread-pool worker (initializer runs once per thread),
# and the in-process serial fallback all see their own state.
_WORKER_STATE = threading.local()


def _init_compat_worker(
    search_paths: list[str],
    bench_text: str,
    name: str,
    requirements: list[Requirement],
    solver_config: SolverConfig | None = None,
) -> None:
    """Build this worker's private solver stack over the shared encoding.

    ``search_paths`` replays the parent's ``sys.path`` so spawned workers can
    import ``repro`` from a fresh checkout that was never pip-installed.
    ``solver_config`` (a picklable frozen dataclass) replicates the parent's
    solver tuning on the worker's private stack.
    """
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    _WORKER_STATE.justifier = Justifier(
        loads_bench(bench_text, name=name), config=solver_config
    )
    _WORKER_STATE.requirements = requirements


def _worker_justifier() -> Justifier:
    justifier = getattr(_WORKER_STATE, "justifier", None)
    assert justifier is not None, "worker initializer did not run"
    return justifier


def _run_shard(shard: CompatibilityShard) -> list[tuple[int, int, bool]]:
    """Answer every pair query of one shard on the worker's own solver."""
    justifier = _worker_justifier()
    requirements = _WORKER_STATE.requirements
    results: list[tuple[int, int, bool]] = []
    for i, j in shard.pairs:
        net_i, value_i = requirements[i]
        net_j, value_j = requirements[j]
        compatible = justifier.are_compatible({net_i: value_i}, {net_j: value_j})
        results.append((i, j, compatible))
    return results


def _run_sharded(
    shard_fn,
    shards,
    initializer,
    initargs: tuple,
    n_jobs: int,
    backend: ExecutionBackend | str | None,
    resilience: ResiliencePolicy | None,
    fault_plan: FaultPlan | None,
    label: str = "shard",
) -> list:
    """Drive one sharded stage through the backend + resilience seam.

    Results come back in shard order.  ``backend=None`` keeps the
    historical behaviour (a process pool for ``n_jobs > 1``); the per-shard
    retry/backoff jitter is seeded from each shard's own deterministic
    seed, honouring the shard→seed contract.  ``label`` names the stage in
    failure messages and in the telemetry span tree
    (``tasks.<label>`` / ``<label>[i]``).
    """
    return run_tasks(
        shard_fn,
        [(shard,) for shard in shards],
        backend=backend if backend is not None else "process",
        policy=resilience,
        initializer=initializer,
        initargs=initargs,
        max_workers=min(n_jobs, len(shards)),
        seeds=[shard.seed for shard in shards],
        fault_plan=fault_plan,
        label=label,
    ).results


def parallel_compatibility_matrix(
    netlist: Netlist,
    requirements: list[Requirement],
    n_jobs: int,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
    backend: ExecutionBackend | str | None = None,
    resilience: ResiliencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> np.ndarray:
    """Compute the pairwise matrix across ``n_jobs`` backend workers.

    Bit-identical to :func:`serial_compatibility_matrix` on the same inputs,
    under every backend and under any recoverable worker failure (verdicts
    are exact, and the resilience layer re-runs lost shards).
    """
    n_jobs = resolve_jobs(n_jobs)
    count = len(requirements)
    matrix = np.zeros((count, count), dtype=bool)
    np.fill_diagonal(matrix, True)
    if count < 2:
        return matrix
    shards = make_shards(count, n_jobs * OVERSUBSCRIPTION, base_seed=base_seed)
    bench_text = dumps_bench(netlist)
    shard_results = _run_sharded(
        _run_shard, shards, _init_compat_worker,
        (
            list(sys.path), bench_text, netlist.name, list(requirements),
            solver_config,
        ),
        n_jobs, backend, resilience, fault_plan, label="compat-shard",
    )
    for shard_result in shard_results:
        for i, j, compatible in shard_result:
            matrix[i, j] = compatible
            matrix[j, i] = compatible
    return matrix


# ----------------------------------------------------------------------
# Activatability pre-filter (the O(r) stage before the O(r²) pair queries)
# ----------------------------------------------------------------------
def serial_activatability(
    justifier: Justifier, requirements: list[Requirement]
) -> list[bool]:
    """Reference single-solver pre-filter (the ``n_jobs=1`` path).

    ``verdicts[i]`` is True iff requirement ``i`` is individually justifiable
    — i.e. the rare net can take its rare value at all.
    """
    return [justifier.is_satisfiable({net: value}) for net, value in requirements]


def _run_activatability_shard(shard: WorkShard) -> list[tuple[int, bool]]:
    """Answer one shard of single-net justifiability queries."""
    justifier = _worker_justifier()
    requirements = _WORKER_STATE.requirements
    results: list[tuple[int, bool]] = []
    for item in shard.items:
        net, value = requirements[item]
        results.append((item, justifier.is_satisfiable({net: value})))
    return results


def parallel_activatability(
    netlist: Netlist,
    requirements: list[Requirement],
    n_jobs: int,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
    backend: ExecutionBackend | str | None = None,
    resilience: ResiliencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[bool]:
    """Shard the activatability pre-filter across backend workers.

    Verdicts are exact SAT answers, so the result is bit-identical to
    :func:`serial_activatability` regardless of shard count, backend, or
    recovered worker failures.
    """
    n_jobs = resolve_jobs(n_jobs)
    if not requirements:
        return []
    shards = make_item_shards(
        len(requirements), n_jobs * OVERSUBSCRIPTION, base_seed=base_seed
    )
    verdicts = [False] * len(requirements)
    bench_text = dumps_bench(netlist)
    shard_results = _run_sharded(
        _run_activatability_shard, shards, _init_compat_worker,
        (
            list(sys.path), bench_text, netlist.name, list(requirements),
            solver_config,
        ),
        n_jobs, backend, resilience, fault_plan, label="activatability-shard",
    )
    for shard_result in shard_results:
        for item, verdict in shard_result:
            verdicts[item] = verdict
    return verdicts


# ----------------------------------------------------------------------
# Per-set witness generation (combinational patterns)
# ----------------------------------------------------------------------
OrderedRequirements = tuple[Requirement, ...]


def _witness_with_repair(
    justifier: Justifier, ordered_requirements: OrderedRequirements
) -> tuple[dict[str, int] | None, int]:
    """Witness one requirement set, greedily repairing unsatisfiable sets.

    ``ordered_requirements`` must be sorted rarest-first: when the full set
    has no witness, nets are re-added greedily in that order, keeping each
    only while the accumulated set stays satisfiable — the shared policy of
    :func:`repro.sat.justify.greedy_maximal_subset`, same as the serial
    ``_repair_set`` in :mod:`repro.core.patterns`.  Returns ``(witness or
    None, number of requirements realised)``.
    """
    requirements = dict(ordered_requirements)
    witness = justifier.witness(requirements)
    if witness is not None:
        return witness, len(requirements)
    kept = greedy_maximal_subset(
        list(ordered_requirements),
        lambda candidate: justifier.is_satisfiable(dict(candidate)),
    )
    if not kept:
        return None, 0
    return justifier.witness(dict(kept)), len(kept)


def _init_witness_worker(
    search_paths: list[str],
    bench_text: str,
    name: str,
    ordered_sets: list[OrderedRequirements],
    preferred_values: dict[str, int],
    solver_config: SolverConfig | None = None,
) -> None:
    """Build this worker's solver stack plus the shared witness work list."""
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    _WORKER_STATE.justifier = Justifier(
        loads_bench(bench_text, name=name),
        preferred_values=preferred_values or None,
        config=solver_config,
    )
    _WORKER_STATE.witness_sets = ordered_sets


def _run_witness_shard(
    shard: WorkShard,
) -> list[tuple[int, dict[str, int] | None, int]]:
    """Generate the witnesses of one shard of requirement sets."""
    justifier = _worker_justifier()
    witness_sets = _WORKER_STATE.witness_sets
    results: list[tuple[int, dict[str, int] | None, int]] = []
    for item in shard.items:
        witness, realized = _witness_with_repair(justifier, witness_sets[item])
        results.append((item, witness, realized))
    return results


def parallel_pattern_witnesses(
    netlist: Netlist,
    ordered_sets: list[OrderedRequirements],
    n_jobs: int,
    preferred_values: dict[str, int] | None = None,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
    backend: ExecutionBackend | str | None = None,
    resilience: ResiliencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[tuple[dict[str, int] | None, int]]:
    """Generate one SAT witness per requirement set across backend workers.

    Every returned witness is a valid input pattern for its (possibly
    repaired) set; the concrete model may differ from the serial path's
    because workers solve on fresh clause databases (see the module
    docstring).  Result order matches ``ordered_sets``.
    """
    n_jobs = resolve_jobs(n_jobs)
    if not ordered_sets:
        return []
    shards = make_item_shards(
        len(ordered_sets), n_jobs * OVERSUBSCRIPTION, base_seed=base_seed
    )
    witnesses: list[tuple[dict[str, int] | None, int]] = [(None, 0)] * len(ordered_sets)
    bench_text = dumps_bench(netlist)
    shard_results = _run_sharded(
        _run_witness_shard, shards, _init_witness_worker,
        (
            list(sys.path), bench_text, netlist.name,
            list(ordered_sets), dict(preferred_values or {}),
            solver_config,
        ),
        n_jobs, backend, resilience, fault_plan, label="witness-shard",
    )
    for shard_result in shard_results:
        for item, witness, realized in shard_result:
            witnesses[item] = (witness, realized)
    return witnesses


# ----------------------------------------------------------------------
# Per-set sequence witnesses (temporal SAT, repro.core.sequence_gen)
# ----------------------------------------------------------------------
def _init_sequence_worker(
    search_paths: list[str],
    bench_text: str,
    name: str,
    cycles: int,
    mode: str,
    count: int,
    ordered_sets: list[OrderedRequirements],
    preferred_values: dict[str, int],
    initial_state: dict[str, int] | None,
    solver_config: SolverConfig | None = None,
) -> None:
    """Build this worker's unrolled solver stack for sequence witnesses."""
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    from repro.sat.temporal import SequentialJustifier

    justifier = SequentialJustifier(
        loads_bench(bench_text, name=name), cycles,
        initial_state=initial_state, config=solver_config,
    )
    if preferred_values:
        justifier.set_preferred_values(preferred_values)
    _WORKER_STATE.sequence_justifier = justifier
    _WORKER_STATE.sequence_sets = ordered_sets
    _WORKER_STATE.sequence_rule = (mode, count)


def _run_sequence_shard(shard: WorkShard) -> list[tuple[int, object, int, int]]:
    """Generate the sequence witnesses of one shard of requirement sets."""
    justifier = getattr(_WORKER_STATE, "sequence_justifier", None)
    assert justifier is not None, "worker initializer did not run"
    from repro.core.sequence_gen import sequence_witness_with_repair

    mode, count = _WORKER_STATE.sequence_rule
    results: list[tuple[int, object, int, int]] = []
    for item in shard.items:
        sequence, fire_cycle, realized = sequence_witness_with_repair(
            justifier, _WORKER_STATE.sequence_sets[item], mode, count
        )
        results.append((item, sequence, fire_cycle, realized))
    return results


def parallel_sequence_witnesses(
    netlist: Netlist,
    ordered_sets: list[OrderedRequirements],
    cycles: int,
    mode: str,
    count: int,
    n_jobs: int,
    preferred_values: dict[str, int] | None = None,
    initial_state: dict[str, int] | None = None,
    base_seed: int = 0,
    solver_config: SolverConfig | None = None,
    backend: ExecutionBackend | str | None = None,
    resilience: ResiliencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[tuple[object, int, int]]:
    """Generate one replay-verified sequence witness per set across workers.

    The sequential counterpart of :func:`parallel_pattern_witnesses`; result
    order matches ``ordered_sets`` and each entry is ``(sequence or None,
    first fire cycle or -1, number of requirements realised)``.
    ``initial_state`` must match the state the sets were analysed from, so
    worker unrolls justify from the same machine as the caller's.
    """
    n_jobs = resolve_jobs(n_jobs)
    if not ordered_sets:
        return []
    shards = make_item_shards(
        len(ordered_sets), n_jobs * OVERSUBSCRIPTION, base_seed=base_seed
    )
    witnesses: list[tuple[object, int, int]] = [(None, -1, 0)] * len(ordered_sets)
    bench_text = dumps_bench(netlist)
    shard_results = _run_sharded(
        _run_sequence_shard, shards, _init_sequence_worker,
        (
            list(sys.path), bench_text, netlist.name, cycles, mode, count,
            list(ordered_sets), dict(preferred_values or {}),
            dict(initial_state) if initial_state else None,
            solver_config,
        ),
        n_jobs, backend, resilience, fault_plan, label="sequence-shard",
    )
    for shard_result in shard_results:
        for item, sequence, fire_cycle, realized in shard_result:
            witnesses[item] = (sequence, fire_cycle, realized)
    return witnesses


__all__ = [
    "OVERSUBSCRIPTION",
    "CompatibilityShard",
    "WorkShard",
    "make_item_shards",
    "make_shards",
    "parallel_activatability",
    "parallel_compatibility_matrix",
    "parallel_pattern_witnesses",
    "parallel_sequence_witnesses",
    "resolve_jobs",
    "serial_activatability",
    "serial_compatibility_matrix",
]
