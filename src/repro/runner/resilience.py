"""Fault tolerance for backend-executed work: retries, timeouts, degradation.

A single crashed or hung worker used to kill a whole grid run.  This module
is the robustness layer between a caller's task list and an
:class:`~repro.runner.backends.ExecutionBackend`:

- **Per-task retry with exponential backoff and jitter.**  A failed attempt
  (worker crash, timeout, raised exception, rejected result) is resubmitted
  up to ``max_attempts`` times.  The backoff delay is a pure function of
  ``(task seed, attempt)``, so a rerun of the same shards sleeps the same
  schedule — deterministic given the shard seed, like everything else in
  the runner.
- **Per-attempt timeouts.**  On pooled backends, an attempt that exceeds
  ``timeout`` seconds (measured from when the caller starts waiting on it;
  an attempt is never given *less*) is abandoned and retried.  The
  abandoned executor's worker processes are terminated — a hung worker must
  not hold a pool slot or outlive the run.  The serial backend runs work
  inline and cannot preempt it, so it ignores ``timeout``.
- **Crash detection with resubmission.**  A dead worker process breaks the
  whole stdlib pool (``BrokenProcessPool`` on every unfinished future), so
  the layer collects what completed, rebuilds a fresh executor, and
  resubmits only the unfinished tasks to the surviving round.
- **Graceful degradation.**  After ``max_backend_failures`` consecutive
  failing rounds — or when any task exhausts its attempts on a pooled
  backend — the layer falls back to
  :class:`~repro.runner.backends.SerialBackend`, gives the survivors a
  fresh attempt budget, and finishes the run inline.  The downgrade is
  recorded on the :class:`ResilientOutcome` so run records can report it.

Results are returned in task-submission order, so a recovered run is
indistinguishable from a clean one wherever task results are deterministic
(every exact-verdict SAT path, every grid cell with a fixed seed).

Fault injection (:mod:`repro.runner.faults`) threads through here: a
:class:`~repro.runner.faults.FaultPlan` is installed in every worker via a
chained initializer, and each attempt is routed through
:func:`call_with_faults` so the plan can key on ``(task index, attempt)``.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, Executor, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace
from typing import Any

from repro import obs
from repro.runner import faults
from repro.runner.backends import (
    ExecutionBackend,
    SerialBackend,
    collect_executor_counters,
    resolve_backend,
)

#: Multiplier decorrelating per-task jitter streams (Knuth's 32-bit prime).
_JITTER_STRIDE = 2654435761


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to try before giving up, and when to stop trusting a backend.

    Args:
        max_attempts: attempts per task on the active backend (1 = never
            retry).  After a downgrade the survivors get a fresh budget of
            the same size on the serial backend.
        timeout: per-attempt wall-clock limit in seconds (None = wait
            forever).  Ignored by the serial backend, which cannot preempt
            inline work.
        backoff_base: delay before the second attempt; doubles per further
            attempt up to ``backoff_cap``.
        backoff_cap: upper bound on any single backoff delay.
        max_backend_failures: consecutive failing rounds (a round that saw
            at least one crash or timeout) tolerated before the run
            downgrades to the serial backend.
        seed: base seed for the deterministic backoff jitter when the
            caller provides no per-task seeds.
        validate: optional ``(task_index, result) -> bool`` hook; a False
            verdict rejects the result and retries the task.  Results that
            are :class:`~repro.runner.faults.CorruptResult` markers are
            always rejected.
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_backend_failures: int = 3
    seed: int = 0
    validate: Callable[[int, Any], bool] | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.max_backend_failures < 1:
            raise ValueError(
                f"max_backend_failures must be >= 1, got {self.max_backend_failures}"
            )


class ResilienceError(RuntimeError):
    """A task failed permanently: every attempt on every backend was spent."""

    def __init__(self, message: str, failures: dict[int, list[str]]):
        super().__init__(message)
        self.failures = failures


@dataclass
class ResilientOutcome:
    """Everything one :func:`run_tasks` call did, beyond the results."""

    results: list[Any]
    backend: str
    final_backend: str
    rounds: int = 1
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    corrupt: int = 0
    degraded: bool = False
    degraded_reason: str | None = None
    attempts: list[int] = field(default_factory=list)
    failures: dict[int, list[str]] = field(default_factory=dict)
    #: Counters reported by the executor itself (the queue backend reports
    #: worker respawns, lease reclaims, and total job deliveries here).
    backend_counters: dict[str, int] = field(default_factory=dict)

    def counters(self) -> dict[str, Any]:
        """JSON-ready robustness counters for run records and reports."""
        return {
            "backend": self.backend,
            "final_backend": self.final_backend,
            "rounds": self.rounds,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "corrupt": self.corrupt,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "backend_counters": dict(self.backend_counters),
        }

    @property
    def had_failures(self) -> bool:
        """Did any attempt fail (even if the run ultimately recovered)?"""
        return bool(self.retries or self.timeouts or self.crashes
                    or self.errors or self.corrupt)


def backoff_delay(policy: ResiliencePolicy, seed: int, attempt: int) -> float:
    """Deterministic jittered delay before running ``attempt`` (2-based).

    ``base * 2**(attempt-2)`` capped at ``backoff_cap``, scaled into
    ``[0.5, 1.5)`` by a jitter stream seeded purely from ``(seed,
    attempt)`` — reruns of the same shard sleep the same schedule, and
    distinct shards never thundering-herd the same instant.
    """
    if attempt < 2:
        return 0.0
    base = min(policy.backoff_cap, policy.backoff_base * (2 ** (attempt - 2)))
    jitter = random.Random(seed * _JITTER_STRIDE + attempt).random()
    return base * (0.5 + jitter)


# ----------------------------------------------------------------------
# Worker-side call wrappers (module level: picklable by name)
# ----------------------------------------------------------------------
def call_with_faults(
    fn: Callable[..., Any], task: tuple, task_index: int, attempt: int,
    trace_ctx: dict | None = None,
) -> Any:
    """Run one attempt of ``fn(*task)`` under the armed fault plan (if any).

    ``trace_ctx`` is the submitting side's per-task span context
    (:meth:`repro.obs.TraceContext.as_dict`); when telemetry is enabled the
    attempt runs inside a ``worker`` span parented on it, and the worker's
    spans/metrics are flushed after each attempt so even a later crash
    loses at most the attempt in flight.
    """
    injected = faults.maybe_inject(task_index, attempt)
    if injected is not None:
        return injected
    if trace_ctx is None or not obs.enabled():
        return fn(*task)
    parent = obs.TraceContext.from_dict(trace_ctx)
    try:
        with obs.trace.span(
            "worker", attrs={"task": task_index, "attempt": attempt}, parent=parent
        ):
            return fn(*task)
    finally:
        # Flush *after* the span context closed, so the attempt's own
        # ``worker`` record is part of this attempt's export — a pool
        # worker that never runs another task would otherwise strand it
        # in the buffer and orphan the attempt's child spans.
        obs.flush()


def _init_with_faults(
    inner: Callable[..., None] | None,
    inner_args: tuple,
    plan: faults.FaultPlan,
    backend_name: str,
    workers_are_processes: bool,
) -> None:
    """Chained worker initializer: the caller's own init, then the plan."""
    if inner is not None:
        inner(*inner_args)
    faults.install_fault_plan(plan, backend_name, workers_are_processes)


def _init_with_obs(
    inner: Callable[..., None] | None,
    inner_args: tuple,
    trace_dir: str | None,
    parent_ctx: dict | None,
    label: str | None,
) -> None:
    """Chained worker initializer: telemetry first, then the caller's own."""
    obs.install_worker(trace_dir, parent_ctx, label=label)
    if inner is not None:
        inner(*inner_args)


def _round_initializer(
    initializer: Callable[..., None] | None,
    initargs: tuple,
    fault_plan: faults.FaultPlan | None,
    backend: ExecutionBackend,
    label: str,
) -> tuple[Callable[..., None] | None, tuple]:
    """The (initializer, initargs) for one round: telemetry, then faults."""
    chained, chained_args = initializer, tuple(initargs)
    if obs.enabled():
        trace_dir, parent_ctx = obs.worker_install_args()
        chained, chained_args = _init_with_obs, (
            chained, chained_args, trace_dir, parent_ctx, label,
        )
    if fault_plan is not None:
        chained, chained_args = _init_with_faults, (
            chained, chained_args, fault_plan,
            backend.name, backend.workers_are_processes,
        )
    return chained, chained_args


def _collect_backend_counters(executor: Executor, outcome: ResilientOutcome) -> None:
    """Fold an executor's self-reported counters into the outcome.

    Must run *before* :func:`_release_executor`: the queue executor may
    delete its owned queue directory on shutdown, taking the event log the
    counters are derived from with it.
    """
    for key, value in collect_executor_counters(executor).items():
        outcome.backend_counters[key] = outcome.backend_counters.get(key, 0) + value


def _release_executor(
    executor: Executor, backend: ExecutionBackend, abandoned: bool
) -> None:
    """Close an executor; terminate its workers when abandoning mid-round.

    After a timeout the pool may still hold a hung worker — waiting for it
    would stall the run, and leaving it alive would leak a process past the
    interpreter's exit handlers.  ``Executor`` has no public kill switch,
    so this reaches for the pool's process table; the attribute access is
    defensive because a custom backend may not have one.  An executor that
    exposes ``cancel_pending()`` (the durable-queue executor) gets it
    called first, so work that never started is withdrawn from the shared
    queue instead of being run by a worker into a round nobody is watching.
    """
    if abandoned:
        cancel_pending = getattr(executor, "cancel_pending", None)
        if callable(cancel_pending):
            try:
                cancel_pending()
            except Exception:  # noqa: BLE001 - cleanup must not mask the retry
                pass
    if abandoned and backend.workers_are_processes:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already-dead workers are fine
                pass
    executor.shutdown(wait=not abandoned, cancel_futures=abandoned)


def run_tasks(
    fn: Callable[..., Any],
    tasks: Sequence[tuple],
    *,
    backend: ExecutionBackend | str | None = None,
    policy: ResiliencePolicy | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    max_workers: int | None = None,
    seeds: Sequence[int] | None = None,
    fault_plan: faults.FaultPlan | None = None,
    label: str = "task",
) -> ResilientOutcome:
    """Run every task through ``backend`` under ``policy``; never lose work.

    ``tasks`` is a sequence of argument tuples for ``fn`` (which must be a
    module-level, picklable function for the process backend).  Results come
    back in task order.  ``seeds`` (default: derived from ``policy.seed``)
    drive the deterministic backoff jitter — the sharded SAT paths pass
    their shard seeds here.  Raises :class:`ResilienceError` only when a
    task keeps failing even on the serial backend.
    """
    policy = policy or ResiliencePolicy()
    active = resolve_backend(backend, jobs=max_workers)
    n = len(tasks)
    outcome = ResilientOutcome(
        results=[None] * n,
        backend=active.name,
        final_backend=active.name,
        rounds=0,
        attempts=[0] * n,
    )
    if n == 0:
        return outcome
    if seeds is None:
        seeds = [policy.seed + 7919 * index for index in range(n)]
    elif len(seeds) != n:
        raise ValueError(f"got {len(seeds)} seeds for {n} tasks")

    budget = [policy.max_attempts] * n
    pending = list(range(n))
    consecutive_bad_rounds = 0
    try:
        with obs.trace.span(
            f"tasks.{label}", attrs={"backend": active.name, "tasks": n}
        ) as run_span:
            while pending:
                outcome.rounds += 1
                if outcome.rounds > 1:
                    outcome.retries += len(pending)
                    delay = max(
                        backoff_delay(policy, seeds[index], outcome.attempts[index] + 1)
                        for index in pending
                    )
                    if delay > 0:
                        time.sleep(delay)

                round_init, round_initargs = _round_initializer(
                    initializer, initargs, fault_plan, active, label
                )
                workers = max(1, min(max_workers or len(pending), len(pending)))
                executor = active.make_executor(workers, round_init, round_initargs)
                still_pending: list[int] = []
                round_bad = False
                abandoned = False
                try:
                    futures: list[tuple[int, Future | None, Any]] = []
                    for index in pending:
                        outcome.attempts[index] += 1
                        # Submit-to-resolve span: its duration includes queue
                        # wait, and its context is what the worker's span
                        # parents on.
                        task_span = obs.trace.start_span(
                            f"{label}[{index}]",
                            attrs={
                                "attempt": outcome.attempts[index],
                                "backend": active.name,
                            },
                        )
                        task_ctx = task_span.context()
                        try:
                            future = executor.submit(
                                call_with_faults, fn, tuple(tasks[index]),
                                index, outcome.attempts[index],
                                task_ctx.as_dict() if task_ctx is not None else None,
                            )
                        except BrokenExecutor:
                            # The pool died while we were still feeding it.
                            future = None
                        futures.append((index, future, task_span))

                    wait_timeout = policy.timeout if active.supports_timeout else None
                    for index, future, task_span in futures:
                        failure: str | None = None
                        value: Any = None
                        if future is None:
                            failure = "crash"
                        else:
                            try:
                                value = future.result(timeout=wait_timeout)
                            except FuturesTimeoutError:
                                failure = "timeout"
                                future.cancel()
                                abandoned = True
                            except faults.SimulatedCrash:
                                failure = "crash"
                            except BrokenExecutor:
                                failure = "crash"
                            except Exception as error:  # noqa: BLE001 - task attempt failed
                                failure = f"error: {error!r}"
                        if failure is None and isinstance(value, faults.CorruptResult):
                            failure = "corrupt"
                        if failure is None and policy.validate is not None:
                            try:
                                valid = policy.validate(index, value)
                            except Exception as error:  # noqa: BLE001
                                valid = False
                                failure = f"validator error: {error!r}"
                            if not valid and failure is None:
                                failure = "corrupt"
                        if failure is None:
                            outcome.results[index] = value
                            task_span.end()
                            continue
                        kind = failure.split(":", 1)[0]
                        if kind == "timeout":
                            outcome.timeouts += 1
                            round_bad = True
                        elif kind == "crash":
                            outcome.crashes += 1
                            round_bad = True
                        elif kind == "corrupt":
                            outcome.corrupt += 1
                        else:
                            outcome.errors += 1
                        outcome.failures.setdefault(index, []).append(
                            f"attempt {outcome.attempts[index]} on "
                            f"{active.name}: {failure}"
                        )
                        task_span.set_attr("failure", failure)
                        task_span.end(status=kind)
                        still_pending.append(index)
                finally:
                    _collect_backend_counters(executor, outcome)
                    _release_executor(executor, active, abandoned)

                consecutive_bad_rounds = consecutive_bad_rounds + 1 if round_bad else 0
                exhausted = [
                    index for index in still_pending
                    if outcome.attempts[index] >= budget[index]
                ]
                if still_pending and not outcome.degraded and active.name != "serial" and (
                    exhausted or consecutive_bad_rounds >= policy.max_backend_failures
                ):
                    # Stop trusting the pooled backend: finish the run inline.
                    outcome.degraded = True
                    outcome.degraded_reason = (
                        f"{len(exhausted)} {label}(s) exhausted "
                        f"{policy.max_attempts} attempts on the "
                        f"{active.name} backend"
                        if exhausted
                        else f"{consecutive_bad_rounds} consecutive failing rounds "
                        f"on the {active.name} backend"
                    )
                    active = SerialBackend()
                    outcome.final_backend = active.name
                    for index in still_pending:
                        budget[index] = outcome.attempts[index] + policy.max_attempts
                elif exhausted:
                    raise ResilienceError(
                        f"{len(exhausted)} {label}(s) failed permanently after "
                        f"{[outcome.attempts[i] for i in exhausted]} attempts: "
                        f"{ {i: outcome.failures[i] for i in exhausted} }",
                        failures=dict(outcome.failures),
                    )
                pending = still_pending
            run_span.set_attr("final_backend", active.name)
            run_span.set_attr("rounds", outcome.rounds)
    finally:
        if fault_plan is not None and not active.workers_are_processes:
            # Serial/thread rounds armed the plan in *this* process.
            faults.clear_fault_plan()
    _absorb_outcome_metrics(outcome)
    return outcome


def _absorb_outcome_metrics(outcome: ResilientOutcome) -> None:
    """Fold one run's robustness counters into the metrics registry."""
    if not obs.enabled():
        return
    counter_add = obs.metrics.counter_add
    counter_add("resilience_runs", 1)
    counter_add("resilience_rounds", outcome.rounds)
    for name in ("retries", "timeouts", "crashes", "errors", "corrupt"):
        value = getattr(outcome, name)
        if value:
            counter_add(f"resilience_{name}", value)
    if outcome.degraded:
        counter_add("resilience_degraded", 1)
    for key, value in outcome.backend_counters.items():
        if value:
            counter_add(f"queue_{key}", value)


def policy_for_spec(
    policy: ResiliencePolicy | None,
    cell_timeout: float | None,
    cell_max_attempts: int | None,
) -> ResiliencePolicy:
    """Fold an experiment spec's per-cell defaults into a policy.

    An explicit caller policy wins wholesale; otherwise the spec's
    ``cell_timeout`` / ``cell_max_attempts`` fill in over the defaults.
    """
    if policy is not None:
        return policy
    policy = ResiliencePolicy()
    if cell_timeout is not None:
        policy = replace(policy, timeout=cell_timeout)
    if cell_max_attempts is not None:
        policy = replace(policy, max_attempts=cell_max_attempts)
    return policy


__all__ = [
    "ResilienceError",
    "ResiliencePolicy",
    "ResilientOutcome",
    "backoff_delay",
    "call_with_faults",
    "policy_for_spec",
    "run_tasks",
]
