"""The experiment runner: executes registry grid cells on a pluggable backend.

``ExperimentRunner.run("figure5")`` asks the experiment's module for its grid
cells, executes each cell on an :class:`~repro.runner.backends
.ExecutionBackend` — in-process (``backend="serial"``, the ``jobs=1``
default, sharing the in-memory benchmark-context cache), across worker
processes (``backend="process"``, the ``jobs>1`` default), or worker threads
(``backend="thread"``) — streams one structured JSON record per completed
cell through :mod:`repro.experiments.reporting`, and hands the ordered cell
results to the module's ``collect``/``report`` hooks.

Execution is fault tolerant (:mod:`repro.runner.resilience`): crashed or
hung workers are detected, their cells retried with deterministic backoff,
and after repeated backend failures the run downgrades to the serial
backend and finishes anyway — the retry/downgrade counters land in the run
record.

This replaces the per-harness orchestration loops: a harness only declares
*what* its cells are and how to run one; scheduling, parallelism, caching,
robustness, and result persistence live here.
"""

from __future__ import annotations

import importlib
import sys
import time
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Any

from repro import obs
from repro.runner.backends import ExecutionBackend, resolve_backend
from repro.runner.cache import get_default_cache, set_default_cache
from repro.runner.faults import FaultPlan
from repro.runner.parallel import resolve_jobs
from repro.runner.registry import ExperimentSpec, GridCell, get_experiment
from repro.runner.resilience import ResiliencePolicy, policy_for_spec, run_tasks


@dataclass
class CellOutcome:
    """One executed grid cell: its identity, result, and wall-time."""

    name: str
    params: dict[str, Any]
    result: Any
    elapsed: float


@dataclass
class ExperimentRun:
    """Everything produced by one runner invocation."""

    experiment: str
    profile: str
    jobs: int
    options: dict[str, Any]
    outcomes: list[CellOutcome]
    collected: Any
    report_text: str
    elapsed: float
    cache_stats: dict[str, int] | None = None
    results_path: Path | None = None
    backend: str = "serial"
    resilience: dict[str, Any] | None = None
    telemetry: dict[str, Any] | None = None

    def record(self) -> dict[str, Any]:
        """JSON-ready summary of the whole run (cells + rendered report)."""
        return {
            "experiment": self.experiment,
            "profile": self.profile,
            "jobs": self.jobs,
            "backend": self.backend,
            "options": _jsonable(self.options),
            "elapsed_seconds": round(self.elapsed, 3),
            "cache_stats": self.cache_stats,
            "resilience": self.resilience,
            "telemetry": self.telemetry,
            "cells": [
                {
                    "cell": outcome.name,
                    "params": _jsonable(outcome.params),
                    "elapsed_seconds": round(outcome.elapsed, 3),
                    "result": _jsonable(outcome.result),
                }
                for outcome in self.outcomes
            ],
            "report": self.report_text,
        }


def _jsonable(value: Any) -> Any:
    """Reduce harness results (dataclasses, tuples, sets) to JSON types."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and callable(value.item):  # numpy scalars
        try:
            return value.item()
        except Exception:
            pass
    return str(value)


# ----------------------------------------------------------------------
# Worker-process entry points (module level: must be picklable by name)
# ----------------------------------------------------------------------
def _init_cell_worker(search_paths: list[str], cache_dir: str | None) -> None:
    """Replay the parent's import path and cache configuration in a worker."""
    for path in search_paths:
        if path not in sys.path:
            sys.path.append(path)
    if cache_dir is not None:
        from repro.runner.cache import set_default_cache as _set

        _set(cache_dir)


def _execute_cell(
    module_name: str, cell: GridCell, profile
) -> tuple[Any, float, dict[str, int] | None]:
    """Run one grid cell; return (result, elapsed, cache-stats delta).

    The stats delta is measured against this process's default cache, so
    worker processes report their own hit/miss contributions back to the
    parent for aggregation.
    """
    module = importlib.import_module(module_name)
    cache = get_default_cache()
    before = cache.stats.as_dict() if cache is not None else None
    started = time.perf_counter()
    with obs.trace.span("cell", attrs={"cell": cell.name}):
        result = module.run_cell(cell.params, profile)
    elapsed = time.perf_counter() - started
    delta = None
    if cache is not None and before is not None:
        after = cache.stats.as_dict()
        delta = {key: after[key] - before[key] for key in after}
    if obs.enabled():
        # Absorb the cell's solver work into the registry exactly once, at
        # the same granularity the run record reports it (per-cell
        # ``solver_stats`` dicts), so the merged instrument view reconciles
        # with the record.  A corrupt-result retry re-runs the cell and
        # therefore re-absorbs — the registry counts work *done*.
        obs.metrics.counter_add("runner_cells", 1)
        obs.metrics.observe("cell_seconds", elapsed)
        for stats in obs.metrics.iter_solver_stats(_jsonable(result)):
            obs.metrics.absorb_solver_stats(stats)
    return result, elapsed, delta


class ExperimentRunner:
    """Executes registered experiments over a pluggable execution backend.

    Args:
        jobs: workers for grid cells (1 = in-process serial;
            <= 0 = one per CPU).
        cache_dir: artifact-cache directory installed as the process-wide
            default for this run and for every worker (None keeps the
            ambient default, e.g. from ``DETERRENT_CACHE_DIR``).
        results_dir: when set, the runner streams one JSON line per completed
            cell to ``<results_dir>/<experiment>-<profile>.jsonl`` and writes
            the full run record to ``<experiment>-<profile>.json``.
        backend: execution backend — a name (``"serial"``, ``"process"``,
            ``"thread"``) or an :class:`ExecutionBackend` instance.  None
            keeps the historical default: serial for ``jobs=1``, the
            process pool otherwise.
        resilience: retry/timeout policy for cell execution; per-spec
            ``cell_timeout``/``cell_max_attempts`` overrides are folded in
            at run time.  None uses :class:`ResiliencePolicy` defaults.
        fault_plan: scripted faults for chaos testing (see
            :mod:`repro.runner.faults`); None in production.
        trace_dir: when set, enables the telemetry layer
            (:mod:`repro.obs`) for this process and every worker, exporting
            spans and merged metrics under the directory; the run record
            gains a ``telemetry`` block.  None keeps the ambient state
            (e.g. from ``DETERRENT_TRACE_DIR``).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        results_dir: str | Path | None = None,
        backend: ExecutionBackend | str | None = None,
        resilience: ResiliencePolicy | None = None,
        fault_plan: FaultPlan | None = None,
        trace_dir: str | Path | None = None,
    ) -> None:
        self.jobs = 1 if jobs == 1 else resolve_jobs(jobs)
        self.backend = resolve_backend(backend, jobs=self.jobs)
        self.resilience = resilience
        self.fault_plan = fault_plan
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.results_dir = Path(results_dir) if results_dir is not None else None
        if self.cache_dir is not None:
            set_default_cache(self.cache_dir)
        if trace_dir is not None:
            obs.configure(trace_dir)

    # ------------------------------------------------------------------
    def run(
        self,
        experiment: str | ExperimentSpec,
        profile="quick",
        options: dict[str, Any] | None = None,
    ) -> ExperimentRun:
        """Execute every grid cell of ``experiment`` and collect the results."""
        from repro.experiments.common import profile_by_name

        spec = experiment if isinstance(experiment, ExperimentSpec) else get_experiment(experiment)
        if isinstance(profile, str):
            profile = profile_by_name(profile)
        options = dict(options or {})
        module = spec.resolve()
        allowed = getattr(module, "OPTIONS", None)
        if allowed is not None:
            unknown = sorted(set(options) - set(allowed))
            if unknown:
                raise ValueError(
                    f"unknown option(s) for {spec.name!r}: {', '.join(unknown)}; "
                    f"supported: {', '.join(sorted(allowed))}"
                )
        cells = spec.build_cells(profile, options)
        if not cells:
            raise ValueError(f"experiment {spec.name!r} produced no grid cells")

        stream_path = None
        if self.results_dir is not None:
            stream_path = self.results_dir / f"{spec.name}-{profile.name}.jsonl"
            stream_path.unlink(missing_ok=True)

        started = time.perf_counter()
        outcomes: list[CellOutcome] = []
        cache_stats: dict[str, int] | None = None

        def _absorb(cell: GridCell, payload: tuple[Any, float, dict[str, int] | None]) -> None:
            nonlocal cache_stats
            result, elapsed, stats_delta = payload
            if stats_delta is not None:
                if cache_stats is None:
                    cache_stats = dict.fromkeys(stats_delta, 0)
                for key, value in stats_delta.items():
                    cache_stats[key] += value
            outcomes.append(self._record_cell(spec, profile, cell, result, elapsed, stream_path))

        policy = policy_for_spec(self.resilience, spec.cell_timeout, spec.cell_max_attempts)
        with obs.trace.span(
            f"run.{spec.name}",
            attrs={
                "profile": profile.name, "backend": self.backend.name,
                "jobs": self.jobs, "cells": len(cells),
            },
        ):
            execution = run_tasks(
                _execute_cell,
                [(spec.module, cell, profile) for cell in cells],
                backend=self.backend,
                policy=policy,
                initializer=_init_cell_worker,
                initargs=(list(sys.path), self.cache_dir),
                max_workers=min(self.jobs, len(cells)),
                fault_plan=self.fault_plan,
                label="cell",
            )
            for cell, payload in zip(cells, execution.results):
                _absorb(cell, payload)

            collected = module.collect([outcome.result for outcome in outcomes])
            report_text = module.report(collected)
        elapsed = time.perf_counter() - started

        run = ExperimentRun(
            experiment=spec.name,
            profile=profile.name,
            jobs=self.jobs,
            options=options,
            outcomes=outcomes,
            collected=collected,
            report_text=report_text,
            elapsed=elapsed,
            cache_stats=cache_stats,
            backend=self.backend.name,
            resilience=execution.counters(),
            telemetry=obs.summary(),
        )
        if self.results_dir is not None:
            from repro.experiments.reporting import save_json

            run.results_path = save_json(
                run.record(), self.results_dir / f"{spec.name}-{profile.name}.json"
            )
        # Fold this run's hit/miss/store counters into the cache root's
        # lifetime stats (surfaced by `deterrent cache` and GET /metrics).
        cache = get_default_cache()
        if cache is not None:
            cache.flush_stats()
        return run

    # ------------------------------------------------------------------
    def _record_cell(
        self,
        spec: ExperimentSpec,
        profile,
        cell: GridCell,
        result: Any,
        elapsed: float,
        stream_path: Path | None,
    ) -> CellOutcome:
        outcome = CellOutcome(name=cell.name, params=dict(cell.params), result=result,
                              elapsed=elapsed)
        if stream_path is not None:
            from repro.experiments.reporting import append_jsonl

            append_jsonl(
                {
                    "experiment": spec.name,
                    "profile": profile.name,
                    "cell": outcome.name,
                    "params": _jsonable(outcome.params),
                    "elapsed_seconds": round(outcome.elapsed, 3),
                    "result": _jsonable(outcome.result),
                },
                stream_path,
            )
        return outcome


def run_experiment(
    experiment: str | ExperimentSpec,
    profile="quick",
    jobs: int = 1,
    options: dict[str, Any] | None = None,
    cache_dir: str | Path | None = None,
    results_dir: str | Path | None = None,
    backend: ExecutionBackend | str | None = None,
    resilience: ResiliencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
    trace_dir: str | Path | None = None,
) -> ExperimentRun:
    """One-shot convenience wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(
        jobs=jobs,
        cache_dir=cache_dir,
        results_dir=results_dir,
        backend=backend,
        resilience=resilience,
        fault_plan=fault_plan,
        trace_dir=trace_dir,
    )
    return runner.run(experiment, profile=profile, options=options)


__all__ = ["CellOutcome", "ExperimentRun", "ExperimentRunner", "run_experiment"]
