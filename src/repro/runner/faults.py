"""Deterministic fault injection for the execution backends.

Correctness under failure is only trustworthy if every recovery path is
exercised by tests, and worker failure is exactly the kind of behaviour that
cannot be provoked reliably from the outside.  This module provides the
scripting hook: a picklable :class:`FaultPlan` travels to every worker
through the backend initializer (the same style as the shard→seed contract
in :mod:`repro.runner.parallel`) and makes a specific *task* misbehave on a
specific *attempt* — crash the worker, hang past the timeout, raise, or
return a corrupt result.

Faults are keyed on ``(task index, attempt number)`` rather than on worker
identity: pool workers are anonymous and pick up tasks nondeterministically,
but the task index is a pure function of the submitted work, so a scripted
scenario replays identically regardless of which worker draws which task.
A rule may additionally be scoped to one backend (``only_backend``), which
is how tests script "always fails under the process backend, succeeds after
the downgrade to serial".

The ``crash`` fault calls :func:`os._exit` only inside a real worker
*process* (the process backend passes ``workers_are_processes=True`` when
installing the plan); under the thread and serial backends — where exiting
would kill the caller — it raises :class:`SimulatedCrash` instead, which the
resilience layer classifies exactly like a dead worker.

Queue workers (``only_backend="queue"``, see :mod:`repro.service`) are real
processes, so their ``crash`` faults really ``os._exit`` mid-lease — and the
recovery path is the durable queue's lease expiry, not a broken pool.  A
reclaimed job re-runs the *same* submitted attempt in a fresh worker, so the
worker loop installs the job's delivery count as an **attempt offset**
(:func:`set_attempt_offset`): ``maybe_inject`` matches rules against
``attempt + offset``, which makes "crash on attempt 1" fire exactly once and
the redelivered job (effective attempt 2) recover — the same replay
semantics a retry round has on the in-process backends.

Nothing here runs unless a plan has been installed: production runs never
pay for the hook.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

#: Exit status of a worker process killed by a ``crash`` fault.
CRASH_EXIT_CODE = 23

#: The fault kinds a rule may request.
FAULT_KINDS = ("crash", "hang", "corrupt", "error")


class SimulatedCrash(RuntimeError):
    """A scripted worker crash in a context where ``os._exit`` would kill
    the caller (thread or serial backend)."""


@dataclass(frozen=True)
class CorruptResult:
    """The payload a ``corrupt`` fault returns in place of the real result.

    The resilience layer always rejects instances of this marker, so chaos
    tests can exercise the retry-on-bad-result path without a domain
    validator; detecting *real* silent corruption requires the caller's
    ``validate`` hook (see :class:`repro.runner.resilience.ResiliencePolicy`).
    """

    task_index: int
    attempt: int


@dataclass(frozen=True)
class FaultRule:
    """Make one task misbehave: ``kind`` on the first ``attempts`` attempts.

    ``task_index`` is the task's position in submission order (for the
    sharded SAT paths, the shard index; for the runner, the grid-cell
    index).  ``attempts`` bounds how often the fault fires — attempt
    numbers are 1-based and monotonically increasing across retries and
    backend downgrades, so ``attempts=1`` means "fail once, then recover".
    ``only_backend`` restricts the rule to one backend name (``"serial"``,
    ``"process"``, ``"thread"``, ``"queue"``); None fires everywhere.
    """

    task_index: int
    kind: str
    attempts: int = 1
    hang_seconds: float = 30.0
    only_backend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.task_index < 0:
            raise ValueError(f"task_index must be >= 0, got {self.task_index}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {self.hang_seconds}")

    def matches(self, task_index: int, attempt: int, backend_name: str) -> bool:
        """Does this rule fire for ``task_index`` on ``attempt``?"""
        return (
            self.task_index == task_index
            and attempt <= self.attempts
            and (self.only_backend is None or self.only_backend == backend_name)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable script of :class:`FaultRule` entries.

    Deterministic by construction: whether a fault fires depends only on
    ``(task index, attempt, backend name)`` — never on wall clock, process
    ids, or scheduling order.
    """

    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def rule_for(
        self, task_index: int, attempt: int, backend_name: str
    ) -> FaultRule | None:
        """The first rule that fires for this (task, attempt, backend)."""
        for rule in self.rules:
            if rule.matches(task_index, attempt, backend_name):
                return rule
        return None

    # ------------------------------------------------------------------
    # Convenience constructors for the common chaos scenarios
    # ------------------------------------------------------------------
    @staticmethod
    def crashing(
        *task_indices: int, attempts: int = 1, only_backend: str | None = None
    ) -> "FaultPlan":
        """Crash the worker running each listed task on its first attempts."""
        return FaultPlan(
            tuple(
                FaultRule(index, "crash", attempts=attempts, only_backend=only_backend)
                for index in task_indices
            )
        )

    @staticmethod
    def hanging(
        *task_indices: int,
        seconds: float,
        attempts: int = 1,
        only_backend: str | None = None,
    ) -> "FaultPlan":
        """Make each listed task sleep ``seconds`` before returning."""
        return FaultPlan(
            tuple(
                FaultRule(
                    index, "hang", attempts=attempts, hang_seconds=seconds,
                    only_backend=only_backend,
                )
                for index in task_indices
            )
        )

    @staticmethod
    def corrupting(
        *task_indices: int, attempts: int = 1, only_backend: str | None = None
    ) -> "FaultPlan":
        """Replace each listed task's result with a :class:`CorruptResult`."""
        return FaultPlan(
            tuple(
                FaultRule(index, "corrupt", attempts=attempts, only_backend=only_backend)
                for index in task_indices
            )
        )


# ----------------------------------------------------------------------
# Worker-side plan installation and injection
# ----------------------------------------------------------------------
# Read-only after installation, so plain module globals are safe under the
# thread backend too (every thread consults the same immutable plan).
_ACTIVE_PLAN: FaultPlan | None = None
_ACTIVE_BACKEND: str = ""
_ALLOW_PROCESS_EXIT: bool = False
_ATTEMPT_OFFSET: int = 0


def install_fault_plan(
    plan: FaultPlan | None, backend_name: str, workers_are_processes: bool
) -> None:
    """Arm ``plan`` in this process (called from the backend initializer).

    ``workers_are_processes`` gates the real ``os._exit`` crash: only a
    dedicated worker process may die for a ``crash`` rule; in-process
    backends raise :class:`SimulatedCrash` instead.
    """
    global _ACTIVE_PLAN, _ACTIVE_BACKEND, _ALLOW_PROCESS_EXIT, _ATTEMPT_OFFSET
    _ACTIVE_PLAN = plan
    _ACTIVE_BACKEND = backend_name
    _ALLOW_PROCESS_EXIT = workers_are_processes
    _ATTEMPT_OFFSET = 0


def set_attempt_offset(offset: int) -> None:
    """Shift the attempt number rules match against (queue redeliveries).

    The pooled backends bake the attempt number into each submitted call, so
    a retry is a *new* submission and rules key on it directly.  The durable
    queue instead *re-delivers the same submission* after a lease expires —
    the worker loop calls this with ``deliveries - 1`` before running a job
    so that rules observe ``submitted attempt + redeliveries`` and chaos
    scenarios replay identically on both execution styles.
    """
    global _ATTEMPT_OFFSET
    if offset < 0:
        raise ValueError(f"attempt offset must be >= 0, got {offset}")
    _ATTEMPT_OFFSET = offset


def attempt_offset() -> int:
    """The currently armed attempt offset (0 outside queue redeliveries)."""
    return _ATTEMPT_OFFSET


def clear_fault_plan() -> None:
    """Disarm any installed plan (the resilience layer's cleanup hook)."""
    install_fault_plan(None, "", False)


def active_fault_plan() -> FaultPlan | None:
    """The plan currently armed in this process, if any."""
    return _ACTIVE_PLAN


def maybe_inject(task_index: int, attempt: int) -> CorruptResult | None:
    """Fire the armed fault for ``(task_index, attempt)``, if one is scripted.

    Returns a :class:`CorruptResult` for a ``corrupt`` rule (the caller must
    substitute it for the real result), None when no fault applies.  A
    ``hang`` rule sleeps, then lets the task proceed normally — the parent's
    per-attempt timeout is what turns the hang into a failure.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return None
    rule = plan.rule_for(task_index, attempt + _ATTEMPT_OFFSET, _ACTIVE_BACKEND)
    if rule is None:
        return None
    if rule.kind == "crash":
        if _ALLOW_PROCESS_EXIT:
            os._exit(CRASH_EXIT_CODE)
        raise SimulatedCrash(
            f"injected crash: task {task_index}, attempt {attempt}"
        )
    if rule.kind == "hang":
        time.sleep(rule.hang_seconds)
        return None
    if rule.kind == "error":
        raise RuntimeError(
            f"injected error: task {task_index}, attempt {attempt}"
        )
    return CorruptResult(task_index=task_index, attempt=attempt)


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "CorruptResult",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrash",
    "active_fault_plan",
    "attempt_offset",
    "clear_fault_plan",
    "install_fault_plan",
    "maybe_inject",
    "set_attempt_offset",
]
