"""Declarative registry of every experiment harness.

Each experiment registers an :class:`ExperimentSpec` naming the module that
implements the harness protocol:

- ``cells(profile, options) -> list[GridCell]`` — the declarative parameter
  grid (one cell per independently-runnable unit of work);
- ``run_cell(params, profile) -> result`` — execute one cell (must be a
  module-level function with picklable inputs/outputs so cells can run in
  worker processes);
- ``collect(results) -> collected`` — assemble cell results (in cell order)
  into the harness's native result type;
- ``report(collected) -> str`` — render the paper-vs-measured report.

The registry itself never imports the experiment modules at import time
(specs resolve their module lazily), so it stays cycle-free and cheap to load
from the CLI.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any


@dataclass(frozen=True)
class GridCell:
    """One unit of experiment work: a name plus picklable parameters."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one registered experiment.

    ``cell_timeout`` and ``cell_max_attempts`` are per-spec overrides for
    the runner's resilience policy (see
    :func:`repro.runner.resilience.policy_for_spec`): a harness whose cells
    are known to be long-running can raise its per-attempt timeout, and one
    whose cells are cheap can afford extra retries.  None defers to the
    runner-wide policy.
    """

    name: str
    module: str
    title: str
    description: str = ""
    cell_timeout: float | None = None
    cell_max_attempts: int | None = None

    def resolve(self) -> ModuleType:
        """Import (lazily) and return the harness module."""
        module = importlib.import_module(self.module)
        for required in ("cells", "run_cell", "collect", "report"):
            if not hasattr(module, required):
                raise TypeError(
                    f"experiment module {self.module!r} does not define {required}()"
                )
        return module

    def build_cells(self, profile, options: dict[str, Any] | None = None) -> list[GridCell]:
        """The grid cells of this experiment for ``profile`` + ``options``."""
        return self.resolve().cells(profile, dict(options or {}))


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; available: {available}") from None


def all_experiments() -> tuple[ExperimentSpec, ...]:
    """All registered specs, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


#: The twelve experiment harnesses of the reproduction.
SPECS = tuple(
    register(spec)
    for spec in (
        ExperimentSpec(
            name="figure2",
            module="repro.experiments.figure2",
            title="Reward timing × masking combinations (Figure 2)",
            description="Four agent architectures on the MIPS analogue.",
        ),
        ExperimentSpec(
            name="figure3",
            module="repro.experiments.figure3",
            title="Loss trend, default vs boosted exploration (Figure 3)",
            description="Exploration settings and set diversity on c2670.",
        ),
        ExperimentSpec(
            name="figure5",
            module="repro.experiments.figure5",
            title="Trigger-width sweep (Figure 5)",
            description="DETERRENT vs TGRL coverage across trigger widths.",
        ),
        ExperimentSpec(
            name="figure6",
            module="repro.experiments.figure6",
            title="Coverage vs number of patterns (Figure 6)",
            description="Cumulative coverage curves on c2670 and c6288.",
        ),
        ExperimentSpec(
            name="figure7",
            module="repro.experiments.figure7",
            title="Rareness-threshold sweep (Figure 7)",
            description="Rare-net counts and coverage across thresholds.",
        ),
        ExperimentSpec(
            name="table1",
            module="repro.experiments.table1",
            title="Per-step vs end-of-episode reward (Table 1)",
            description="Training-rate and set-quality comparison on MIPS.",
        ),
        ExperimentSpec(
            name="table2",
            module="repro.experiments.table2",
            title="Coverage / test-length comparison (Table 2)",
            description="All techniques on all designs vs the paper's table.",
        ),
        ExperimentSpec(
            name="transfer",
            module="repro.experiments.transfer",
            title="Threshold-transfer experiment (§4.5)",
            description="Train at threshold 0.14, evaluate at 0.10.",
        ),
        ExperimentSpec(
            name="ablations",
            module="repro.experiments.ablations",
            title="Design-choice ablations",
            description="Reward shape, exact-set reward, and k sweeps.",
        ),
        ExperimentSpec(
            name="pipeline",
            module="repro.experiments.pipeline_run",
            title="End-to-end DETERRENT pipeline",
            description="Full Figure-4 flow plus coverage on one design.",
        ),
        ExperimentSpec(
            name="sequential",
            module="repro.experiments.sequential",
            title="Sequential workload: multi-cycle trigger coverage",
            description="Raw sequential netlists, state-dependent rare nets, "
                        "counter/shift-register triggers across cycle depths.",
        ),
        ExperimentSpec(
            name="sequential_detect",
            module="repro.experiments.sequential_detect",
            title="SAT-guided sequential detection vs random sequences",
            description="Temporal justification on the unrolled transition "
                        "relation: SAT-guided sequence sets against the "
                        "random baseline at equal budget.",
        ),
    )
)


__all__ = [
    "GridCell",
    "ExperimentSpec",
    "SPECS",
    "register",
    "get_experiment",
    "all_experiments",
]
