"""Experiment orchestration: sharded solvers, artifact cache, registry, runner.

This package is the orchestration layer the DETERRENT paper implies but the
per-harness scripts used to re-implement ad hoc:

- :mod:`repro.runner.parallel` — process-sharded pairwise-compatibility
  computation (the paper's 64-process offline phase, §3.3), with a serial
  fallback that is bit-identical to the sharded path.
- :mod:`repro.runner.cache` — content-addressed on-disk artifact cache for
  rare nets, compatibility analyses, and Trojan populations, keyed by netlist
  fingerprint + configuration fingerprint.
- :mod:`repro.runner.registry` — declarative specs for every experiment
  harness (name, module, grid cells).
- :mod:`repro.runner.execution` — the runner that executes grid cells on a
  pluggable backend and streams structured JSON results.
- :mod:`repro.runner.backends` — the execution-backend seam: serial,
  process-pool, and thread-pool implementations of one executor protocol.
- :mod:`repro.runner.resilience` — retries with deterministic backoff,
  per-attempt timeouts, crash resubmission, and graceful degradation to the
  serial backend.
- :mod:`repro.runner.faults` — deterministic fault injection (scripted
  crash/hang/corrupt/error) for chaos-testing every recovery path above.
"""

from repro.runner.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.runner.cache import (
    ArtifactCache,
    config_fingerprint,
    get_default_cache,
    netlist_fingerprint,
    set_default_cache,
)
from repro.runner.execution import CellOutcome, ExperimentRun, ExperimentRunner, run_experiment
from repro.runner.faults import CorruptResult, FaultPlan, FaultRule, SimulatedCrash
from repro.runner.parallel import (
    CompatibilityShard,
    make_shards,
    parallel_compatibility_matrix,
    resolve_jobs,
    serial_compatibility_matrix,
)
from repro.runner.registry import ExperimentSpec, all_experiments, get_experiment
from repro.runner.resilience import (
    ResilienceError,
    ResiliencePolicy,
    ResilientOutcome,
    run_tasks,
)

__all__ = [
    "ArtifactCache",
    "config_fingerprint",
    "get_default_cache",
    "netlist_fingerprint",
    "set_default_cache",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
    "CorruptResult",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrash",
    "ResilienceError",
    "ResiliencePolicy",
    "ResilientOutcome",
    "run_tasks",
    "CompatibilityShard",
    "make_shards",
    "parallel_compatibility_matrix",
    "resolve_jobs",
    "serial_compatibility_matrix",
    "ExperimentSpec",
    "all_experiments",
    "get_experiment",
    "CellOutcome",
    "ExperimentRun",
    "ExperimentRunner",
    "run_experiment",
]
