"""Experiment orchestration: sharded solvers, artifact cache, registry, runner.

This package is the orchestration layer the DETERRENT paper implies but the
per-harness scripts used to re-implement ad hoc:

- :mod:`repro.runner.parallel` — process-sharded pairwise-compatibility
  computation (the paper's 64-process offline phase, §3.3), with a serial
  fallback that is bit-identical to the sharded path.
- :mod:`repro.runner.cache` — content-addressed on-disk artifact cache for
  rare nets, compatibility analyses, and Trojan populations, keyed by netlist
  fingerprint + configuration fingerprint.
- :mod:`repro.runner.registry` — declarative specs for every experiment
  harness (name, module, grid cells).
- :mod:`repro.runner.execution` — the runner that executes grid cells
  serially or across worker processes and streams structured JSON results.
"""

from repro.runner.cache import (
    ArtifactCache,
    config_fingerprint,
    get_default_cache,
    netlist_fingerprint,
    set_default_cache,
)
from repro.runner.execution import CellOutcome, ExperimentRun, ExperimentRunner, run_experiment
from repro.runner.parallel import (
    CompatibilityShard,
    make_shards,
    parallel_compatibility_matrix,
    resolve_jobs,
    serial_compatibility_matrix,
)
from repro.runner.registry import ExperimentSpec, all_experiments, get_experiment

__all__ = [
    "ArtifactCache",
    "config_fingerprint",
    "get_default_cache",
    "netlist_fingerprint",
    "set_default_cache",
    "CompatibilityShard",
    "make_shards",
    "parallel_compatibility_matrix",
    "resolve_jobs",
    "serial_compatibility_matrix",
    "ExperimentSpec",
    "all_experiments",
    "get_experiment",
    "CellOutcome",
    "ExperimentRun",
    "ExperimentRunner",
    "run_experiment",
]
