"""Content-addressed on-disk cache for offline-phase artifacts.

The DETERRENT offline phase (rare-net extraction, pairwise compatibility,
Trojan-population sampling) is identical across every experiment harness that
targets the same (netlist, configuration) pair, and it dominates wall-time for
the larger circuits.  The cache stores each artifact under a key derived from

- a **netlist fingerprint** — SHA-256 of the canonical ``.bench``
  serialisation (topological gate order), so structurally identical circuits
  share entries regardless of how they were built, and
- a **configuration fingerprint** — SHA-256 of the canonical JSON encoding of
  the parameters that influenced the artifact (threshold, pattern count,
  seed, trigger width, ...).

The content-address key contract: an entry lives at
``<root>/<kind>/<config_fingerprint(**key_parts)>.pkl``, where the caller's
``key_parts`` must include every input that influenced the artifact — the
netlist (passed as its fingerprint or as a ``Netlist``, which is reduced to
its fingerprint), plus all scalar configuration.  ``config_fingerprint``
canonicalises before hashing (keys sorted, dataclasses reduced to tagged
dicts, tuples and lists identified, nested netlists fingerprinted), so two
call sites that build the same logical key — e.g. the compute path in
``prepare_benchmark`` and the write-through path in ``_write_through`` —
address the same file even across processes, sessions, and machines.  Key
construction is append-only (renaming a key part orphans old entries rather
than corrupting them).  Entries are immutable and never evicted implicitly;
``deterrent cache`` reports per-kind growth and ``deterrent cache prune``
(:meth:`ArtifactCache.prune`) applies explicit size/age-based eviction —
oldest entries first, every entry recomputable by construction.

Loads are corruption tolerant: any failure to read or unpickle an entry is
treated as a miss (the offending file is removed) and the artifact is simply
recomputed.  Stores are atomic (write to a temp file, then ``os.replace``) so
concurrent worker processes sharing one cache directory never observe partial
writes.

The module-level *default cache* is what :func:`repro.experiments.common.
prepare_benchmark` and the experiment runner consult when no explicit cache is
passed; it is configured with :func:`set_default_cache`, the
``DETERRENT_CACHE_DIR`` environment variable, or the CLI's ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, is_dataclass, asdict
from pathlib import Path
from typing import Any

try:
    import fcntl
except ImportError:  # non-POSIX platform: single-flight degrades to none
    fcntl = None

from repro import obs
from repro.circuits.bench_io import dumps_bench
from repro.circuits.netlist import Netlist

#: Environment variable that enables the default cache when set.
CACHE_DIR_ENV = "DETERRENT_CACHE_DIR"

#: Temp/lock files younger than this are treated as live (a writer inside
#: ``store`` or a single-flight build holding its lock) and never swept.
DEBRIS_MIN_AGE_SECONDS = 3600.0

_FINGERPRINT_MEMO_KEY = "runner.cache.netlist_fingerprint"


def netlist_fingerprint(netlist: Netlist) -> str:
    """SHA-256 fingerprint of a netlist's canonical ``.bench`` serialisation.

    The serialisation lists gates in topological order, so the fingerprint is
    stable across construction order and process boundaries.  The value is
    memoised on the netlist and invalidated automatically on mutation.
    """
    return netlist.memo(
        _FINGERPRINT_MEMO_KEY,
        lambda: hashlib.sha256(dumps_bench(netlist).encode()).hexdigest(),
    )


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable primitives with a stable form."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **_canonical(asdict(value))}
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Netlist):
        return {"__netlist__": netlist_fingerprint(value)}
    return repr(value)


def config_fingerprint(**key_parts: Any) -> str:
    """SHA-256 fingerprint of an arbitrary configuration mapping.

    Keys are sorted and values reduced to canonical JSON, so logically equal
    configurations fingerprint identically across processes and sessions.
    """
    payload = json.dumps(_canonical(key_parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (used by structured reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def merge(self, other: "CacheStats") -> None:
        """Fold another counter set into this one (used to undo a detach)."""
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.corrupt += other.corrupt


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact file: its kind, path, size, and modification time."""

    kind: str
    path: Path
    size: int
    mtime: float


@dataclass
class PruneReport:
    """Outcome of one :meth:`ArtifactCache.prune` pass."""

    removed_entries: int = 0
    removed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0
    removed_debris: int = 0
    removed_by_kind: dict[str, int] = field(default_factory=dict)
    dry_run: bool = False

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for callers that log or serialise prune outcomes."""
        return {
            "removed_entries": self.removed_entries,
            "removed_bytes": self.removed_bytes,
            "kept_entries": self.kept_entries,
            "kept_bytes": self.kept_bytes,
            "removed_debris": self.removed_debris,
            "removed_by_kind": dict(self.removed_by_kind),
            "dry_run": self.dry_run,
        }


@dataclass
class ArtifactCache:
    """Pickle-based content-addressed store under one root directory.

    Layout: ``<root>/<kind>/<config-digest>.pkl`` where *kind* names the
    artifact family (``rare_nets``, ``compatibility``, ``trojans``, ...) and
    the digest comes from :func:`config_fingerprint` over the caller's key
    parts (which should include the netlist fingerprint).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        # Session counters are bumped from worker threads (the thread backend
        # shares one cache object) while flush/snapshot read them; every
        # access goes through this lock so a flush's detach-and-reset never
        # races an increment.
        self._stats_lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_stats_lock", None)  # locks don't pickle
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    def path_for(self, kind: str, **key_parts: Any) -> Path:
        """Path of the entry for ``kind`` + key parts (whether or not it exists)."""
        return self.root / kind / f"{config_fingerprint(**key_parts)}.pkl"

    def path_for_digest(self, kind: str, digest: str) -> Path:
        """Path of the entry whose digest is already known.

        The detection service uses this: its job ids *are* cache digests
        (:func:`config_fingerprint` over the job's key parts), so a status
        probe can address the stored record by id alone, without
        reconstructing the key parts.
        """
        return self.root / kind / f"{digest}.pkl"

    def load_digest(self, kind: str, digest: str) -> Any | None:
        """Like :meth:`load`, addressed by a pre-computed digest."""
        return self._load_path(self.path_for_digest(kind, digest))

    def load(self, kind: str, **key_parts: Any) -> Any | None:
        """Return the stored artifact, or None on miss or corrupt entry."""
        return self._load_path(self.path_for(kind, **key_parts))

    def _load_path(self, path: Path) -> Any | None:
        try:
            with path.open("rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            with self._stats_lock:
                self.stats.misses += 1
            obs.metrics.counter_add("cache_misses")
            return None
        except Exception:
            # Truncated/garbled entry (e.g. a crashed writer predating atomic
            # stores, or bit rot): drop it and recompute.
            with self._stats_lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            obs.metrics.counter_add("cache_corrupt")
            obs.metrics.counter_add("cache_misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        with self._stats_lock:
            self.stats.hits += 1
        obs.metrics.counter_add("cache_hits")
        return artifact

    def store(self, kind: str, artifact: Any, **key_parts: Any) -> Path:
        """Atomically persist ``artifact`` and return its path."""
        path = self.path_for(kind, **key_parts)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stats.stores += 1
        obs.metrics.counter_add("cache_stores")
        return path

    def fetch(self, kind: str, builder, **key_parts: Any) -> Any:
        """Load the artifact or build + store it via ``builder()``.

        Builds are single-flight across processes: concurrent workers that
        miss on the same key serialise on an advisory file lock, so the first
        one computes and the rest load its result instead of duplicating the
        work (the offline phase is the most expensive artifact in the store).
        """
        with obs.profile.timed("cache.fetch"):
            artifact = self.load(kind, **key_parts)
        if artifact is not None:
            return artifact
        path = self.path_for(kind, **key_parts)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _build_lock(path):
            # Double-checked: a peer holding the lock may have stored it.
            artifact = self.load(kind, **key_parts)
            if artifact is None:
                with obs.profile.timed("cache.build"):
                    artifact = builder()
                self.store(kind, artifact, **key_parts)
        return artifact

    # ------------------------------------------------------------------
    # Stats: cheap snapshots + cross-process lifetime counters
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict[str, Any]:
        """Cheap stats view: this process's counters + the root's lifetime.

        ``session`` counts hits/misses/stores/corrupt observed by *this*
        ``ArtifactCache`` object since creation (or the last
        :meth:`flush_stats`); ``lifetime`` adds every counter any process
        has ever flushed into ``<root>/stats.json``.  One small JSON read —
        safe to call from a metrics endpoint on every scrape.

        The session read and the persistent read happen under the same
        advisory lock :meth:`flush_stats` holds, so a concurrent flusher can
        never be observed half-way (session already reset, ``stats.json``
        not yet updated — which used to under-count; or the reverse, which
        double-counted).
        """
        with _build_lock(self.root / "stats.json"):
            with self._stats_lock:
                session = self.stats.as_dict()
            lifetime = self._read_persistent_stats()
        for key, value in session.items():
            lifetime[key] = lifetime.get(key, 0) + value
        return {"session": session, "lifetime": lifetime}

    def flush_stats(self) -> dict[str, int]:
        """Fold this process's counters into ``<root>/stats.json``; return it.

        Guarded by the same advisory-lock mechanism as single-flight builds,
        so queue workers and the serving process can flush concurrently
        without losing increments.  The in-process counters detach (and
        reset) atomically *inside* the lock, so a concurrent
        :meth:`stats_snapshot` or increment can neither double-count a
        flushed session nor lose counts bumped mid-flush; if the write
        fails, the detached counters fold back so nothing is dropped.
        """
        with self._stats_lock:
            if not any(self.stats.as_dict().values()):
                return self._read_persistent_stats()
        stats_path = self.root / "stats.json"
        self.root.mkdir(parents=True, exist_ok=True)
        with _build_lock(stats_path):
            with self._stats_lock:
                session_stats, self.stats = self.stats, CacheStats()
            session = session_stats.as_dict()
            merged = self._read_persistent_stats()
            for key, value in session.items():
                merged[key] = merged.get(key, 0) + value
            merged["flushes"] = merged.get("flushes", 0) + 1
            descriptor, temp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(descriptor, "w") as handle:
                    json.dump(merged, handle)
                os.replace(temp_name, stats_path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                with self._stats_lock:
                    self.stats.merge(session_stats)
                raise
        return merged

    def _read_persistent_stats(self) -> dict[str, int]:
        try:
            loaded = json.loads((self.root / "stats.json").read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if not isinstance(loaded, dict):
            return {}
        return {
            str(key): int(value)
            for key, value in loaded.items()
            if isinstance(value, (int, float))
        }

    # ------------------------------------------------------------------
    # Inspection and eviction
    # ------------------------------------------------------------------
    def entries(self, kinds: list[str] | None = None) -> list[CacheEntry]:
        """All stored artifact files (optionally restricted to some kinds).

        Tolerant of concurrent mutation: entries that disappear between
        listing and ``stat`` are simply skipped, never raised.
        """
        found: list[CacheEntry] = []
        for kind, kind_dir in self._kind_dirs(kinds):
            for path in sorted(kind_dir.glob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                found.append(
                    CacheEntry(kind=kind, path=path, size=stat.st_size, mtime=stat.st_mtime)
                )
        return found

    def inventory(self) -> dict[str, tuple[int, int]]:
        """Per-kind ``(entry count, total bytes)``, including zero-entry kinds.

        A kind directory that holds no ``.pkl`` entries (only lock files, or
        nothing after a prune) is reported as ``(0, 0)`` rather than
        omitted, so consumers see a consistent kind list across runs.
        """
        summary: dict[str, tuple[int, int]] = {
            kind: (0, 0) for kind, _ in self._kind_dirs(None)
        }
        for entry in self.entries():
            count, size = summary.get(entry.kind, (0, 0))
            summary[entry.kind] = (count + 1, size + entry.size)
        return summary

    def prune(
        self,
        max_bytes: int | None = None,
        max_age_seconds: float | None = None,
        kinds: list[str] | None = None,
        dry_run: bool = False,
        now: float | None = None,
    ) -> PruneReport:
        """Evict entries by age and/or total size (oldest first); sweep debris.

        Eviction policy: entries older than ``max_age_seconds`` are removed
        first; if the surviving total still exceeds ``max_bytes``, the
        oldest remaining entries go until the total fits.  With ``kinds``
        both rules — including the ``max_bytes`` budget — apply to the
        selected kinds' entries only; other kinds are untouched and do not
        count against the budget.  Every entry is
        recomputable by construction, so eviction can never lose
        information — only warm-start time.  Writer temp files and orphaned
        build-lock files are swept once older than
        :data:`DEBRIS_MIN_AGE_SECONDS` (younger ones may belong to live
        concurrent workers).  With ``dry_run`` the report is computed but
        nothing is deleted.
        """
        if now is None:
            now = time.time()
        report = PruneReport(dry_run=dry_run)
        survivors: list[CacheEntry] = []
        doomed: list[CacheEntry] = []
        for entry in self.entries(kinds):
            too_old = (
                max_age_seconds is not None and now - entry.mtime >= max_age_seconds
            )
            (doomed if too_old else survivors).append(entry)
        if max_bytes is not None:
            survivors.sort(key=lambda entry: entry.mtime)
            total = sum(entry.size for entry in survivors)
            cut = 0
            while cut < len(survivors) and total > max_bytes:
                total -= survivors[cut].size
                cut += 1
            doomed.extend(survivors[:cut])
            survivors = survivors[cut:]
        removed_paths: set[Path] = set()
        for entry in doomed:
            if not dry_run:
                try:
                    entry.path.unlink()
                except OSError:
                    # Undeletable entry: it survives, so account for it as
                    # kept and leave its lock alone in the debris sweep.
                    survivors.append(entry)
                    continue
            removed_paths.add(entry.path)
            report.removed_entries += 1
            report.removed_bytes += entry.size
            report.removed_by_kind[entry.kind] = (
                report.removed_by_kind.get(entry.kind, 0) + 1
            )
        report.kept_entries = len(survivors)
        report.kept_bytes = sum(entry.size for entry in survivors)
        report.removed_debris = self._sweep_debris(
            kinds,
            dry_run=dry_run,
            now=now,
            doomed_paths=removed_paths,
        )
        return report

    def _kind_dirs(self, kinds: list[str] | None) -> list[tuple[str, Path]]:
        """(kind, directory) pairs under the root, tolerant of a missing root."""
        root = Path(self.root)
        try:
            children = sorted(path for path in root.iterdir() if path.is_dir())
        except OSError:
            return []
        return [
            (path.name, path)
            for path in children
            if kinds is None or path.name in kinds
        ]

    def _sweep_debris(
        self,
        kinds: list[str] | None,
        dry_run: bool,
        now: float,
        doomed_paths: set[Path] | None = None,
    ) -> int:
        """Remove stale writer temp files and orphaned build locks.

        Honours the caller's ``kinds`` restriction, and only files older
        than :data:`DEBRIS_MIN_AGE_SECONDS` are touched: a young ``.tmp``
        may be a live writer mid-``store`` and a young orphan ``.lock`` may
        guard a first single-flight build in progress — deleting either
        would break the concurrent workers the cache explicitly supports.
        ``doomed_paths`` names entries the surrounding prune pass removes
        (or, on a dry run, *would* remove), so a lock whose entry is doomed
        counts as orphaned and dry-run reports match real runs.
        """
        doomed_paths = doomed_paths or set()
        removed = 0
        for _, kind_dir in self._kind_dirs(kinds):
            candidates = list(kind_dir.glob("*.tmp")) + [
                lock for lock in kind_dir.glob("*.lock")
                if not lock.with_suffix(".pkl").exists()
                or lock.with_suffix(".pkl") in doomed_paths
            ]
            for stale in candidates:
                try:
                    age = now - stale.stat().st_mtime
                except OSError:
                    continue
                if age < DEBRIS_MIN_AGE_SECONDS:
                    continue  # possibly live: a writer or an in-flight build
                if not dry_run:
                    try:
                        stale.unlink()
                    except OSError:
                        continue
                removed += 1
        return removed


@contextmanager
def _build_lock(artifact_path: Path):
    """Advisory cross-process lock guarding one artifact's build.

    Best-effort: when the lock file cannot be opened (missing parent
    directory — e.g. a stats snapshot of a cache root that was never
    written to), the context degrades to unlocked rather than raising.
    """
    if fcntl is None:
        yield
        return
    lock_path = artifact_path.with_suffix(".lock")
    try:
        handle = lock_path.open("w")
    except OSError:
        yield
        return
    with handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


_default_cache: ArtifactCache | None = None
_default_resolved = False


def set_default_cache(cache: ArtifactCache | str | Path | None) -> ArtifactCache | None:
    """Install the process-wide default cache (None disables caching)."""
    global _default_cache, _default_resolved
    if cache is not None and not isinstance(cache, ArtifactCache):
        cache = ArtifactCache(Path(cache))
    _default_cache = cache
    _default_resolved = True
    return _default_cache


def get_default_cache() -> ArtifactCache | None:
    """The default cache: explicitly set, else from ``DETERRENT_CACHE_DIR``."""
    global _default_resolved
    if not _default_resolved:
        directory = os.environ.get(CACHE_DIR_ENV)
        set_default_cache(directory if directory else None)
    return _default_cache


__all__ = [
    "CACHE_DIR_ENV",
    "ArtifactCache",
    "CacheEntry",
    "CacheStats",
    "PruneReport",
    "config_fingerprint",
    "get_default_cache",
    "netlist_fingerprint",
    "set_default_cache",
]
