"""Content-addressed on-disk cache for offline-phase artifacts.

The DETERRENT offline phase (rare-net extraction, pairwise compatibility,
Trojan-population sampling) is identical across every experiment harness that
targets the same (netlist, configuration) pair, and it dominates wall-time for
the larger circuits.  The cache stores each artifact under a key derived from

- a **netlist fingerprint** — SHA-256 of the canonical ``.bench``
  serialisation (topological gate order), so structurally identical circuits
  share entries regardless of how they were built, and
- a **configuration fingerprint** — SHA-256 of the canonical JSON encoding of
  the parameters that influenced the artifact (threshold, pattern count,
  seed, trigger width, ...).

The content-address key contract: an entry lives at
``<root>/<kind>/<config_fingerprint(**key_parts)>.pkl``, where the caller's
``key_parts`` must include every input that influenced the artifact — the
netlist (passed as its fingerprint or as a ``Netlist``, which is reduced to
its fingerprint), plus all scalar configuration.  ``config_fingerprint``
canonicalises before hashing (keys sorted, dataclasses reduced to tagged
dicts, tuples and lists identified, nested netlists fingerprinted), so two
call sites that build the same logical key — e.g. the compute path in
``prepare_benchmark`` and the write-through path in ``_write_through`` —
address the same file even across processes, sessions, and machines.  The
flip side: entries are immutable and *never evicted*; key construction is
append-only (renaming a key part orphans old entries rather than corrupting
them).  ``deterrent cache`` reports per-kind growth.

Loads are corruption tolerant: any failure to read or unpickle an entry is
treated as a miss (the offending file is removed) and the artifact is simply
recomputed.  Stores are atomic (write to a temp file, then ``os.replace``) so
concurrent worker processes sharing one cache directory never observe partial
writes.

The module-level *default cache* is what :func:`repro.experiments.common.
prepare_benchmark` and the experiment runner consult when no explicit cache is
passed; it is configured with :func:`set_default_cache`, the
``DETERRENT_CACHE_DIR`` environment variable, or the CLI's ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field, is_dataclass, asdict
from pathlib import Path
from typing import Any

try:
    import fcntl
except ImportError:  # non-POSIX platform: single-flight degrades to none
    fcntl = None

from repro.circuits.bench_io import dumps_bench
from repro.circuits.netlist import Netlist

#: Environment variable that enables the default cache when set.
CACHE_DIR_ENV = "DETERRENT_CACHE_DIR"

_FINGERPRINT_MEMO_KEY = "runner.cache.netlist_fingerprint"


def netlist_fingerprint(netlist: Netlist) -> str:
    """SHA-256 fingerprint of a netlist's canonical ``.bench`` serialisation.

    The serialisation lists gates in topological order, so the fingerprint is
    stable across construction order and process boundaries.  The value is
    memoised on the netlist and invalidated automatically on mutation.
    """
    return netlist.memo(
        _FINGERPRINT_MEMO_KEY,
        lambda: hashlib.sha256(dumps_bench(netlist).encode()).hexdigest(),
    )


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable primitives with a stable form."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__, **_canonical(asdict(value))}
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Netlist):
        return {"__netlist__": netlist_fingerprint(value)}
    return repr(value)


def config_fingerprint(**key_parts: Any) -> str:
    """SHA-256 fingerprint of an arbitrary configuration mapping.

    Keys are sorted and values reduced to canonical JSON, so logically equal
    configurations fingerprint identically across processes and sessions.
    """
    payload = json.dumps(_canonical(key_parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (used by structured reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


@dataclass
class ArtifactCache:
    """Pickle-based content-addressed store under one root directory.

    Layout: ``<root>/<kind>/<config-digest>.pkl`` where *kind* names the
    artifact family (``rare_nets``, ``compatibility``, ``trojans``, ...) and
    the digest comes from :func:`config_fingerprint` over the caller's key
    parts (which should include the netlist fingerprint).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, kind: str, **key_parts: Any) -> Path:
        """Path of the entry for ``kind`` + key parts (whether or not it exists)."""
        return self.root / kind / f"{config_fingerprint(**key_parts)}.pkl"

    def load(self, kind: str, **key_parts: Any) -> Any | None:
        """Return the stored artifact, or None on miss or corrupt entry."""
        path = self.path_for(kind, **key_parts)
        try:
            with path.open("rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Truncated/garbled entry (e.g. a crashed writer predating atomic
            # stores, or bit rot): drop it and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return artifact

    def store(self, kind: str, artifact: Any, **key_parts: Any) -> Path:
        """Atomically persist ``artifact`` and return its path."""
        path = self.path_for(kind, **key_parts)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def fetch(self, kind: str, builder, **key_parts: Any) -> Any:
        """Load the artifact or build + store it via ``builder()``.

        Builds are single-flight across processes: concurrent workers that
        miss on the same key serialise on an advisory file lock, so the first
        one computes and the rest load its result instead of duplicating the
        work (the offline phase is the most expensive artifact in the store).
        """
        artifact = self.load(kind, **key_parts)
        if artifact is not None:
            return artifact
        path = self.path_for(kind, **key_parts)
        path.parent.mkdir(parents=True, exist_ok=True)
        with _build_lock(path):
            # Double-checked: a peer holding the lock may have stored it.
            artifact = self.load(kind, **key_parts)
            if artifact is None:
                artifact = builder()
                self.store(kind, artifact, **key_parts)
        return artifact


@contextmanager
def _build_lock(artifact_path: Path):
    """Advisory cross-process lock guarding one artifact's build."""
    if fcntl is None:
        yield
        return
    lock_path = artifact_path.with_suffix(".lock")
    with lock_path.open("w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


_default_cache: ArtifactCache | None = None
_default_resolved = False


def set_default_cache(cache: ArtifactCache | str | Path | None) -> ArtifactCache | None:
    """Install the process-wide default cache (None disables caching)."""
    global _default_cache, _default_resolved
    if cache is not None and not isinstance(cache, ArtifactCache):
        cache = ArtifactCache(Path(cache))
    _default_cache = cache
    _default_resolved = True
    return _default_cache


def get_default_cache() -> ArtifactCache | None:
    """The default cache: explicitly set, else from ``DETERRENT_CACHE_DIR``."""
    global _default_resolved
    if not _default_resolved:
        directory = os.environ.get(CACHE_DIR_ENV)
        set_default_cache(directory if directory else None)
    return _default_cache


__all__ = [
    "CACHE_DIR_ENV",
    "ArtifactCache",
    "CacheStats",
    "config_fingerprint",
    "get_default_cache",
    "netlist_fingerprint",
    "set_default_cache",
]
