"""Deterministic random-number-generator helpers.

Every stochastic component in the library (simulation, Trojan sampling, PPO,
baselines) accepts either a seed or a :class:`numpy.random.Generator`.  These
helpers normalise that interface so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing generator, or None.

    Passing an existing generator returns it unchanged so that callers can
    thread one RNG through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Used by vectorised environments and parallel Trojan sampling so that each
    worker gets a distinct but reproducible stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(
        seed if isinstance(seed, int) else make_rng(seed).integers(2**63)
    )
    return [np.random.default_rng(child) for child in root.spawn(count)]
