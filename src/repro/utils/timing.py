"""Lightweight timing utilities used by the experiment harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    The experiment harnesses use this to report training rates
    (steps/minute, episodes/minute) in the same units as the paper's Table 1.
    """

    _start: float | None = None
    _elapsed: float = 0.0
    laps: dict[str, float] = field(default_factory=dict)

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Total elapsed seconds, including the current running segment."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running

    def lap(self, name: str) -> float:
        """Record the current elapsed time under ``name`` and return it."""
        value = self.elapsed
        self.laps[name] = value
        return value

    def rate_per_minute(self, count: int) -> float:
        """Return ``count`` normalised to an events-per-minute rate."""
        seconds = self.elapsed
        if seconds <= 0.0:
            return float("inf") if count > 0 else 0.0
        return 60.0 * count / seconds
