"""Shared utilities: deterministic RNG helpers, timing, and bit packing."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch

__all__ = ["make_rng", "spawn_rngs", "Stopwatch"]
