"""Span-based tracing with cross-process context propagation.

A span records a named, timed unit of work: 128-bit trace id shared by the
whole tree, 64-bit span id, parent span id, attributes, a wall-clock start
for display, and a monotonic duration.  The ambient span stack is
thread-local, so thread-pool workers and the caller's own thread never
interleave their trees.

Context travels three ways, all carrying the same ``(trace_id, span_id)``
pair:

- **initializer chain** — :func:`install_remote_parent` is called from the
  worker initializer that :mod:`repro.runner.resilience` chains in front of
  the user's, making the submitting side's span the default parent of
  everything the worker does;
- **per-task argument** — ``call_with_faults`` ships each task's own parent
  context (:meth:`TraceContext.as_dict`) so every attempt becomes a child of
  the exact submission span that scheduled it;
- **HTTP headers** — the W3C ``traceparent`` header
  (``00-<trace_id>-<span_id>-01``), injected by
  :func:`repro.service.server.http_json` and honoured by ``POST /jobs``.

Finished spans append to ``spans-<pid>.jsonl`` in the trace directory;
:func:`load_spans` folds every per-pid file back into one tree and
:func:`chrome_trace` renders the Chrome ``trace_event`` JSON view
(load it at ``chrome://tracing`` or https://ui.perfetto.dev).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.obs import _runtime

_FLUSH_EVERY = 100  # buffered span records before an automatic flush

_LOCAL = threading.local()
_BUFFER: list[str] = []
_BUFFER_PID = os.getpid()
_BUFFER_LOCK = threading.Lock()
_REMOTE_PARENT: "TraceContext | None" = None


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The picklable (trace id, span id) pair a child span needs."""

    trace_id: str
    span_id: str

    def as_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: object) -> "TraceContext | None":
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            return cls(trace_id=trace_id, span_id=span_id)
        return None

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        if not header:
            return None
        parts = header.strip().split("-")
        if len(parts) != 4 or len(parts[1]) != 32 or len(parts[2]) != 16:
            return None
        return cls(trace_id=parts[1], span_id=parts[2])


class Span:
    """One in-flight unit of work; call :meth:`end` exactly once."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "start_time", "_start_perf", "_ended",
    )

    def __init__(self, name: str, trace_id: str, parent_id: str | None,
                 attrs: dict | None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.start_time = time.time()
        self._start_perf = time.perf_counter()
        self._ended = False

    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def end(self, status: str = "ok") -> None:
        if self._ended:
            return
        self._ended = True
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_time,
            "dur_s": time.perf_counter() - self._start_perf,
            "status": status,
            "pid": os.getpid(),
            "attrs": self.attrs,
        }
        _emit(record)


class _NoopSpan:
    """Stands in for a Span while telemetry is disabled."""

    __slots__ = ()

    def context(self):  # noqa: D102 - mirror of Span.context
        return None

    def set_attr(self, key, value):
        pass

    def end(self, status: str = "ok"):
        pass


NOOP_SPAN = _NoopSpan()


def _emit(record: dict) -> None:
    global _BUFFER, _BUFFER_PID
    with _BUFFER_LOCK:
        if os.getpid() != _BUFFER_PID:
            # forked child inherited the parent's buffer: those records
            # belong to (and will be flushed by) the parent
            _BUFFER = []
            _BUFFER_PID = os.getpid()
        try:
            _BUFFER.append(json.dumps(record, default=str))
        except (TypeError, ValueError):
            return
        should_flush = len(_BUFFER) >= _FLUSH_EVERY
    if should_flush:
        flush_spans()


def flush_spans(trace_dir: str | None = None) -> None:
    """Append buffered span records to this process's ``spans-<pid>.jsonl``."""
    directory = trace_dir or _runtime.STATE.trace_dir
    global _BUFFER
    with _BUFFER_LOCK:
        if not _BUFFER or directory is None:
            return
        pending, _BUFFER = _BUFFER, []
    path = Path(directory) / f"spans-{os.getpid()}.jsonl"
    try:
        with path.open("a") as handle:
            handle.write("\n".join(pending) + "\n")
    except OSError:
        pass  # telemetry must never take the workload down


def _stack() -> list[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def install_remote_parent(context: "TraceContext | None") -> None:
    """Set the default parent for spans opened with an empty ambient stack.

    Called from worker initializers so work executed far from the submitting
    process still joins the submitter's trace.
    """
    global _REMOTE_PARENT
    _REMOTE_PARENT = context


def current_context() -> TraceContext | None:
    """The ambient context: innermost open span, else the installed remote parent."""
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1].context()
    return _REMOTE_PARENT


def start_span(name: str, parent: "TraceContext | Span | None" = None,
               attrs: dict | None = None):
    """Open a span *without* making it ambient (manual lifecycle).

    Used by the submitting side of :func:`repro.runner.resilience.run_tasks`,
    where many per-task spans are open at once and each ends when its future
    resolves.  Returns :data:`NOOP_SPAN` while telemetry is disabled.
    """
    if not _runtime.STATE.enabled:
        return NOOP_SPAN
    if parent is None:
        parent_context = current_context()
    elif isinstance(parent, Span):
        parent_context = parent.context()
    else:
        parent_context = parent
    if parent_context is not None:
        return Span(name, parent_context.trace_id, parent_context.span_id, attrs)
    return Span(name, _new_trace_id(), None, attrs)


@contextmanager
def span(name: str, attrs: dict | None = None,
         parent: "TraceContext | Span | None" = None):
    """Open a span, make it ambient on this thread, end it on exit."""
    if not _runtime.STATE.enabled:
        yield NOOP_SPAN
        return
    opened = start_span(name, parent=parent, attrs=attrs)
    stack = _stack()
    stack.append(opened)
    try:
        yield opened
    except BaseException:
        opened.set_attr("error", True)
        raise
    finally:
        if stack and stack[-1] is opened:
            stack.pop()
        elif opened in stack:
            stack.remove(opened)
        opened.end(status="error" if opened.attrs.get("error") else "ok")


# ----------------------------------------------------------------------
# Reading exported traces (CLI `deterrent trace`, tests, smoke checks)
# ----------------------------------------------------------------------
def load_spans(trace_dir: str | os.PathLike) -> list[dict]:
    """All span records under ``trace_dir``, sorted by wall-clock start.

    Corrupt lines (a worker killed mid-write) are skipped: trace reads are
    best-effort by design.
    """
    records: list[dict] = []
    for path in sorted(Path(trace_dir).glob("spans-*.jsonl")):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "span_id" in record:
                records.append(record)
    records.sort(key=lambda record: record.get("start", 0.0))
    return records


def build_tree(spans: list[dict]) -> tuple[list[dict], dict[str, list[dict]]]:
    """Group spans into ``(roots, children-by-parent-id)``.

    A span whose ``parent_id`` is missing from the exported set (e.g. its
    worker died before flushing) is treated as a root so it stays visible.
    """
    by_id = {record["span_id"]: record for record in spans}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    for record in spans:
        parent_id = record.get("parent_id")
        if parent_id and parent_id in by_id:
            children.setdefault(parent_id, []).append(record)
        else:
            roots.append(record)
    return roots, children


def orphan_spans(spans: list[dict]) -> list[dict]:
    """Spans that claim a parent which never got exported."""
    by_id = {record["span_id"] for record in spans}
    return [
        record for record in spans
        if record.get("parent_id") and record["parent_id"] not in by_id
    ]


def chrome_trace(spans: list[dict]) -> dict:
    """Render spans as Chrome ``trace_event`` complete events (phase "X")."""
    events = []
    for record in spans:
        events.append({
            "name": record.get("name", "?"),
            "cat": "deterrent",
            "ph": "X",
            "ts": record.get("start", 0.0) * 1e6,
            "dur": record.get("dur_s", 0.0) * 1e6,
            "pid": record.get("pid", 0),
            "tid": record.get("pid", 0),
            "args": {
                **(record.get("attrs") or {}),
                "trace_id": record.get("trace_id"),
                "span_id": record.get("span_id"),
                "parent_id": record.get("parent_id"),
                "status": record.get("status"),
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


__all__ = [
    "NOOP_SPAN",
    "Span",
    "TraceContext",
    "build_tree",
    "chrome_trace",
    "current_context",
    "flush_spans",
    "install_remote_parent",
    "load_spans",
    "orphan_spans",
    "span",
    "start_span",
]
