"""Opt-in sampled profiling hooks for the hot paths.

The hooks live on paths where even one extra dict lookup per iteration would
show up in benchmarks (the CDCL propagate/decide loop, the compiled
simulation step), so they follow a fetch-once pattern: the call site asks for
a :class:`HotPath` **once** per outer call (``solve()`` entry, ``run_packed``
entry) and gets ``None`` while profiling is disabled — the loop then pays a
single ``is None`` branch, nothing else.

Observations land in the shared metrics registry as
``profile_<name>_seconds`` histograms, so cross-worker merge, the Prometheus
view, and the ``deterrent trace`` percentile report all come for free.
Sampling records the duration of every ``every``-th call (true sampling, no
scaling), which is the right discipline for percentiles.
"""

from __future__ import annotations

import time

from repro.obs import _runtime, metrics


class HotPath:
    """Sampled timer for one named hot path (use via :func:`hot_path`)."""

    __slots__ = ("metric", "every", "_calls")

    def __init__(self, name: str, every: int) -> None:
        self.metric = f"profile_{name.replace('.', '_')}_seconds"
        self.every = max(1, every)
        self._calls = 0

    def sample(self) -> bool:
        """True when this call should be timed (every ``every``-th call)."""
        self._calls += 1
        return self._calls % self.every == 0

    def observe(self, seconds: float) -> None:
        metrics.registry().observe(self.metric, seconds)


def hot_path(name: str, every: int = 1) -> HotPath | None:
    """A :class:`HotPath` for ``name``, or ``None`` while profiling is off.

    Fetch once per outer call, then::

        hot = profile.hot_path("sat.propagate", every=64)
        ...
        if hot is not None and hot.sample():
            t0 = time.perf_counter()
            conflict = self._propagate()
            hot.observe(time.perf_counter() - t0)
        else:
            conflict = self._propagate()
    """
    if not _runtime.profiling_enabled():
        return None
    return HotPath(name, every)


class _Timer:
    __slots__ = ("metric", "_start")

    def __init__(self, metric: str) -> None:
        self.metric = metric
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        metrics.registry().observe(self.metric, time.perf_counter() - self._start)
        return False


class _NoopTimer:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_TIMER = _NoopTimer()


def timed(name: str):
    """Context manager recording every call's duration (coarser paths).

    Used on paths where per-call timing is cheap relative to the work —
    cache fetches and artifact builds — as opposed to the sampled
    :func:`hot_path` loops.
    """
    if not _runtime.profiling_enabled():
        return _NOOP_TIMER
    return _Timer(f"profile_{name.replace('.', '_')}_seconds")


__all__ = ["HotPath", "hot_path", "timed"]
