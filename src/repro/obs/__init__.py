"""Unified telemetry for the DETERRENT reproduction (stdlib only).

Three cooperating pieces, one switch:

- :mod:`repro.obs.trace` — span tracer with context propagation through
  worker initializers, queue-job headers, and HTTP ``traceparent`` headers;
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms that
  merge across workers like ``SolverStats.merge`` and export to Prometheus
  text exposition;
- :mod:`repro.obs.profile` — sampled timing hooks on the hot paths, feeding
  ``profile_*_seconds`` histograms in the same registry.

Everything is disabled (and near-free) until :func:`configure` points the
process at a trace directory — `deterrent run --trace <dir>` or the
``DETERRENT_TRACE_DIR`` environment variable.  See docs/observability.md.
"""

from __future__ import annotations

from repro.obs import metrics, profile, trace
from repro.obs._runtime import (
    ENV_PROFILE,
    ENV_TRACE_DIR,
    configure,
    disable,
    enabled,
    profiling_enabled,
    trace_dir,
)
from repro.obs.trace import TraceContext, current_context, install_remote_parent


def flush() -> None:
    """Flush this process's buffered spans and metrics to the trace dir."""
    trace.flush_spans()
    metrics.flush()


def summary() -> dict | None:
    """Flush, then summarise this trace dir: span count, merged instruments.

    The ``telemetry`` block of run records — ``None`` while disabled, so
    untraced runs keep their record shape minus one null field.
    """
    if not enabled():
        return None
    flush()
    directory = trace_dir()
    merged = metrics.merged_snapshot(directory)
    return {
        "trace_dir": directory,
        "spans": len(trace.load_spans(directory)),
        "counters": merged["counters"],
        "gauges": merged["gauges"],
        "profiles": metrics.percentile_summary(merged),
    }


def install_worker(
    trace_directory: str | None,
    parent_context: dict | None = None,
    label: str | None = None,
) -> None:
    """Enable telemetry inside a worker (chained worker initializers).

    Safe to call repeatedly (thread pools run initializers once per thread)
    and with ``None`` arguments (telemetry disabled on the submitting side).
    """
    if trace_directory:
        configure(trace_directory, label=label, export_env=False)
    if parent_context:
        install_remote_parent(TraceContext.from_dict(parent_context))


def worker_install_args() -> tuple[str | None, dict | None]:
    """The picklable ``(trace_dir, parent_context)`` to ship to workers."""
    if not enabled():
        return None, None
    context = current_context()
    return trace_dir(), context.as_dict() if context else None


__all__ = [
    "ENV_PROFILE",
    "ENV_TRACE_DIR",
    "TraceContext",
    "configure",
    "current_context",
    "disable",
    "enabled",
    "flush",
    "install_remote_parent",
    "install_worker",
    "metrics",
    "profile",
    "profiling_enabled",
    "summary",
    "trace",
    "trace_dir",
    "worker_install_args",
]
