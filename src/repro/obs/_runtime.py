"""Shared on/off state for the telemetry layer.

One switch controls everything: :func:`configure` points the process at a
trace directory and enables span export, the metrics registry, and (by
default) the profiling hooks.  Everything stays a cheap no-op until then.

The trace directory is also exported through the ``DETERRENT_TRACE_DIR``
environment variable so *spawned* worker processes (process pools under the
``spawn`` start method, ``deterrent queue-worker`` subprocesses launched by
``serve``) enable themselves on import.  Workers reached through an
initializer chain (:mod:`repro.runner.resilience`) or a queue-job header
(:mod:`repro.service.queue`) are configured explicitly as well, so the
environment variable is a belt-and-braces path, not a requirement.
"""

from __future__ import annotations

import os
import threading

ENV_TRACE_DIR = "DETERRENT_TRACE_DIR"
ENV_PROFILE = "DETERRENT_PROFILE"


class _State:
    """Process-global telemetry switchboard (one instance per process)."""

    __slots__ = ("enabled", "trace_dir", "profile_enabled", "label", "lock")

    def __init__(self) -> None:
        self.enabled = False
        self.trace_dir: str | None = None
        self.profile_enabled = False
        self.label: str | None = None
        self.lock = threading.Lock()


STATE = _State()


def configure(
    trace_dir: str | os.PathLike,
    *,
    profile: bool | None = None,
    label: str | None = None,
    export_env: bool = True,
) -> None:
    """Enable telemetry, exporting spans and metrics under ``trace_dir``.

    ``profile=None`` defers to ``DETERRENT_PROFILE`` (default on: the hooks
    are sampled and only fire while telemetry is enabled at all).  With
    ``export_env`` the directory is published to child processes via the
    environment.
    """
    resolved = os.fspath(trace_dir)
    os.makedirs(resolved, exist_ok=True)
    with STATE.lock:
        STATE.trace_dir = resolved
        STATE.enabled = True
        if profile is None:
            STATE.profile_enabled = os.environ.get(ENV_PROFILE, "1") != "0"
        else:
            STATE.profile_enabled = bool(profile)
        if label is not None:
            STATE.label = label
    if export_env:
        os.environ[ENV_TRACE_DIR] = resolved
        if profile is not None:
            os.environ[ENV_PROFILE] = "1" if profile else "0"


def disable() -> None:
    """Turn telemetry off again (tests; long-lived embedding processes)."""
    with STATE.lock:
        STATE.enabled = False
        STATE.trace_dir = None
        STATE.profile_enabled = False
        STATE.label = None
    os.environ.pop(ENV_TRACE_DIR, None)


def enabled() -> bool:
    return STATE.enabled


def profiling_enabled() -> bool:
    return STATE.enabled and STATE.profile_enabled


def trace_dir() -> str | None:
    return STATE.trace_dir


def _autoconfigure_from_env() -> None:
    env_dir = os.environ.get(ENV_TRACE_DIR)
    if env_dir and not STATE.enabled:
        try:
            configure(env_dir, export_env=False)
        except OSError:
            pass  # unwritable inherited path: stay disabled rather than crash


_autoconfigure_from_env()
