"""Process-local metrics registry: counters, gauges, duration histograms.

The registry follows the merge discipline of
:meth:`repro.sat.solver.SolverStats.merge`: every worker accumulates into its
own process-local registry, snapshots are plain JSON-able dicts, and merging
is commutative and associative — counters and histogram buckets **sum**,
gauges take the **max** (they record high-water marks such as the solver's
deepest trail).  Workers flush their registry to ``metrics-<pid>.json`` in
the trace directory (atomic replace, cumulative totals, so re-flushing after
every task is idempotent under merge), and :func:`merged_snapshot` folds all
per-pid files back into one view.

Every mutation goes through module-level helpers (:func:`counter_add`,
:func:`gauge_max`, :func:`observe`) that return immediately while telemetry
is disabled — the hot-path cost of the instrumentation is one attribute load
and one branch.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
from bisect import bisect_left
from pathlib import Path

from repro.obs import _runtime

#: Histogram bucket upper bounds in seconds: 1 µs … ~134 s, powers of two.
#: Fixed for every instrument so histograms merge bucket-by-bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(2.0**i * 1e-6 for i in range(28))

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


class Histogram:
    """Fixed-bucket duration histogram with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-th percentile (0 < q <= 100)."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(BUCKET_BOUNDS):
                    return min(BUCKET_BOUNDS[index], self.max)
                return self.max
        return self.max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        histogram = cls()
        histogram.merge_dict(payload)
        return histogram

    def merge_dict(self, payload: dict) -> None:
        self.count += int(payload.get("count", 0))
        self.total += float(payload.get("total", 0.0))
        other_min = payload.get("min")
        if other_min is not None and other_min < self.min:
            self.min = float(other_min)
        other_max = float(payload.get("max", 0.0))
        if other_max > self.max:
            self.max = other_max
        other_buckets = payload.get("buckets") or []
        for index, bucket_count in enumerate(other_buckets):
            if index < len(self.buckets):
                self.buckets[index] += int(bucket_count)


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter_add(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self.gauges.get(name, -math.inf):
                self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.observe(value)

    def snapshot(self) -> dict:
        """A JSON-able copy: ``{"counters": …, "gauges": …, "histograms": …}``."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self.histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot in (sum / max / bucket-sum)."""
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, value in (snapshot.get("gauges") or {}).items():
                if value > self.gauges.get(name, -math.inf):
                    self.gauges[name] = value
            for name, payload in (snapshot.get("histograms") or {}).items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram()
                histogram.merge_dict(payload)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def to_prometheus(self, prefix: str = "deterrent_") -> str:
        """Render the registry in the Prometheus text exposition format."""
        snapshot = self.snapshot()
        lines: list[str] = []
        for name in sorted(snapshot["counters"]):
            metric = prometheus_name(prefix + name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(snapshot['counters'][name])}")
        for name in sorted(snapshot["gauges"]):
            metric = prometheus_name(prefix + name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(snapshot['gauges'][name])}")
        for name in sorted(snapshot["histograms"]):
            payload = snapshot["histograms"][name]
            metric = prometheus_name(prefix + name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for index, bound in enumerate(BUCKET_BOUNDS):
                cumulative += payload["buckets"][index]
                lines.append(f'{metric}_bucket{{le="{bound:.6g}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
            lines.append(f"{metric}_sum {_format_value(payload['total'])}")
            lines.append(f"{metric}_count {payload['count']}")
        return "\n".join(lines) + "\n"


def prometheus_name(name: str) -> str:
    return _PROM_NAME.sub("_", name)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter_add(name: str, value: float = 1.0) -> None:
    """Increment a counter (no-op while telemetry is disabled)."""
    if not _runtime.STATE.enabled:
        return
    _REGISTRY.counter_add(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge (no-op while telemetry is disabled)."""
    if not _runtime.STATE.enabled:
        return
    _REGISTRY.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op while telemetry is disabled)."""
    if not _runtime.STATE.enabled:
        return
    _REGISTRY.observe(name, value)


def iter_solver_stats(value):
    """Yield every ``solver_stats`` dict nested anywhere inside ``value``.

    The shared walker behind per-cell absorption in the runner and the
    service's aggregate ``/metrics`` solver totals — both fold the same
    payload shape, so their views reconcile.
    """
    if isinstance(value, dict):
        for key, item in value.items():
            if key == "solver_stats" and isinstance(item, dict):
                yield item
            else:
                yield from iter_solver_stats(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from iter_solver_stats(item)


def absorb_solver_stats(stats: dict) -> None:
    """Fold one ``SolverStats.as_dict()`` payload into the registry.

    Monotonic totals become ``solver_*`` counters; ``max_trail`` is a
    high-water mark and becomes a gauge so cross-worker merge takes the max,
    matching :meth:`SolverStats.merge` exactly.
    """
    if not _runtime.STATE.enabled or not isinstance(stats, dict):
        return
    for key, value in stats.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key == "max_trail":
            _REGISTRY.gauge_max("solver_max_trail", value)
        else:
            _REGISTRY.counter_add(f"solver_{key}", value)


def flush(trace_dir: str | None = None) -> None:
    """Write this process's cumulative registry to ``metrics-<pid>.json``.

    Atomic (temp file + ``os.replace``) and cumulative, so flushing after
    every task is safe: the merged view reads each pid's latest totals once.
    """
    directory = trace_dir or _runtime.STATE.trace_dir
    if directory is None:
        return
    snapshot = _REGISTRY.snapshot()
    if not (snapshot["counters"] or snapshot["gauges"] or snapshot["histograms"]):
        return
    path = Path(directory) / f"metrics-{os.getpid()}.json"
    tmp_path = path.with_suffix(f".tmp{os.getpid()}")
    try:
        tmp_path.write_text(json.dumps(snapshot))
        os.replace(tmp_path, path)
    except OSError:
        pass  # telemetry must never take the workload down


def merged_snapshot(trace_dir: str | os.PathLike) -> dict:
    """Merge every ``metrics-*.json`` under ``trace_dir`` into one snapshot.

    Callers that hold live in-memory counters should :func:`flush` first.
    Corrupt or mid-write files are skipped — telemetry reads are best-effort.
    """
    merged = MetricsRegistry()
    for path in sorted(Path(trace_dir).glob("metrics-*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            merged.merge(payload)
    return merged.snapshot()


def percentile_summary(snapshot: dict) -> dict[str, dict[str, float]]:
    """p50/p90/p99 (plus count, total) for every histogram in a snapshot."""
    summary: dict[str, dict[str, float]] = {}
    for name, payload in (snapshot.get("histograms") or {}).items():
        histogram = Histogram.from_dict(payload)
        summary[name] = {
            "count": histogram.count,
            "total": histogram.total,
            "p50": histogram.percentile(50),
            "p90": histogram.percentile(90),
            "p99": histogram.percentile(99),
        }
    return summary


def payload_to_prometheus(payload: dict, prefix: str = "deterrent_") -> str:
    """Render a nested dict of numeric leaves as Prometheus gauges.

    Used by the service to expose its JSON ``/metrics`` payload (queue depth,
    worker liveness, cache counters, solver totals) in text exposition format
    without changing how the payload is assembled.
    """
    lines: list[str] = []

    def walk(node: dict, path: str) -> None:
        for key in sorted(node):
            value = node[key]
            name = f"{path}_{key}" if path else str(key)
            if isinstance(value, dict):
                walk(value, name)
            elif isinstance(value, bool):
                continue
            elif isinstance(value, (int, float)):
                metric = prometheus_name(prefix + name)
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_format_value(float(value))}")

    walk(payload, "")
    return "\n".join(lines) + "\n"


def reset_registry() -> None:
    """Clear the process-local registry (test isolation)."""
    _REGISTRY.reset()


__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "absorb_solver_stats",
    "counter_add",
    "flush",
    "gauge_max",
    "iter_solver_stats",
    "merged_snapshot",
    "observe",
    "payload_to_prometheus",
    "percentile_summary",
    "prometheus_name",
    "registry",
    "reset_registry",
]
