#!/usr/bin/env python3
"""End-to-end smoke test of the detection service (the CI `service-smoke` job).

Starts `deterrent serve` with two local queue workers and telemetry
enabled, submits a tiny `sequential_detect` job as a raw `.bench` payload
over HTTP from inside a client span (so the `traceparent` header links the
whole pipeline into one trace), polls it to completion, scrapes
`/healthz` and `/metrics` in both JSON and Prometheus text exposition,
validates the exported span tree with `deterrent trace --check`, and
asserts the second submission of the identical job is answered from the
artifact cache without re-running anything.

Stdlib only, like the service itself.  Exit code 0 on success; any
failed expectation raises and exits non-zero with the server log dumped
for diagnosis.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.circuits.bench_io import dumps_bench  # noqa: E402
from repro.circuits.library import load_benchmark  # noqa: E402
from repro.service.server import http_json  # noqa: E402

PORT = 8787
BASE = f"http://127.0.0.1:{PORT}"

PAYLOAD = {
    "experiment": "sequential_detect",
    "profile": "tiny",
    "options": {"cycles": [2], "modes": ["consecutive"], "counts": [2]},
}


def wait_for(predicate, timeout: float, what: str, interval: float = 0.25):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"timed out after {timeout}s waiting for {what}")


def healthz_up() -> bool:
    try:
        status, body = http_json(f"{BASE}/healthz", timeout=2)
    except OSError:
        return False
    return status == 200 and body.get("status") == "ok"


def main() -> int:
    PAYLOAD["bench"] = dumps_bench(
        load_benchmark("s13207_like", combinational_view=False)
    )
    with tempfile.TemporaryDirectory(prefix="det-service-smoke-") as tmp:
        trace_dir = f"{tmp}/trace"
        log_path = Path(tmp) / "serve.log"
        with log_path.open("w") as log:
            server = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--queue-dir", f"{tmp}/queue",
                    "--cache-dir", f"{tmp}/cache",
                    "--port", str(PORT),
                    "--workers", "2",
                    "--trace", trace_dir,
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
            )
        try:
            wait_for(healthz_up, 30, "the server to come up")
            print("healthz: ok")

            # Submit from inside a client span: http_json injects the W3C
            # traceparent header, so the server's service.submit span — and
            # the queue worker's whole subtree — join this script's trace.
            obs.configure(trace_dir, export_env=False)
            with obs.trace.span("smoke.submit"):
                status, body = http_json(f"{BASE}/jobs", payload=PAYLOAD)
            obs.flush()
            assert status == 202, f"submit: expected 202, got {status}: {body}"
            assert body["status"] == "queued" and body["cached"] is False, body
            job_id = body["job_id"]
            print(f"submitted job {job_id[:12]}… (202 queued)")

            def finished():
                status, body = http_json(f"{BASE}/jobs/{job_id}")
                assert status == 200, f"poll: {status}: {body}"
                return body if body["status"] in ("done", "failed") else None

            done = wait_for(finished, 180, "the job to finish", interval=0.5)
            assert done["status"] == "done", f"job failed: {done.get('error')}"
            record = done["result"]
            assert record["design"] == "s13207_like", record["design"]
            assert record["cells"], "job record has no cells"
            assert record["test_sets"], "job record has no test sets"
            print(
                f"job done: {len(record['cells'])} cell(s), "
                f"{len(record['test_sets'])} test set(s), "
                f"report {len(record['report'])} chars"
            )

            status, health = http_json(f"{BASE}/healthz")
            assert status == 200 and health["status"] == "ok", health
            assert health["workers_alive"] >= 1, health
            print(f"healthz: ok ({health['workers_alive']} workers alive)")

            status, metrics = http_json(f"{BASE}/metrics")
            assert status == 200, metrics
            assert metrics["service"]["jobs_enqueued"] == 1, metrics["service"]
            assert metrics["queue"]["done"] >= 1, metrics["queue"]
            assert metrics["cache"]["lifetime"].get("stores", 0) >= 1, metrics["cache"]
            assert metrics["solver"].get("conflicts", 0) > 0, metrics["solver"]
            print(
                "metrics: "
                f"service={metrics['service']} "
                f"solver_conflicts={metrics['solver'].get('conflicts')}"
            )

            request = urllib.request.Request(
                f"{BASE}/metrics?format=prometheus", headers={"Accept": "text/plain"}
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                prom = response.read().decode("utf-8")
            assert prom.startswith("# TYPE"), prom[:200]
            assert "deterrent_queue_done" in prom, prom[:400]
            assert "deterrent_solver_conflicts" in prom, prom[:400]
            print(f"metrics: prometheus exposition ok ({len(prom.splitlines())} lines)")

            status, again = http_json(f"{BASE}/jobs", payload=PAYLOAD)
            assert status == 200, f"resubmit: expected 200 cache hit, got {status}: {again}"
            assert again["cached"] is True, again
            assert again["result"]["report"] == record["report"], "cached report differs"
            print("resubmit: answered from cache, report identical")

            check = subprocess.run(
                [sys.executable, "-m", "repro", "trace", trace_dir, "--check"],
                capture_output=True,
                text=True,
            )
            assert check.returncode == 0, (
                f"trace --check failed ({check.returncode}):\n"
                f"{check.stdout}\n{check.stderr}"
            )
            first_line = check.stdout.splitlines()[0] if check.stdout else ""
            print(f"trace --check: ok ({first_line})")

            print("service smoke: PASS")
            return 0
        except BaseException:
            print("---- server log ----", file=sys.stderr)
            sys.stderr.write(log_path.read_text())
            raise
        finally:
            obs.disable()
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()


if __name__ == "__main__":
    sys.exit(main())
