#!/usr/bin/env python3
"""Soft benchmark-regression check: warn, never fail.

Compares a fresh pytest-benchmark JSON report against the stored baseline in
``benchmarks/baseline.json`` and emits a GitHub Actions ``::warning::``
annotation for every tracked throughput metric that dropped by more than the
threshold (default 30%).  CI machines are noisy, so a regression here is a
signal to look at — not a merge blocker — and the script therefore always
exits 0 unless its inputs are unreadable.

Tracked metrics are *throughput* numbers from ``extra_info`` (bigger is
better): coverage-per-second for the end-to-end SAT-guided generation
benchmark and decisions/propagations-per-second for the solver-only one.

Usage::

    python scripts/check_benchmark_regression.py benchmark-results.json
    python scripts/check_benchmark_regression.py results.json --baseline benchmarks/baseline.json --threshold 0.3

Refreshing the baseline after an intentional performance change::

    python -m pytest -q benchmarks --benchmark-json benchmark-results.json
    python scripts/check_benchmark_regression.py benchmark-results.json --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: benchmark name -> extra_info keys to track (all bigger-is-better rates).
TRACKED_METRICS: dict[str, tuple[str, ...]] = {
    "test_sat_guided_vs_random_coverage_per_second": ("sat_coverage_per_second",),
    "test_solver_decisions_per_second": (
        "decisions_per_second",
        "propagations_per_second",
    ),
    # Guards the disabled-telemetry no-op path: solver throughput with the
    # obs package imported but tracing off must stay within noise of the
    # un-instrumented rate (the hooks are one `is None` branch when off).
    "test_solver_throughput_with_telemetry_disabled": (
        "disabled_telemetry_decisions_per_second",
    ),
}

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"


def extract_metrics(report: dict) -> dict[str, dict[str, float]]:
    """Pull the tracked extra_info rates out of a pytest-benchmark report."""
    metrics: dict[str, dict[str, float]] = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        keys = TRACKED_METRICS.get(name)
        if not keys:
            continue
        extra = bench.get("extra_info", {})
        found = {key: float(extra[key]) for key in keys if key in extra}
        if found:
            metrics[name] = found
    return metrics


def compare(
    current: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    threshold: float,
) -> list[str]:
    """Return one warning line per metric that regressed beyond ``threshold``."""
    warnings: list[str] = []
    for name, base_values in sorted(baseline.items()):
        current_values = current.get(name)
        if current_values is None:
            warnings.append(
                f"benchmark {name!r} is in the baseline but missing from the "
                "current report (was it renamed or skipped?)"
            )
            continue
        for key, base in sorted(base_values.items()):
            if base <= 0:
                continue
            value = current_values.get(key)
            if value is None:
                warnings.append(f"{name}: metric {key!r} missing from current report")
                continue
            drop = (base - value) / base
            if drop > threshold:
                warnings.append(
                    f"{name}: {key} dropped {drop:.0%} "
                    f"({base:g} -> {value:g}, threshold {threshold:.0%})"
                )
    return warnings


def _load_json(path: Path, role: str) -> dict | None:
    """Read a JSON dict from ``path``; a clean error (not a traceback) on bad input.

    Unreadable inputs exit 1 (per the module contract) — unlike a *missing
    baseline*, which is the normal first-run state and skips the check —
    because a malformed file in either role means the comparison silently
    checked nothing.
    """
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        print(f"error: cannot read {role} {path}: {error}", file=sys.stderr)
        return None
    except json.JSONDecodeError as error:
        print(f"error: {role} {path} is not valid JSON: {error}", file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(
            f"error: {role} {path} must contain a JSON object, "
            f"got {type(data).__name__}",
            file=sys.stderr,
        )
        return None
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="pytest-benchmark JSON report")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="fractional drop that triggers a warning (default 0.30)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current report instead of comparing",
    )
    args = parser.parse_args(argv)

    report = _load_json(args.report, "benchmark report")
    if report is None:
        return 1
    current = extract_metrics(report)

    if args.update_baseline:
        args.baseline.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline} ({len(current)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; skipping regression check")
        return 0

    baseline = _load_json(args.baseline, "baseline")
    if baseline is None:
        return 1
    warnings = compare(current, baseline, args.threshold)
    if warnings:
        for line in warnings:
            # GitHub Actions annotation; plain prefix elsewhere.
            print(f"::warning::benchmark regression: {line}")
    else:
        tracked = sum(len(values) for values in baseline.values())
        print(f"no benchmark regressions ({tracked} tracked metrics within threshold)")
    # Soft check by design: noisy CI runners must not block merges.
    return 0


if __name__ == "__main__":
    sys.exit(main())
