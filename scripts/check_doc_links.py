#!/usr/bin/env python3
"""Fail on broken intra-repo links in README.md and docs/*.md.

Scans every markdown link ``[text](target)`` in the repository's top-level
``README.md`` and everything under ``docs/``; a *relative* target (no URL
scheme, not an in-page ``#anchor``) must resolve — after stripping any
``#fragment`` — to an existing file or directory relative to the file that
contains the link.  External URLs and mailto links are not fetched.

Used by the CI ``docs`` job (``python scripts/check_doc_links.py``) and by
``tests/test_docs.py``, which imports :func:`broken_links` directly so the
check also runs in the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target).  Deliberately simple — the docs do
#: not use reference-style links or angle-bracket targets.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not intra-repo file references.
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def doc_files(root: Path) -> list[Path]:
    """The markdown files covered by the link check."""
    files = []
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """All (file, target) pairs whose relative target does not resolve."""
    broken: list[tuple[Path, str]] = []
    for path in doc_files(root):
        for target in _LINK.findall(path.read_text()):
            if _EXTERNAL.match(target) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append((path, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = doc_files(root)
    broken = broken_links(root)
    for path, target in broken:
        print(f"{path.relative_to(root)}: broken link -> {target}", file=sys.stderr)
    print(f"checked {len(files)} file(s), {len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
