"""Setuptools shim.

All project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e . --no-use-pep517`` (legacy editable install) keeps working
on environments whose setuptools predates bundled ``bdist_wheel`` support and
that cannot fetch the ``wheel`` package (offline containers).
"""

from setuptools import setup

setup()
