#!/usr/bin/env python
"""Run DETERRENT on your own circuit built with the NetlistBuilder API.

The script constructs a small bus controller from word-level blocks (an
address decoder, a command comparator, and an ALU), exports it to the ISCAS
``.bench`` and structural Verilog formats, and runs the DETERRENT pipeline on
it — the workflow a user would follow for a proprietary design.

Run with:  python examples/custom_circuit.py
"""

from pathlib import Path

from repro.circuits import blocks
from repro.circuits.bench_io import dumps_bench
from repro.circuits.builder import NetlistBuilder
from repro.circuits.stats import netlist_stats
from repro.circuits.verilog_io import dumps_verilog
from repro.core.config import DeterrentConfig
from repro.core.pipeline import DeterrentPipeline
from repro.rl.ppo import PpoConfig
from repro.trojan.evaluation import trigger_coverage
from repro.trojan.insertion import insert_trojan, sample_trojans


def build_bus_controller() -> "NetlistBuilder":
    """A toy bus controller: decoded addresses gate ALU results onto strobes."""
    builder = NetlistBuilder("bus_controller")
    address = builder.inputs("addr", 5)
    command = builder.inputs("cmd", 8)
    data_a = builder.inputs("da", 8)
    data_b = builder.inputs("db", 8)

    select_lines = blocks.decoder(builder, address)
    alu_out = blocks.alu(builder, data_a, data_b, command[:2])
    builder.outputs(alu_out, prefix="alu")

    # Command-match strobes: rare control events a Trojan would love to hide in.
    magic = [command[i] if i % 3 else builder.not_(command[i]) for i in range(8)]
    builder.output(builder.and_(*magic), name="magic_cmd")
    for index in (0, 7, 21, 30):
        builder.output(builder.and_(select_lines[index], alu_out[index % 8]),
                       name=f"strobe_{index}")
    builder.output(blocks.equality_comparator(builder, data_a, data_b), name="mirror")
    return builder


def main() -> None:
    netlist = build_bus_controller().build()
    stats = netlist_stats(netlist)
    print(f"Built {stats.name}: {stats.num_gates} gates, depth {stats.depth}")

    out_dir = Path("results")
    out_dir.mkdir(exist_ok=True)
    (out_dir / "bus_controller.bench").write_text(dumps_bench(netlist))
    (out_dir / "bus_controller.v").write_text(dumps_verilog(netlist))
    print(f"Exported netlist to {out_dir}/bus_controller.bench and .v")

    config = DeterrentConfig(
        rareness_threshold=0.1,
        total_training_steps=3072,
        k_patterns=64,
        seed=0,
        ppo=PpoConfig(num_steps=64, minibatch_size=64, hidden_sizes=(64, 64)),
    )
    result = DeterrentPipeline(config).run(netlist)
    print(f"Rare nets: {len(result.rare_nets)}, patterns generated: {result.test_length}")

    trojans = sample_trojans(
        result.netlist, result.compatibility.rare_nets, num_trojans=30,
        trigger_width=4, seed=2, justifier=result.compatibility.justifier,
    )
    coverage = trigger_coverage(result.netlist, trojans, result.pattern_set)
    print(f"Coverage against {coverage.num_trojans} sampled Trojans: "
          f"{coverage.coverage_percent:.1f}%")

    # Show one concrete HT-infected netlist and the pattern that exposes it.
    if trojans and coverage.detected and coverage.detected[0]:
        trojan = trojans[0]
        infected = insert_trojan(result.netlist, trojan)
        print(f"Example Trojan {trojan.name}: trigger on {trojan.trigger.nets}, "
              f"payload flips {trojan.payload_output!r}; infected netlist has "
              f"{infected.num_gates} gates (golden: {result.netlist.num_gates})")


if __name__ == "__main__":
    main()
