#!/usr/bin/env python
"""Study how trigger width affects detectability (the paper's Figure 5 scenario).

DETERRENT and TGRL pattern sets are generated once for the c6288 analogue and
then evaluated against Trojan populations of increasing trigger width.  The
paper's message — the set-cover formulation stays effective as triggers get
rarer while pattern-space RL collapses — is visible directly in the printed
sweep.

Run with:  python examples/trigger_width_study.py
"""

from repro.experiments import figure5
from repro.experiments.common import QUICK


def main() -> None:
    points = figure5.run(design="c6288_like", widths=(2, 4, 6, 8, 10), profile=QUICK)
    print(figure5.report(points))
    if points:
        last = points[-1]
        print(
            f"\nAt trigger width {last.width}: DETERRENT {last.deterrent_coverage:.1f}% "
            f"vs TGRL {last.tgrl_coverage:.1f}% "
            f"(paper: DETERRENT stays ~steady while TGRL drops sharply)"
        )


if __name__ == "__main__":
    main()
