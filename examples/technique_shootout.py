#!/usr/bin/env python
"""Compare DETERRENT against every baseline on one design (a mini Table 2).

For a single benchmark the script generates pattern sets with Random patterns,
the TestMAX-style ATPG proxy, MERO, TARMAC, TGRL and DETERRENT, then evaluates
all of them against the same population of randomly inserted Trojans and
prints a Table-2-style comparison of coverage vs test length.

Run with:  python examples/technique_shootout.py [benchmark-name]
"""

import sys

from repro.baselines.atpg import atpg_pattern_set
from repro.baselines.mero import MeroConfig, mero_pattern_set
from repro.baselines.random_patterns import random_pattern_set
from repro.baselines.tarmac import TarmacConfig, tarmac_pattern_set
from repro.baselines.tgrl import TgrlConfig, tgrl_pattern_set
from repro.core.agent import DeterrentAgent
from repro.core.patterns import generate_patterns
from repro.experiments.common import QUICK, prepare_benchmark
from repro.experiments.reporting import format_table
from repro.trojan.evaluation import trigger_coverage


def main(design: str = "c2670_like") -> None:
    profile = QUICK
    print(f"Preparing {design} (rare nets, compatibility, {profile.num_trojans} Trojans)...")
    context = prepare_benchmark(design, profile)
    print(f"  {context.netlist.num_gates} gates, {context.num_rare_nets} activatable rare nets")

    pattern_sets = {}
    print("Running TGRL baseline...")
    pattern_sets["TGRL"] = tgrl_pattern_set(
        context.netlist, context.compatibility.rare_nets,
        TgrlConfig(total_training_steps=profile.tgrl_training_steps, seed=0),
    )
    print("Running Random baseline...")
    pattern_sets["Random"] = random_pattern_set(
        context.netlist, len(pattern_sets["TGRL"]), seed=0
    )
    print("Running ATPG proxy...")
    pattern_sets["ATPG"] = atpg_pattern_set(
        context.netlist, context.compatibility.rare_nets,
        justifier=context.compatibility.justifier,
    )
    print("Running MERO...")
    pattern_sets["MERO"] = mero_pattern_set(
        context.netlist, context.compatibility.rare_nets,
        MeroConfig(num_random_patterns=256, n_detect=3, seed=0),
    )
    print("Running TARMAC...")
    pattern_sets["TARMAC"] = tarmac_pattern_set(
        context.compatibility, TarmacConfig(num_cliques=profile.num_cliques, seed=0)
    )
    print("Training DETERRENT...")
    agent = DeterrentAgent(context.compatibility, profile.deterrent_config())
    agent_result = agent.train()
    pattern_sets["DETERRENT"] = generate_patterns(
        context.compatibility, agent_result.largest_sets(profile.k_patterns),
        technique="DETERRENT",
    )

    rows = []
    for technique, pattern_set in pattern_sets.items():
        coverage = trigger_coverage(context.netlist, context.trojans, pattern_set)
        rows.append([technique, len(pattern_set), coverage.coverage_percent])
    rows.sort(key=lambda row: -row[2])
    print()
    print(format_table(["Technique", "Test length", "Trigger coverage (%)"], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c2670_like")
