#!/usr/bin/env python
"""Quickstart: run the full DETERRENT pipeline on one benchmark circuit.

The script loads the c6288 analogue (an array multiplier), extracts its rare
nets, trains the RL agent, generates test patterns with the SAT solver, and
finally measures trigger coverage against 50 randomly inserted 4-width
hardware Trojans — the end-to-end flow of the paper in ~30 seconds.

Run with:  python examples/quickstart.py
"""

from repro.circuits.library import load_benchmark
from repro.core.config import DeterrentConfig
from repro.core.pipeline import DeterrentPipeline
from repro.rl.ppo import PpoConfig
from repro.trojan.evaluation import trigger_coverage
from repro.trojan.insertion import sample_trojans


def main() -> None:
    netlist = load_benchmark("c6288_like")
    print(f"Loaded {netlist.name}: {netlist.num_gates} gates, "
          f"{len(netlist.inputs)} primary inputs")

    config = DeterrentConfig(
        rareness_threshold=0.1,
        total_training_steps=4096,
        k_patterns=128,
        num_envs=2,
        seed=0,
        ppo=PpoConfig(num_steps=64, minibatch_size=64, hidden_sizes=(64, 64)),
    )
    pipeline = DeterrentPipeline(config)
    result = pipeline.run(netlist)

    print(f"Rare nets (threshold {config.rareness_threshold}): {len(result.rare_nets)}")
    print(f"Largest compatible set found by the agent: {result.max_compatible_set_size} nets")
    print(f"Generated test patterns: {result.test_length}")
    print("Phase timings (s):", {k: round(v, 1) for k, v in result.timings.items()})

    trojans = sample_trojans(
        result.netlist,
        result.compatibility.rare_nets,
        num_trojans=50,
        trigger_width=4,
        seed=1,
        justifier=result.compatibility.justifier,
    )
    coverage = trigger_coverage(result.netlist, trojans, result.pattern_set)
    print(f"Trigger coverage against {coverage.num_trojans} random 4-width Trojans: "
          f"{coverage.coverage_percent:.1f}% using {coverage.test_length} patterns")


if __name__ == "__main__":
    main()
