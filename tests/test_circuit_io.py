"""Tests for .bench and structural Verilog I/O."""

import numpy as np
import pytest

from repro.circuits import generators
from repro.circuits.bench_io import BenchParseError, dumps_bench, load_bench, loads_bench
from repro.circuits.verilog_io import VerilogParseError, dumps_verilog, loads_verilog
from repro.simulation.logic_sim import BitParallelSimulator


def equivalent(netlist_a, netlist_b, num_patterns=64, seed=3):
    """Check functional equivalence on random patterns (same sources assumed)."""
    sim_a = BitParallelSimulator(netlist_a)
    sim_b = BitParallelSimulator(netlist_b)
    assert set(sim_a.sources) == set(sim_b.sources)
    rng = np.random.default_rng(seed)
    patterns = rng.integers(0, 2, size=(num_patterns, len(sim_a.sources)), dtype=np.uint8)
    values_a = sim_a.run_patterns(patterns)
    reorder = [sim_a.sources.index(net) for net in sim_b.sources]
    values_b = sim_b.run_patterns(patterns[:, reorder])
    for output in netlist_a.outputs:
        if not np.array_equal(values_a[output], values_b[output]):
            return False
    return True


class TestBenchFormat:
    def test_roundtrip_c17(self, c17):
        text = dumps_bench(c17)
        parsed = loads_bench(text, name="c17")
        assert set(parsed.inputs) == set(c17.inputs)
        assert set(parsed.outputs) == set(c17.outputs)
        assert parsed.num_gates == c17.num_gates
        assert equivalent(c17, parsed)

    def test_roundtrip_multiplier(self, small_multiplier):
        parsed = loads_bench(dumps_bench(small_multiplier))
        assert equivalent(small_multiplier, parsed)

    def test_sequential_roundtrip(self):
        sequential = generators.sequential_controller("seq", state_bits=4, data_width=4)
        parsed = loads_bench(dumps_bench(sequential))
        assert len(parsed.flip_flops) == len(sequential.flip_flops)

    def test_parse_error_on_garbage(self):
        with pytest.raises(BenchParseError):
            loads_bench("this is not bench format\n")

    def test_unknown_function_rejected(self):
        with pytest.raises(BenchParseError, match="unknown function"):
            loads_bench("INPUT(a)\nINPUT(b)\ny = MAJ(a, b)\nOUTPUT(y)\n")

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)  # trailing comment\n"
        netlist = loads_bench(text)
        assert netlist.num_gates == 1

    def test_dff_arity_checked(self):
        with pytest.raises(BenchParseError, match="DFF"):
            loads_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n")

    def test_file_roundtrip(self, tmp_path, c17):
        path = tmp_path / "c17.bench"
        path.write_text(dumps_bench(c17))
        assert equivalent(c17, load_bench(path))

    def test_buff_alias(self):
        netlist = loads_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
        assert netlist.num_gates == 1


class TestVerilogFormat:
    def test_roundtrip_c17(self, c17):
        text = dumps_verilog(c17)
        parsed = loads_verilog(text)
        assert equivalent(c17, parsed)

    def test_roundtrip_random_circuit(self, small_random_circuit):
        parsed = loads_verilog(dumps_verilog(small_random_circuit))
        assert equivalent(small_random_circuit, parsed)

    def test_module_name_preserved(self, c17):
        assert loads_verilog(dumps_verilog(c17)).name == "c17"

    def test_escaped_identifiers(self):
        mult = generators.multiplier_circuit("m", width=2)
        text = dumps_verilog(mult)
        assert "\\" in text  # bus names like a[0] need escaping
        assert equivalent(mult, loads_verilog(text))

    def test_parse_error_on_unknown_primitive(self):
        bad = "module t (a, y);\n  input a;\n  output y;\n  latch g_0 (y, a);\nendmodule\n"
        with pytest.raises(VerilogParseError):
            loads_verilog(bad)

    def test_sequential_emits_dff_instances(self):
        sequential = generators.sequential_controller("seq2", state_bits=3, data_width=4)
        text = dumps_verilog(sequential)
        assert "dff" in text
        parsed = loads_verilog(text)
        assert len(parsed.flip_flops) == len(sequential.flip_flops)
