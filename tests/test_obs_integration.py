"""Merge parity of the telemetry layer across all four execution backends.

The ISSUE's acceptance property: the same tiny grid traced on the serial,
thread, process, and queue backends must produce (a) one connected span tree
per run — every worker span linked back to the submitting run span — and
(b) identical merged solver instruments, which in turn reconcile exactly
with the per-cell ``solver_stats`` in the run record.  The grid is warmed
once into a shared artifact cache so all four runs execute the same cached
work and the comparison is bit-exact, not merely statistical.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import iter_solver_stats, merged_snapshot
from repro.obs.trace import build_tree, load_spans, orphan_spans
from repro.runner.cache import set_default_cache
from repro.runner.execution import run_experiment

pytestmark = pytest.mark.obs

BACKENDS = ("serial", "thread", "process", "queue")

#: One 2-cell sequential_detect grid — the smallest grid where parallel
#: backends actually schedule more than one task.
OPTIONS = {
    "designs": ["s13207_like"],
    "cycles": [2, 3],
    "modes": ["consecutive"],
    "counts": [2],
}


def _run_traced(backend: str, trace_dir, cache_dir):
    """One traced run on ``backend`` with a clean process-local registry."""
    obs.disable()
    obs.metrics.reset_registry()
    obs.trace.install_remote_parent(None)
    run = run_experiment(
        "sequential_detect",
        profile="tiny",
        jobs=1 if backend == "serial" else 2,
        options=dict(OPTIONS),
        backend=backend,
        cache_dir=cache_dir,
        trace_dir=trace_dir,
    )
    obs.flush()
    return run


@pytest.fixture(scope="module")
def traced_runs(tmp_path_factory):
    """The same grid run on every backend: {backend: (run, trace_dir)}."""
    cache_dir = tmp_path_factory.mktemp("shared-cache")
    runs = {}
    try:
        for backend in BACKENDS:
            trace_dir = tmp_path_factory.mktemp(f"trace-{backend}")
            runs[backend] = (_run_traced(backend, trace_dir, cache_dir), trace_dir)
    finally:
        obs.disable()
        obs.metrics.reset_registry()
        obs.trace.install_remote_parent(None)
        set_default_cache(None)
    return runs


def solver_counters(snapshot: dict) -> dict:
    """The deterministic instruments: solver counters + cell count."""
    counters = {
        name: value
        for name, value in snapshot["counters"].items()
        if name.startswith("solver_") or name == "runner_cells"
    }
    counters["solver_max_trail"] = snapshot["gauges"].get("solver_max_trail")
    return counters


def record_solver_totals(run) -> dict:
    """Sum the per-cell ``solver_stats`` of a run record (max for max_trail)."""
    totals: dict[str, float] = {}
    max_trail = 0
    for stats in iter_solver_stats(run.record()["cells"]):
        for key, value in stats.items():
            if key == "max_trail":
                max_trail = max(max_trail, value)
            elif isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0) + value
    totals["max_trail"] = max_trail
    return totals


class TestSpanLinkage:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_exports_one_connected_tree(self, traced_runs, backend):
        _, trace_dir = traced_runs[backend]
        spans = load_spans(trace_dir)
        assert spans, f"{backend}: no spans exported"
        assert orphan_spans(spans) == []
        assert len({record["trace_id"] for record in spans}) == 1
        roots, _ = build_tree(spans)
        assert len(roots) == 1
        assert roots[0]["name"] == "run.sequential_detect"
        assert roots[0]["attrs"]["backend"] == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_both_cells_have_submit_and_worker_spans(self, traced_runs, backend):
        _, trace_dir = traced_runs[backend]
        names = [record["name"] for record in load_spans(trace_dir)]
        # Submitting side: one manual span per scheduled cell ...
        assert names.count("cell[0]") == 1 and names.count("cell[1]") == 1
        # ... and the worker side executed each cell inside the same tree.
        assert names.count("cell") == 2

    def test_cold_run_traces_down_to_sequence_generation(self, traced_runs):
        # Only the first (serial, cache-cold) run actually generates
        # sequences — the warm backends load the cells from the shared
        # artifact cache, so the solver spans belong to the cold run.
        _, trace_dir = traced_runs["serial"]
        names = [record["name"] for record in load_spans(trace_dir)]
        assert names.count("solver.sequence_gen") == 2

    def test_queue_backend_adds_job_spans(self, traced_runs):
        _, trace_dir = traced_runs["queue"]
        spans = load_spans(trace_dir)
        job_spans = [record for record in spans if record["name"] == "queue.job"]
        assert len(job_spans) == 2
        by_id = {record["span_id"]: record for record in spans}
        for record in job_spans:
            assert by_id[record["parent_id"]]["name"] == "tasks.cell"


class TestInstrumentParity:
    def test_solver_instruments_identical_across_backends(self, traced_runs):
        reference = None
        for backend in BACKENDS:
            _, trace_dir = traced_runs[backend]
            counters = solver_counters(merged_snapshot(trace_dir))
            assert counters["runner_cells"] == 2, backend
            assert counters["solver_decisions"] > 0, backend
            if reference is None:
                reference = counters
            else:
                assert counters == reference, backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merged_registry_reconciles_with_the_run_record(
        self, traced_runs, backend
    ):
        run, trace_dir = traced_runs[backend]
        merged = merged_snapshot(trace_dir)
        expected = record_solver_totals(run)
        for key, value in expected.items():
            if key == "max_trail":
                assert merged["gauges"]["solver_max_trail"] == value
            else:
                assert merged["counters"][f"solver_{key}"] == value

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_record_carries_a_matching_telemetry_block(
        self, traced_runs, backend
    ):
        run, trace_dir = traced_runs[backend]
        telemetry = run.telemetry
        assert telemetry is not None
        assert telemetry["trace_dir"] == str(trace_dir)
        assert telemetry["spans"] > 0
        assert telemetry["counters"]["runner_cells"] == 2

    def test_results_are_identical_across_backends(self, traced_runs):
        reports = {run.report_text for run, _ in traced_runs.values()}
        assert len(reports) == 1  # telemetry never perturbs the science


class TestQueueBackendCounters:
    def test_resilience_counters_report_deliveries(self, traced_runs):
        run, _ = traced_runs["queue"]
        backend_counters = run.resilience["backend_counters"]
        assert backend_counters["deliveries"] >= 2
        assert backend_counters["reclaims"] == 0
        assert backend_counters["respawns"] == 0
