"""Tests for the on-disk artifact cache and the sharded compatibility path."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.circuits import generators
from repro.circuits.library import load_benchmark
from repro.core.compatibility import compute_compatibility
from repro.experiments import common
from repro.runner.cache import (
    ArtifactCache,
    config_fingerprint,
    netlist_fingerprint,
    set_default_cache,
)
from repro.simulation.rare_nets import extract_rare_nets


@pytest.fixture(autouse=True)
def _reset_default_cache():
    yield
    set_default_cache(None)


@pytest.fixture(scope="module")
def c2670():
    """The c2670 analogue — smallest Table 2 library circuit."""
    return load_benchmark("c2670_like")


@pytest.fixture(scope="module")
def c2670_rare(c2670):
    return extract_rare_nets(c2670, threshold=0.1, num_patterns=1024, seed=0)


class TestFingerprints:
    def test_netlist_fingerprint_stable_across_copies(self, c2670):
        assert netlist_fingerprint(c2670) == netlist_fingerprint(c2670.copy())

    def test_netlist_fingerprint_distinguishes_structure(self, c2670):
        other = generators.c17()
        assert netlist_fingerprint(c2670) != netlist_fingerprint(other)

    def test_config_fingerprint_order_independent(self):
        assert config_fingerprint(a=1, b=2.5) == config_fingerprint(b=2.5, a=1)

    def test_config_fingerprint_sensitive_to_values(self):
        assert config_fingerprint(threshold=0.1) != config_fingerprint(threshold=0.2)

    def test_config_fingerprint_handles_nested_structures(self):
        digest = config_fingerprint(rare=[("n1", 0), ("n2", 1)], nested={"x": [1, 2]})
        assert len(digest) == 64


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load("rare_nets", key=1) is None
        cache.store("rare_nets", ["payload"], key=1)
        assert cache.load("rare_nets", key=1) == ["payload"]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_on_config_change(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("rare_nets", "a", netlist="fp", threshold=0.1)
        assert cache.load("rare_nets", netlist="fp", threshold=0.1) == "a"
        assert cache.load("rare_nets", netlist="fp", threshold=0.12) is None
        assert cache.load("rare_nets", netlist="other", threshold=0.1) is None

    def test_corrupt_entry_falls_back_to_recompute(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.store("trojans", [1, 2, 3], key="x")
        path.write_bytes(b"\x80garbage not a pickle")
        assert cache.load("trojans", key="x") is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # the broken entry was dropped
        # fetch() rebuilds and re-stores.
        assert cache.fetch("trojans", lambda: [4, 5], key="x") == [4, 5]
        assert cache.load("trojans", key="x") == [4, 5]

    def test_fetch_builds_once(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return {"x": 1}

        assert cache.fetch("kind", build, k=1) == {"x": 1}
        assert cache.fetch("kind", build, k=1) == {"x": 1}
        assert len(calls) == 1


class TestDigestAddressing:
    """Entries addressed by a pre-computed digest (the service job path)."""

    def test_load_digest_reads_what_store_wrote(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("jobs", {"answer": 42}, design="c17", k=2)
        digest = config_fingerprint(design="c17", k=2)
        assert cache.path_for_digest("jobs", digest) == cache.path_for(
            "jobs", design="c17", k=2
        )
        assert cache.load_digest("jobs", digest) == {"answer": 42}
        assert cache.stats.hits == 1

    def test_load_digest_miss_counts_like_load(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load_digest("jobs", "f" * 64) is None
        assert cache.stats.misses == 1


class TestStatsPersistence:
    """Lifetime hit/miss counters shared across processes (``/metrics``)."""

    def test_flush_persists_and_resets_the_session(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.load("kind", k=1)  # miss
        cache.store("kind", "artifact", k=1)
        cache.load("kind", k=1)  # hit
        merged = cache.flush_stats()
        assert merged["hits"] == 1
        assert merged["misses"] == 1
        assert merged["stores"] == 1
        assert merged["flushes"] == 1
        # The session counters were folded in, not double-countable.
        assert cache.stats.as_dict() == {
            "hits": 0, "misses": 0, "stores": 0, "corrupt": 0,
        }

    def test_lifetime_stats_accumulate_across_cache_objects(self, tmp_path):
        first = ArtifactCache(tmp_path)
        first.store("kind", "a", k=1)
        first.flush_stats()
        # A different process (here: a different object) on the same root
        # folds its own counters into the shared lifetime file.
        second = ArtifactCache(tmp_path)
        assert second.load("kind", k=1) == "a"
        second.flush_stats()
        lifetime = ArtifactCache(tmp_path).stats_snapshot()["lifetime"]
        assert lifetime["stores"] == 1
        assert lifetime["hits"] == 1
        assert lifetime["flushes"] == 2

    def test_snapshot_merges_session_over_lifetime_without_flushing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("kind", "a", k=1)
        cache.flush_stats()
        cache.load("kind", k=1)  # unflushed session hit
        snapshot = cache.stats_snapshot()
        assert snapshot["session"]["hits"] == 1
        assert snapshot["lifetime"]["hits"] == 1
        assert snapshot["lifetime"]["stores"] == 1
        persisted = json.loads((tmp_path / "stats.json").read_text())
        assert persisted.get("hits", 0) == 0  # the session hit was not flushed

    def test_flush_with_nothing_to_report_writes_nothing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.flush_stats() == {}
        assert not (tmp_path / "stats.json").exists()

    def test_corrupt_stats_file_reads_as_empty(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("kind", "a", k=1)
        cache.flush_stats()
        (tmp_path / "stats.json").write_text("{not json")
        assert all(value == 0 for value in cache.stats_snapshot()["lifetime"].values())
        # And the next flush starts a fresh lifetime file.
        cache.load("kind", k=1)
        assert cache.flush_stats()["hits"] == 1


class TestPruneAndInventory:
    def _populate(self, tmp_path, kinds=("rare_nets", "trojans"), per_kind=3):
        cache = ArtifactCache(tmp_path / "cache")
        for kind in kinds:
            for index in range(per_kind):
                cache.store(kind, list(range(32)), key=index)
        return cache

    def test_entries_and_inventory(self, tmp_path):
        cache = self._populate(tmp_path)
        entries = cache.entries()
        assert len(entries) == 6
        inventory = cache.inventory()
        assert inventory["rare_nets"][0] == 3
        assert inventory["trojans"][0] == 3
        assert all(size > 0 for _, size in inventory.values())
        assert cache.entries(kinds=["trojans"]) == [
            entry for entry in entries if entry.kind == "trojans"
        ]

    def test_inventory_reports_zero_entry_kinds(self, tmp_path):
        cache = self._populate(tmp_path)
        cache.prune(max_age_seconds=0, kinds=["trojans"])
        inventory = cache.inventory()
        assert inventory["trojans"] == (0, 0)
        assert inventory["rare_nets"][0] == 3

    def test_missing_root_is_empty_not_an_error(self, tmp_path):
        cache = ArtifactCache(tmp_path / "never-created")
        assert cache.entries() == []
        assert cache.inventory() == {}
        report = cache.prune(max_bytes=0)
        assert report.removed_entries == 0

    def test_age_based_eviction(self, tmp_path):
        import os

        cache = self._populate(tmp_path, per_kind=2)
        old = cache.entries()[0]
        os.utime(old.path, (old.mtime - 3600, old.mtime - 3600))
        report = cache.prune(max_age_seconds=600)
        assert report.removed_entries == 1
        assert report.kept_entries == 3
        assert report.removed_by_kind == {old.kind: 1}
        assert not old.path.exists()

    def test_size_based_eviction_drops_oldest_first(self, tmp_path):
        import os

        cache = self._populate(tmp_path, kinds=("rare_nets",), per_kind=4)
        entries = sorted(cache.entries(), key=lambda entry: entry.path)
        # Give each entry a distinct age; index 0 is the oldest.
        for position, entry in enumerate(entries):
            stamp = entry.mtime - (len(entries) - position) * 100
            os.utime(entry.path, (stamp, stamp))
        keep_bytes = sum(entry.size for entry in entries[2:])
        report = cache.prune(max_bytes=keep_bytes)
        assert report.removed_entries == 2
        assert not entries[0].path.exists() and not entries[1].path.exists()
        assert entries[2].path.exists() and entries[3].path.exists()

    def test_dry_run_removes_nothing(self, tmp_path):
        cache = self._populate(tmp_path)
        report = cache.prune(max_bytes=0, dry_run=True)
        assert report.dry_run
        assert report.removed_entries == 6
        assert len(cache.entries()) == 6

    def test_dry_run_predicts_doomed_entry_locks_as_debris(self, tmp_path):
        """Locks orphaned *by* the prune itself must count in the dry run too."""
        import os
        import time

        cache = self._populate(tmp_path, kinds=("rare_nets",), per_kind=2)
        ancient = time.time() - 48 * 3600
        for entry in cache.entries():
            lock = entry.path.with_suffix(".lock")
            lock.write_bytes(b"")
            os.utime(lock, (ancient, ancient))
            os.utime(entry.path, (ancient, ancient))
        predicted = cache.prune(max_age_seconds=3600, dry_run=True)
        actual = cache.prune(max_age_seconds=3600)
        assert predicted.removed_entries == actual.removed_entries == 2
        assert predicted.removed_debris == actual.removed_debris == 2

    def test_debris_sweep_spares_live_files(self, tmp_path):
        import os
        import time

        cache = self._populate(tmp_path, kinds=("rare_nets",), per_kind=1)
        kind_dir = cache.entries()[0].path.parent
        ancient = time.time() - 48 * 3600
        # A lock whose entry exists is never swept, however old.
        entry_lock = cache.entries()[0].path.with_suffix(".lock")
        entry_lock.write_bytes(b"")
        os.utime(entry_lock, (ancient, ancient))
        # An old orphan lock and an old writer temp file are stale debris.
        orphan_lock = kind_dir / "gone.lock"
        orphan_lock.write_bytes(b"")
        os.utime(orphan_lock, (ancient, ancient))
        stale_tmp = kind_dir / "writer123.tmp"
        stale_tmp.write_bytes(b"partial")
        os.utime(stale_tmp, (ancient, ancient))
        # Fresh files may belong to live workers: a writer mid-store or a
        # single-flight build holding its lock. They must survive.
        live_tmp = kind_dir / "writer456.tmp"
        live_tmp.write_bytes(b"in flight")
        live_lock = kind_dir / "building.lock"
        live_lock.write_bytes(b"")
        report = cache.prune()
        assert report.removed_debris == 2
        assert entry_lock.exists()
        assert not orphan_lock.exists()
        assert not stale_tmp.exists()
        assert live_tmp.exists()
        assert live_lock.exists()

    def test_prune_kinds_restricts_entries_and_debris(self, tmp_path):
        import os
        import time

        cache = self._populate(tmp_path)
        ancient = time.time() - 48 * 3600
        orphans = {}
        for kind in ("rare_nets", "trojans"):
            orphan = tmp_path / "cache" / kind / "gone.lock"
            orphan.write_bytes(b"")
            os.utime(orphan, (ancient, ancient))
            orphans[kind] = orphan
        report = cache.prune(max_age_seconds=0, kinds=["trojans"])
        assert report.removed_by_kind == {"trojans": 3}
        assert report.removed_debris == 1
        assert not orphans["trojans"].exists()
        assert orphans["rare_nets"].exists()
        assert cache.inventory()["rare_nets"][0] == 3

    def test_prune_then_refetch_recomputes(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        calls = []
        cache.fetch("rare_nets", lambda: calls.append(1) or [1], key="x")
        cache.prune(max_age_seconds=0)
        cache.fetch("rare_nets", lambda: calls.append(1) or [1], key="x")
        assert len(calls) == 2


class TestPrepareBenchmarkDiskCache:
    def test_rerun_hits_disk_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        common.clear_context_cache()
        first = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                         cache=cache)
        assert cache.stats.stores == 3  # rare nets + compatibility + trojans
        common.clear_context_cache()
        second = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                          cache=cache)
        assert cache.stats.hits == 3
        assert second.rare_nets == first.rare_nets
        assert np.array_equal(second.compatibility.matrix, first.compatibility.matrix)
        assert second.trojans == first.trojans
        common.clear_context_cache()


    def test_memoised_context_writes_through_to_new_cache(self, tmp_path):
        # A context memoised before any disk cache existed must still reach
        # the disk when a cache is configured later (worker warm-up path).
        common.clear_context_cache()
        common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15, cache=None)
        cache = ArtifactCache(tmp_path)
        context = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                           cache=cache)
        assert cache.stats.stores == 3
        common.clear_context_cache()
        rehydrated = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                              cache=cache)
        assert cache.stats.hits == 3
        assert np.array_equal(rehydrated.compatibility.matrix,
                              context.compatibility.matrix)
        assert rehydrated.trojans == context.trojans
        common.clear_context_cache()


class TestCompatibilityParity:
    def test_serial_and_sharded_matrices_identical(self, c2670, c2670_rare):
        serial = compute_compatibility(c2670, c2670_rare, n_jobs=1, cache=None)
        sharded = compute_compatibility(c2670, c2670_rare, n_jobs=2, cache=None)
        assert serial.rare_nets == sharded.rare_nets
        assert serial.unsatisfiable == sharded.unsatisfiable
        assert np.array_equal(serial.matrix, sharded.matrix)
        assert serial.matrix.dtype == sharded.matrix.dtype == np.bool_

    def test_compatibility_cache_roundtrip(self, tmp_path, c2670, c2670_rare):
        cache = ArtifactCache(tmp_path)
        first = compute_compatibility(c2670, c2670_rare, n_jobs=1, cache=cache)
        again = compute_compatibility(c2670, c2670_rare, n_jobs=1, cache=cache)
        assert cache.stats.hits == 1
        assert np.array_equal(first.matrix, again.matrix)
        assert again.rare_nets == first.rare_nets
        # The rebuilt analysis still has a working solver stack.
        assert again.set_is_satisfiable([0])

    def test_n_workers_alias(self, small_multiplier, multiplier_rare_nets):
        serial = compute_compatibility(
            small_multiplier, multiplier_rare_nets, n_workers=1, cache=None
        )
        assert serial.num_rare_nets > 0


# Module level so the fork-based process stress tests can reference it by name.
def _flush_contender(cache_root: str, rounds: int) -> dict:
    """One contender: miss once, flush, snapshot — ``rounds`` times over.

    Every loop bumps exactly one ``misses`` count (distinct keys, so each
    load is a true miss) and immediately folds it into the shared
    ``stats.json``.  The interleaved :meth:`stats_snapshot` calls exercise
    the read path against concurrent flushers from the sibling process.
    """
    import os

    cache = ArtifactCache(cache_root)
    for index in range(rounds):
        cache.load("race", pid=os.getpid(), index=index)  # guaranteed miss
        cache.flush_stats()
        snapshot = cache.stats_snapshot()
        # A snapshot taken mid-race may include the peer's in-flight work,
        # but it can never go backwards past our own flushed counts.
        assert snapshot["lifetime"]["misses"] >= index + 1
    return cache.stats_snapshot()


class TestConcurrentStatsFlush:
    """Two processes flushing the same ``stats.json`` simultaneously.

    The regression this guards: ``flush_stats`` used to reset the session
    counters *outside* the advisory file lock, so a concurrent flusher (or a
    ``stats_snapshot`` reader) could observe a half-flushed state and either
    double-count a session or drop increments entirely.  With the detach
    happening inside the lock, every single increment must survive.
    """

    ROUNDS = 25

    def test_two_processes_flushing_simultaneously_lose_nothing(self, tmp_path):
        import multiprocessing

        cache_root = str(tmp_path / "cache")
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=2) as pool:
            pool.starmap(_flush_contender, [(cache_root, self.ROUNDS)] * 2)
        lifetime = ArtifactCache(cache_root).stats_snapshot()["lifetime"]
        assert lifetime["misses"] == 2 * self.ROUNDS  # not one increment lost
        assert lifetime["flushes"] == 2 * self.ROUNDS
        assert lifetime["hits"] == 0

    def test_thread_snapshot_never_double_counts_a_flushed_session(self, tmp_path):
        """One thread flushes in a loop while another keeps incrementing."""
        import threading

        cache = ArtifactCache(tmp_path / "cache")
        cache.store("race", "artifact", k=1)
        stop = threading.Event()
        violations: list[dict] = []

        def flusher():
            while not stop.is_set():
                cache.flush_stats()

        def watcher():
            while not stop.is_set():
                snapshot = cache.stats_snapshot()
                total = snapshot["lifetime"]["hits"]
                if total > TOTAL_HITS:  # double-counted a flushed session
                    violations.append(snapshot)

        TOTAL_HITS = 200
        threads = [threading.Thread(target=flusher), threading.Thread(target=watcher)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(TOTAL_HITS):
                assert cache.load("race", k=1) == "artifact"
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert violations == []
        cache.flush_stats()
        lifetime = cache.stats_snapshot()["lifetime"]
        assert lifetime["hits"] == TOTAL_HITS  # conserved through all flushes
        assert lifetime["stores"] == 1

    def test_snapshot_of_a_nonexistent_root_degrades_gracefully(self, tmp_path):
        cache = ArtifactCache(tmp_path / "never-created")
        snapshot = cache.stats_snapshot()
        assert snapshot["session"] == {"hits": 0, "misses": 0, "stores": 0,
                                       "corrupt": 0}
        assert all(value == 0 for value in snapshot["lifetime"].values())


def _stress_fetch(cache_root: str, count_file: str, barrier=None) -> int:
    """One contender: fetch the shared key, building only on a true miss.

    The builder appends one line to ``count_file`` (O_APPEND writes of this
    size are atomic on POSIX), so the line count afterwards is the number of
    builds that actually ran.
    """
    import os
    import time

    cache = ArtifactCache(cache_root)

    def builder():
        with open(count_file, "a") as handle:
            handle.write(f"{os.getpid()}\n")
        time.sleep(0.05)  # widen the window a racing peer could slip through
        return 12345

    if barrier is not None:
        barrier.wait()
    return cache.fetch("stress", builder, key="shared")


class TestSingleFlightStress:
    """The ``fetch`` single-flight contract under real contention.

    Many contenders miss on the same key at the same instant; the advisory
    build lock must let exactly one builder run while everyone else loads
    the stored result.
    """

    def test_many_threads_one_build(self, tmp_path):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        count_file = tmp_path / "builds.txt"
        count_file.touch()
        n = 16
        barrier = threading.Barrier(n)
        with ThreadPoolExecutor(max_workers=n) as pool:
            results = list(
                pool.map(
                    lambda _: _stress_fetch(
                        str(tmp_path / "cache"), str(count_file), barrier
                    ),
                    range(n),
                )
            )
        assert results == [12345] * n
        assert len(count_file.read_text().splitlines()) == 1

    def test_many_processes_one_build(self, tmp_path):
        import multiprocessing

        count_file = tmp_path / "builds.txt"
        count_file.touch()
        n = 8
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=n) as pool:
            results = pool.starmap(
                _stress_fetch,
                [(str(tmp_path / "cache"), str(count_file))] * n,
            )
        assert results == [12345] * n
        assert len(count_file.read_text().splitlines()) == 1

    def test_distinct_keys_build_independently(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        cache_root = str(tmp_path / "cache")

        def fetch_key(index: int) -> int:
            cache = ArtifactCache(cache_root)
            return cache.fetch("stress", lambda: index, key=f"k{index}")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(fetch_key, range(8)))
        assert results == list(range(8))
        assert ArtifactCache(cache_root).inventory()["stress"][0] == 8
