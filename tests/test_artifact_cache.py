"""Tests for the on-disk artifact cache and the sharded compatibility path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import generators
from repro.circuits.library import load_benchmark
from repro.core.compatibility import compute_compatibility
from repro.experiments import common
from repro.runner.cache import (
    ArtifactCache,
    config_fingerprint,
    netlist_fingerprint,
    set_default_cache,
)
from repro.simulation.rare_nets import extract_rare_nets


@pytest.fixture(autouse=True)
def _reset_default_cache():
    yield
    set_default_cache(None)


@pytest.fixture(scope="module")
def c2670():
    """The c2670 analogue — smallest Table 2 library circuit."""
    return load_benchmark("c2670_like")


@pytest.fixture(scope="module")
def c2670_rare(c2670):
    return extract_rare_nets(c2670, threshold=0.1, num_patterns=1024, seed=0)


class TestFingerprints:
    def test_netlist_fingerprint_stable_across_copies(self, c2670):
        assert netlist_fingerprint(c2670) == netlist_fingerprint(c2670.copy())

    def test_netlist_fingerprint_distinguishes_structure(self, c2670):
        other = generators.c17()
        assert netlist_fingerprint(c2670) != netlist_fingerprint(other)

    def test_config_fingerprint_order_independent(self):
        assert config_fingerprint(a=1, b=2.5) == config_fingerprint(b=2.5, a=1)

    def test_config_fingerprint_sensitive_to_values(self):
        assert config_fingerprint(threshold=0.1) != config_fingerprint(threshold=0.2)

    def test_config_fingerprint_handles_nested_structures(self):
        digest = config_fingerprint(rare=[("n1", 0), ("n2", 1)], nested={"x": [1, 2]})
        assert len(digest) == 64


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load("rare_nets", key=1) is None
        cache.store("rare_nets", ["payload"], key=1)
        assert cache.load("rare_nets", key=1) == ["payload"]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_on_config_change(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("rare_nets", "a", netlist="fp", threshold=0.1)
        assert cache.load("rare_nets", netlist="fp", threshold=0.1) == "a"
        assert cache.load("rare_nets", netlist="fp", threshold=0.12) is None
        assert cache.load("rare_nets", netlist="other", threshold=0.1) is None

    def test_corrupt_entry_falls_back_to_recompute(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.store("trojans", [1, 2, 3], key="x")
        path.write_bytes(b"\x80garbage not a pickle")
        assert cache.load("trojans", key="x") is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # the broken entry was dropped
        # fetch() rebuilds and re-stores.
        assert cache.fetch("trojans", lambda: [4, 5], key="x") == [4, 5]
        assert cache.load("trojans", key="x") == [4, 5]

    def test_fetch_builds_once(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return {"x": 1}

        assert cache.fetch("kind", build, k=1) == {"x": 1}
        assert cache.fetch("kind", build, k=1) == {"x": 1}
        assert len(calls) == 1


class TestPrepareBenchmarkDiskCache:
    def test_rerun_hits_disk_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        common.clear_context_cache()
        first = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                         cache=cache)
        assert cache.stats.stores == 3  # rare nets + compatibility + trojans
        common.clear_context_cache()
        second = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                          cache=cache)
        assert cache.stats.hits == 3
        assert second.rare_nets == first.rare_nets
        assert np.array_equal(second.compatibility.matrix, first.compatibility.matrix)
        assert second.trojans == first.trojans
        common.clear_context_cache()


    def test_memoised_context_writes_through_to_new_cache(self, tmp_path):
        # A context memoised before any disk cache existed must still reach
        # the disk when a cache is configured later (worker warm-up path).
        common.clear_context_cache()
        common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15, cache=None)
        cache = ArtifactCache(tmp_path)
        context = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                           cache=cache)
        assert cache.stats.stores == 3
        common.clear_context_cache()
        rehydrated = common.prepare_benchmark("c6288_like", common.TINY, threshold=0.15,
                                              cache=cache)
        assert cache.stats.hits == 3
        assert np.array_equal(rehydrated.compatibility.matrix,
                              context.compatibility.matrix)
        assert rehydrated.trojans == context.trojans
        common.clear_context_cache()


class TestCompatibilityParity:
    def test_serial_and_sharded_matrices_identical(self, c2670, c2670_rare):
        serial = compute_compatibility(c2670, c2670_rare, n_jobs=1, cache=None)
        sharded = compute_compatibility(c2670, c2670_rare, n_jobs=2, cache=None)
        assert serial.rare_nets == sharded.rare_nets
        assert serial.unsatisfiable == sharded.unsatisfiable
        assert np.array_equal(serial.matrix, sharded.matrix)
        assert serial.matrix.dtype == sharded.matrix.dtype == np.bool_

    def test_compatibility_cache_roundtrip(self, tmp_path, c2670, c2670_rare):
        cache = ArtifactCache(tmp_path)
        first = compute_compatibility(c2670, c2670_rare, n_jobs=1, cache=cache)
        again = compute_compatibility(c2670, c2670_rare, n_jobs=1, cache=cache)
        assert cache.stats.hits == 1
        assert np.array_equal(first.matrix, again.matrix)
        assert again.rare_nets == first.rare_nets
        # The rebuilt analysis still has a working solver stack.
        assert again.set_is_satisfiable([0])

    def test_n_workers_alias(self, small_multiplier, multiplier_rare_nets):
        serial = compute_compatibility(
            small_multiplier, multiplier_rare_nets, n_workers=1, cache=None
        )
        assert serial.num_rare_nets > 0
