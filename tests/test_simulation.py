"""Tests for the bit-parallel simulator, probabilities, rare nets, and SCOAP."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import generators
from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.netlist import Netlist
from repro.simulation.logic_sim import (
    BitParallelSimulator,
    pack_patterns,
    simulate_pattern,
    unpack_values,
)
from repro.simulation.probability import cop_probabilities, estimate_signal_probabilities
from repro.simulation.rare_nets import RareNet, extract_rare_nets, rare_net_names, rare_value_map
from repro.simulation.testability import scoap_testability


def reference_simulate(netlist, assignment):
    """Scalar reference simulator used to cross-check the bit-parallel one."""
    values = dict(assignment)
    for gate in netlist.topological_gates():
        values[gate.output] = evaluate_gate(gate.gate_type, [values[n] for n in gate.inputs])
    return values


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        patterns = rng.integers(0, 2, size=(130, 7), dtype=np.uint8)
        packed, count = pack_patterns(patterns)
        assert count == 130
        assert packed.shape == (7, 3)
        for column in range(7):
            assert np.array_equal(unpack_values(packed[column], count), patterns[:, column])

    def test_pack_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            pack_patterns(np.zeros(5, dtype=np.uint8))


class TestBitParallelSimulator:
    def test_rejects_sequential_netlist(self):
        sequential = generators.sequential_controller("s", state_bits=3, data_width=4)
        with pytest.raises(ValueError, match="full-scan"):
            BitParallelSimulator(sequential)

    def test_pattern_width_checked(self, c17):
        simulator = BitParallelSimulator(c17)
        with pytest.raises(ValueError, match="width"):
            simulator.run_patterns(np.zeros((1, 3), dtype=np.uint8))

    def test_c17_exhaustive_against_reference(self, c17):
        simulator = BitParallelSimulator(c17)
        patterns = np.array(list(itertools.product([0, 1], repeat=5)), dtype=np.uint8)
        values = simulator.run_patterns(patterns)
        for index, pattern in enumerate(patterns):
            reference = reference_simulate(c17, dict(zip(simulator.sources, pattern)))
            for net in ("22", "23", "10", "16"):
                assert values[net][index] == reference[net]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=120))
    def test_random_circuits_match_reference(self, seed, num_patterns):
        netlist = generators.random_logic_circuit(
            "h", num_inputs=6, num_gates=30, num_outputs=4, seed=seed % 50
        )
        simulator = BitParallelSimulator(netlist)
        rng = np.random.default_rng(seed)
        patterns = rng.integers(0, 2, size=(num_patterns, len(simulator.sources)), dtype=np.uint8)
        values = simulator.run_patterns(patterns)
        check_index = int(rng.integers(num_patterns))
        reference = reference_simulate(
            netlist, dict(zip(simulator.sources, patterns[check_index]))
        )
        for net in netlist.outputs:
            assert values[net][check_index] == reference[net]

    def test_count_ones_matches_run_random(self, small_multiplier):
        simulator = BitParallelSimulator(small_multiplier)
        counts = simulator.count_ones(512, seed=7)
        assert set(counts) >= set(small_multiplier.outputs)
        for net, count in counts.items():
            assert 0 <= count <= 512

    def test_run_random_returns_patterns_and_values(self, c17):
        simulator = BitParallelSimulator(c17)
        patterns, values = simulator.run_random(37, seed=1)
        assert patterns.shape == (37, 5)
        assert values["22"].shape == (37,)

    def test_simulate_pattern_requires_all_sources(self, c17):
        with pytest.raises(KeyError):
            simulate_pattern(c17, {"1": 0})

    def test_simulate_pattern_matches_reference(self, c17):
        assignment = {"1": 1, "2": 0, "3": 1, "6": 0, "7": 1}
        result = simulate_pattern(c17, assignment)
        reference = reference_simulate(c17, assignment)
        assert result == reference


class TestProbabilities:
    def test_cop_exact_on_tree(self):
        netlist = Netlist("tree")
        for name in ("a", "b", "c", "d"):
            netlist.add_input(name)
        netlist.add_gate("ab", GateType.AND, ("a", "b"))
        netlist.add_gate("cd", GateType.OR, ("c", "d"))
        netlist.add_gate("y", GateType.XOR, ("ab", "cd"))
        netlist.add_output("y")
        probabilities = cop_probabilities(netlist)
        assert probabilities["ab"] == pytest.approx(0.25)
        assert probabilities["cd"] == pytest.approx(0.75)
        assert probabilities["y"] == pytest.approx(0.25 * 0.25 + 0.75 * 0.75)

    def test_cop_input_probability_validated(self, c17):
        with pytest.raises(ValueError):
            cop_probabilities(c17, input_probability=1.5)

    def test_monte_carlo_close_to_cop_on_tree(self):
        netlist = Netlist("tree2")
        for name in ("a", "b", "c"):
            netlist.add_input(name)
        netlist.add_gate("ab", GateType.AND, ("a", "b"))
        netlist.add_gate("y", GateType.NOR, ("ab", "c"))
        netlist.add_output("y")
        estimated = estimate_signal_probabilities(netlist, num_patterns=8192, seed=0)
        exact = cop_probabilities(netlist)
        assert estimated["y"] == pytest.approx(exact["y"], abs=0.03)

    def test_estimate_rejects_nonpositive_samples(self, c17):
        with pytest.raises(ValueError):
            estimate_signal_probabilities(c17, num_patterns=0)

    def test_probabilities_in_unit_interval(self, small_multiplier):
        probabilities = estimate_signal_probabilities(small_multiplier, 1024, seed=3)
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())


class TestRareNets:
    def test_rare_net_validation(self):
        with pytest.raises(ValueError):
            RareNet(net="x", rare_value=2, probability=0.05)
        with pytest.raises(ValueError):
            RareNet(net="x", rare_value=1, probability=1.5)

    def test_threshold_validated(self, c17):
        with pytest.raises(ValueError):
            extract_rare_nets(c17, threshold=0.0)

    def test_rare_nets_sorted_by_probability(self, small_multiplier, multiplier_rare_nets):
        probabilities = [item.probability for item in multiplier_rare_nets]
        assert probabilities == sorted(probabilities)

    def test_rare_nets_exclude_inputs_by_default(self, small_multiplier, multiplier_rare_nets):
        sources = set(small_multiplier.combinational_sources())
        assert not sources & set(rare_net_names(multiplier_rare_nets))

    def test_rare_value_map_consistent(self, multiplier_rare_nets):
        mapping = rare_value_map(multiplier_rare_nets)
        for item in multiplier_rare_nets:
            assert mapping[item.net] == item.rare_value

    def test_higher_threshold_never_reduces_rare_nets(self, small_multiplier):
        low = extract_rare_nets(small_multiplier, threshold=0.08, num_patterns=2048, seed=1)
        high = extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=2048, seed=1)
        assert set(rare_net_names(low)) <= set(rare_net_names(high))

    def test_deep_and_chain_is_rare(self):
        netlist = Netlist("chain")
        inputs = [netlist.add_input(f"i{k}") for k in range(6)]
        netlist.add_gate("all", GateType.AND, tuple(inputs))
        netlist.add_output("all")
        rare = extract_rare_nets(netlist, threshold=0.1, num_patterns=4096, seed=0)
        assert rare_net_names(rare) == ["all"]
        assert rare[0].rare_value == 1


class TestScoap:
    def test_inputs_have_unit_controllability(self, c17):
        measures = scoap_testability(c17)
        for net in c17.inputs:
            assert measures[net].cc0 == 1.0
            assert measures[net].cc1 == 1.0

    def test_outputs_have_zero_observability(self, c17):
        measures = scoap_testability(c17)
        for net in c17.outputs:
            assert measures[net].co == 0.0

    def test_and_gate_controllability(self):
        netlist = Netlist("and3")
        for name in ("a", "b", "c"):
            netlist.add_input(name)
        netlist.add_gate("y", GateType.AND, ("a", "b", "c"))
        netlist.add_output("y")
        measures = scoap_testability(netlist)
        assert measures["y"].cc1 == 4.0  # 1+1+1 inputs + 1
        assert measures["y"].cc0 == 2.0  # cheapest single zero + 1

    def test_deeper_logic_is_harder(self, small_multiplier):
        measures = scoap_testability(small_multiplier)
        levels = small_multiplier.levels()
        deep = max(measures, key=lambda n: levels.get(n, 0))
        shallow = small_multiplier.inputs[0]
        assert measures[deep].difficulty > measures[shallow].difficulty

    def test_difficulty_is_total(self, c17):
        measures = scoap_testability(c17)
        sample = measures["22"]
        assert sample.difficulty == pytest.approx(sample.cc0 + sample.cc1 + sample.co)
