"""The sequential workload family: engine, rare nets, Trojans, harness.

Differential coverage for everything the multi-cycle path adds:

- :class:`CompiledSequentialNetlist` must match the naive cycle loop
  (:func:`simulate_sequences` on the per-gate reference interpreter)
  bit-for-bit, for any sequence set and any initial state;
- batched multi-cycle trigger coverage must return exactly the verdicts of
  physically inserting each Trojan's shift-register/counter hardware and
  clocking the infected netlist against the golden response;
- the ``sequential`` harness must be deterministic across worker counts and
  fully served by the artifact cache on a second run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.gates import GateType
from repro.circuits.library import load_benchmark
from repro.circuits.netlist import Netlist
from repro.circuits.scan import sequential_interface
from repro.core.patterns import SequenceSet
from repro.simulation.compiled import (
    CompiledSequentialNetlist,
    compile_sequential_netlist,
    unpack_matrix,
)
from repro.simulation.logic_sim import simulate_sequences
from repro.simulation.probability import estimate_sequential_signal_probabilities
from repro.simulation.rare_nets import extract_rare_nets
from repro.trojan.evaluation import (
    sequence_ground_truth_coverage,
    sequence_trigger_coverage,
)
from repro.trojan.insertion import insert_sequential_trojan, sample_sequential_trojans
from repro.trojan.model import SequentialTrigger, SequentialTrojan, TriggerCondition


@pytest.fixture(scope="module")
def controller():
    """The smallest sequential library benchmark, flip-flops intact."""
    return load_benchmark("s13207_like", combinational_view=False)


def toy_netlist() -> Netlist:
    """input a -> DFF q; obs = (a AND q) OR b: needs two cycles of a=1."""
    netlist = Netlist("toy")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_flip_flop("q", "a")
    netlist.add_gate("mix", GateType.AND, ("a", "q"))
    netlist.add_gate("obs", GateType.OR, ("mix", "b"))
    netlist.add_output("obs")
    return netlist


def toy_sequence(bits: list[int]) -> SequenceSet:
    """One sequence driving input ``a`` with ``bits`` and ``b`` with zeros."""
    array = np.zeros((1, len(bits), 2), dtype=np.uint8)
    array[0, :, 0] = bits
    return SequenceSet(inputs=("a", "b"), sequences=array)


def a_trigger(mode: str, count: int) -> SequentialTrojan:
    """A Trojan whose per-cycle condition is simply ``a == 1``."""
    return SequentialTrojan(
        trigger=SequentialTrigger(
            condition=TriggerCondition((("a", 1),)), mode=mode, count=count
        ),
        payload_output="obs",
        name=f"{mode}{count}",
    )


class TestSequentialInterface:
    def test_interface_of_library_benchmark(self, controller):
        interface = sequential_interface(controller)
        assert interface.inputs == controller.inputs
        assert interface.num_state_bits == len(controller.flip_flops)
        assert interface.state == tuple(ff.q for ff in controller.flip_flops)
        assert interface.next_state == tuple(ff.d for ff in controller.flip_flops)
        reset = interface.reset_assignment()
        assert set(reset) == set(interface.state)
        assert set(reset.values()) == {0}

    def test_rejects_combinational(self):
        from repro.circuits import generators

        with pytest.raises(ValueError, match="no flip-flops"):
            sequential_interface(generators.c17())


class TestCompiledSequentialNetlist:
    def test_rejects_combinational(self):
        from repro.circuits import generators

        with pytest.raises(ValueError, match="requires a sequential netlist"):
            CompiledSequentialNetlist(generators.c17())

    def test_toggle_flip_flop_known_answer(self):
        # q' = NOT q from reset: q = 0, 1, 0, 1, ... regardless of inputs.
        netlist = Netlist("toggle")
        netlist.add_input("i")
        netlist.add_gate("n", GateType.NOT, ("q",))
        netlist.add_flip_flop("q", "n")
        netlist.add_gate("o", GateType.BUF, ("q",))
        netlist.add_output("o")
        compiled = compile_sequential_netlist(netlist)
        sequences = np.zeros((3, 6, 1), dtype=np.uint8)
        tensor, num_sequences = compiled.run_sequences(sequences)
        row = compiled.index_of("q")
        bits = np.stack(
            [unpack_matrix(tensor[t, row][None, :], num_sequences)[0] for t in range(6)]
        )
        expected = np.array([[0, 1, 0, 1, 0, 1]] * 3, dtype=np.uint8).T
        assert np.array_equal(bits, expected)

    def test_memoised_on_the_netlist(self, controller):
        assert compile_sequential_netlist(controller) is compile_sequential_netlist(
            controller
        )

    @pytest.mark.parametrize("with_initial_state", [False, True])
    def test_differential_vs_reference_cycle_loop(self, controller, with_initial_state):
        """Compiled multi-cycle engine == naive loop on the per-gate interpreter."""
        compiled = compile_sequential_netlist(controller)
        rng = np.random.default_rng(99)
        cycles = 4
        sequences = rng.integers(0, 2, size=(70, cycles, compiled.num_inputs), dtype=np.uint8)
        initial = None
        if with_initial_state:
            initial = rng.integers(
                0, 2, size=(70, compiled.num_state_bits), dtype=np.uint8
            )
        tensor, num_sequences = compiled.run_sequences(sequences, initial_state=initial)
        reference = simulate_sequences(
            controller, sequences, initial_state=initial, engine="reference"
        )
        assert set(reference) == set(compiled.net_names)
        for index, net in enumerate(compiled.net_names):
            bits = np.stack(
                [
                    unpack_matrix(tensor[t, index][None, :], num_sequences)[0]
                    for t in range(cycles)
                ]
            )
            assert np.array_equal(bits, reference[net]), f"net {net} diverges"

    def test_count_ones_per_cycle_matches_explicit_simulation(self):
        netlist = toy_netlist()
        compiled = compile_sequential_netlist(netlist)
        counts = compiled.count_ones_per_cycle(130, 3, seed=5)
        assert counts.shape == (3, compiled.num_nets)
        assert counts.min() >= 0 and counts.max() <= 130
        # Deterministic under the seed.
        assert np.array_equal(counts, compiled.count_ones_per_cycle(130, 3, seed=5))

    def test_shape_validation(self, controller):
        compiled = compile_sequential_netlist(controller)
        with pytest.raises(ValueError, match="sequences must have shape"):
            compiled.run_sequences(np.zeros((4, compiled.num_inputs), dtype=np.uint8))
        with pytest.raises(ValueError, match="at least one clock cycle"):
            compiled.run_sequences(
                np.zeros((2, 0, compiled.num_inputs), dtype=np.uint8)
            )
        with pytest.raises(ValueError, match="initial state"):
            compiled.run_sequences(
                np.zeros((2, 3, compiled.num_inputs), dtype=np.uint8),
                initial_state=np.zeros((1, compiled.num_state_bits), dtype=np.uint8),
            )


class TestStateDependentRareNets:
    def test_requires_sequential_netlist(self):
        from repro.circuits import generators

        with pytest.raises(ValueError, match="requires a sequential netlist"):
            extract_rare_nets(generators.c17(), cycles=4, num_patterns=64)

    def test_probabilities_aggregate_cycles(self):
        # Toggle FF: q is 0 on even cycles, 1 on odd -> P(q=1) == 0.5 over an
        # even horizon, while "n" (NOT q) mirrors it exactly.
        netlist = Netlist("toggle")
        netlist.add_input("i")
        netlist.add_gate("n", GateType.NOT, ("q",))
        netlist.add_flip_flop("q", "n")
        netlist.add_gate("o", GateType.BUF, ("q",))
        netlist.add_output("o")
        probabilities = estimate_sequential_signal_probabilities(
            netlist, cycles=4, num_sequences=64, seed=0
        )
        assert probabilities["q"] == 0.5
        assert probabilities["n"] == 0.5

    def test_state_bits_can_be_rare(self, controller):
        rare = extract_rare_nets(
            controller, threshold=0.1, num_patterns=256, seed=0, cycles=6
        )
        assert rare, "controller should have state-dependent rare nets"
        names = {item.net for item in rare}
        assert names.isdisjoint(set(controller.inputs))
        state_nets = {ff.q for ff in controller.flip_flops}
        assert names & state_nets, "state bits should be eligible rare nets"
        # Deterministic under the seed.
        again = extract_rare_nets(
            controller, threshold=0.1, num_patterns=256, seed=0, cycles=6
        )
        assert rare == again


class TestSequentialTrojanModel:
    def test_mode_and_count_validation(self):
        condition = TriggerCondition((("a", 1),))
        with pytest.raises(ValueError, match="mode must be one of"):
            SequentialTrigger(condition=condition, mode="sometimes", count=2)
        with pytest.raises(ValueError, match="count must be >= 1"):
            SequentialTrigger(condition=condition, mode="consecutive", count=0)

    def test_insertion_adds_temporal_state(self):
        netlist = toy_netlist()
        base_ffs = len(netlist.flip_flops)
        for mode in ("consecutive", "cumulative"):
            for count in (1, 2, 4):
                infected = insert_sequential_trojan(netlist, a_trigger(mode, count))
                assert len(infected.flip_flops) == base_ffs + count - 1, (mode, count)
                assert infected.outputs == netlist.outputs

    def test_insertion_rejects_non_gate_payload(self):
        netlist = toy_netlist()
        trojan = SequentialTrojan(
            trigger=SequentialTrigger(TriggerCondition((("a", 1),)), "consecutive", 2),
            payload_output="a",
        )
        with pytest.raises(ValueError, match="gate-driven"):
            insert_sequential_trojan(netlist, trojan)


class TestTemporalSemantics:
    """Hand-crafted sequences pin down consecutive vs cumulative meaning."""

    #: (input bits for a, mode, count, expected detection)
    CASES = [
        ([1, 0, 1, 0, 1], "consecutive", 2, False),  # never two in a row
        ([1, 0, 1, 0, 1], "cumulative", 3, True),    # three activations total
        ([1, 0, 1, 0, 1], "cumulative", 4, False),
        ([1, 1, 0, 0, 0], "consecutive", 2, True),   # streak of two
        ([1, 1, 0, 0, 0], "consecutive", 3, False),
        ([1, 1, 1, 0, 0], "consecutive", 3, True),
        ([0, 0, 0, 0, 1], "cumulative", 1, True),    # single-cycle degenerate
    ]

    @pytest.mark.parametrize("bits,mode,count,expected", CASES)
    def test_batched_and_hardware_agree_on_crafted_sequences(
        self, bits, mode, count, expected
    ):
        netlist = toy_netlist()
        trojan = a_trigger(mode, count)
        workload = toy_sequence(bits)
        batched = sequence_trigger_coverage(netlist, [trojan], workload)
        hardware = sequence_ground_truth_coverage(netlist, [trojan], workload)
        assert batched.detected == [expected]
        assert hardware.detected == [expected]


class TestSequenceCoverageParity:
    @pytest.mark.parametrize("mode", ["consecutive", "cumulative"])
    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_batched_matches_ground_truth_on_library_benchmark(
        self, controller, mode, count
    ):
        # Threshold 0.45 keeps the trigger conditions common enough that a
        # random workload actually fires them, exercising the accumulators.
        rare = extract_rare_nets(
            controller, threshold=0.45, num_patterns=256, seed=3, cycles=5
        )
        trojans = sample_sequential_trojans(
            controller, rare, num_trojans=8, trigger_width=2,
            mode=mode, count=count, seed=11,
        )
        assert trojans, "sampling should find valid triggers at threshold 0.45"
        workload = SequenceSet.random(controller, num_sequences=60, cycles=5, seed=17)
        batched = sequence_trigger_coverage(controller, trojans, workload)
        ground_truth = sequence_ground_truth_coverage(controller, trojans, workload)
        assert batched.detected == ground_truth.detected
        assert batched.num_detected == ground_truth.num_detected
        if count == 1:
            assert batched.num_detected > 0, "k=1 triggers should fire at θ=0.45"

    def test_sampling_is_deterministic_and_validated(self, controller):
        rare = extract_rare_nets(
            controller, threshold=0.2, num_patterns=256, seed=0, cycles=4
        )
        first = sample_sequential_trojans(
            controller, rare, num_trojans=6, trigger_width=3,
            mode="cumulative", count=2, seed=5,
        )
        second = sample_sequential_trojans(
            controller, rare, num_trojans=6, trigger_width=3,
            mode="cumulative", count=2, seed=5,
        )
        assert first == second
        for trojan in first:
            assert trojan.trigger.mode == "cumulative"
            assert trojan.trigger.count == 2
            assert trojan.width == 3

    def test_sampling_rejects_combinational(self):
        from repro.circuits import generators

        with pytest.raises(ValueError, match="requires flip-flops"):
            sample_sequential_trojans(generators.c17(), [], num_trojans=1)

    def test_input_order_mismatch_rejected(self, controller):
        workload = SequenceSet(
            inputs=tuple(reversed(load_benchmark("s13207_like",
                                                 combinational_view=False).inputs)),
            sequences=np.zeros((1, 2, len(controller.inputs)), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="input ordering"):
            sequence_trigger_coverage(controller, [], workload)

    def test_empty_workload_and_population(self, controller):
        empty = SequenceSet(
            inputs=controller.inputs,
            sequences=np.zeros((0, 3, len(controller.inputs)), dtype=np.uint8),
        )
        result = sequence_trigger_coverage(controller, [], empty)
        assert result.num_trojans == 0
        assert result.num_detected == 0
        assert result.coverage == 0.0
