"""Tests for the CDCL performance overhaul: config/stats API, activity heap,
Luby restarts, and clause-database reduction.

The differential fuzz tests are the safety net of the whole overhaul: every
configuration variant (Luby vs geometric restarts, aggressive clause
forgetting, model verification on) must agree with a brute-force truth-table
oracle on both the SAT/UNSAT verdict and model validity.
"""

import itertools

import numpy as np
import pytest

from repro.sat.cnf import CNF
from repro.sat.heap import ActivityHeap
from repro.sat.solver import (
    RESTART_POLICIES,
    CdclSolver,
    SolverConfig,
    SolverResult,
    SolverStats,
    luby,
    solve_cnf,
)


def brute_force_satisfiable(cnf: CNF) -> bool:
    """Exhaustive SAT check for tiny formulas."""
    for assignment in itertools.product([False, True], repeat=cnf.num_vars):
        if all(
            any(assignment[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in cnf.clauses
        ):
            return True
    return False


def random_cnf(rng: np.random.Generator, num_vars: int, num_clauses: int) -> CNF:
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        size = int(rng.integers(1, 4))
        variables = rng.choice(num_vars, size=min(size, num_vars), replace=False) + 1
        clause = [int(v) if rng.random() < 0.5 else -int(v) for v in variables]
        cnf.add_clause(clause)
    return cnf


#: Configuration variants the fuzz tests sweep: every restart policy, plus an
#: aggressive-forgetting config that reduces the clause database constantly
#: (reduce_base=1 triggers a reduction at every restart) and a paranoid config
#: that re-verifies every model against the problem clauses.
FUZZ_CONFIGS = [
    SolverConfig(),
    SolverConfig(restart_policy="geometric"),
    SolverConfig(reduce_base=1, reduce_growth=0, reduce_fraction=1.0, glue_lbd=0),
    SolverConfig(restart_base=1, reduce_base=1, reduce_growth=0, verify_models=True),
]


class TestLuby:
    def test_reluctant_doubling_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(len(expected))] == expected

    def test_schedule_reaches_large_units(self):
        values = {luby(i) for i in range(1023)}
        assert values == {1 << h for h in range(10)}


class TestSolverConfig:
    def test_defaults_valid(self):
        config = SolverConfig()
        assert config.restart_policy == "luby"
        assert config.restart_policy in RESTART_POLICIES

    @pytest.mark.parametrize(
        "overrides",
        [
            {"var_decay": 0.0},
            {"var_decay": 1.0},
            {"clause_decay": 1.5},
            {"restart_policy": "fixed"},
            {"restart_base": 0},
            {"restart_growth": 1.0},
            {"reduce_base": 0},
            {"reduce_growth": -1},
            {"reduce_fraction": 0.0},
            {"reduce_fraction": 1.5},
            {"glue_lbd": -1},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            SolverConfig(**overrides)

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SolverConfig key"):
            SolverConfig.from_mapping({"decay": 0.9})

    def test_from_mapping_roundtrip(self):
        config = SolverConfig.from_mapping({"restart_policy": "geometric"})
        assert config.restart_policy == "geometric"
        assert SolverConfig.from_mapping(config.as_dict()) == config

    def test_replace_revalidates(self):
        config = SolverConfig()
        assert config.replace(glue_lbd=3).glue_lbd == 3
        with pytest.raises(ValueError):
            config.replace(var_decay=2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SolverConfig().var_decay = 0.5

    def test_legacy_kwargs_deprecated(self):
        cnf = CNF(num_vars=1, clauses=[[1]])
        with pytest.warns(DeprecationWarning):
            solver = CdclSolver(cnf, decay=0.9, restart_base=50)
        assert solver.config.var_decay == 0.9
        assert solver.config.restart_policy == "geometric"
        assert solver.solve().satisfiable

    def test_legacy_kwargs_conflict_with_config(self):
        with pytest.raises(ValueError):
            CdclSolver(config=SolverConfig(), decay=0.9)


class TestSolverStats:
    def test_counters_accumulate_across_queries(self):
        cnf = CNF(num_vars=3, clauses=[[1, 2, 3], [-1, 2], [-2, 3]])
        solver = CdclSolver(cnf)
        solver.solve()
        first = solver.stats()
        solver.solve([-3])
        second = solver.stats()
        assert second.propagations >= first.propagations
        assert second.decisions >= first.decisions
        assert second.max_trail >= 1

    def test_stats_snapshot_is_independent(self):
        solver = CdclSolver(CNF(num_vars=1, clauses=[[1]]))
        snapshot = solver.stats()
        snapshot.conflicts = 999
        assert solver.stats().conflicts != 999

    def test_merge_sums_and_maxes(self):
        a = SolverStats(conflicts=1, decisions=2, propagations=3, max_trail=10)
        b = SolverStats(conflicts=4, restarts=1, learned_clauses=2, max_trail=7)
        merged = a.merge(b)
        assert merged.conflicts == 5
        assert merged.decisions == 2
        assert merged.restarts == 1
        assert merged.max_trail == 10

    def test_as_dict_is_json_ready(self):
        stats = SolverStats(conflicts=3).as_dict()
        assert stats["conflicts"] == 3
        assert set(stats) == {
            "conflicts", "decisions", "propagations", "restarts",
            "learned_clauses", "deleted_clauses", "max_trail",
        }

    def test_result_carries_stats(self):
        result = solve_cnf(CNF(num_vars=1, clauses=[[1]]))
        assert isinstance(result, SolverResult)
        assert result.stats is not None
        assert result.stats.propagations >= 1

    def test_restarts_counted_on_hard_instance(self):
        # Pigeonhole 5-into-4 forces enough conflicts to restart under
        # restart_base=1.
        cnf = CNF()
        var = [[cnf.new_var() for _ in range(4)] for _ in range(5)]
        for i in range(5):
            cnf.add_clause([var[i][j] for j in range(4)])
        for j in range(4):
            for i1 in range(5):
                for i2 in range(i1 + 1, 5):
                    cnf.add_clause([-var[i1][j], -var[i2][j]])
        solver = CdclSolver(cnf, config=SolverConfig(restart_base=1))
        assert not solver.solve().satisfiable
        stats = solver.stats()
        assert stats.conflicts > 0
        assert stats.restarts > 0
        assert stats.learned_clauses > 0


class TestActivityHeap:
    def test_pop_order_is_by_activity(self):
        heap = ActivityHeap(5)
        for variable, bump in [(3, 5.0), (1, 3.0), (4, 4.0)]:
            heap.bump(variable, bump)
        order = [heap.pop() for _ in range(3)]
        assert order == [3, 4, 1]

    def test_push_is_idempotent(self):
        heap = ActivityHeap(3)
        heap.push(2)
        assert len(heap) == 3
        heap.pop()
        heap.pop()
        heap.pop()
        assert len(heap) == 0
        heap.push(2)
        heap.push(2)
        assert len(heap) == 1

    def test_grow_preserves_invariants(self):
        heap = ActivityHeap(2)
        heap.bump(1, 7.0)
        heap.grow(6)
        heap.check_invariants()
        assert heap.pop() == 1

    def test_push_many_accepts_literals(self):
        heap = ActivityHeap(4)
        while heap.pop() is not None:
            pass
        heap.push_many([-3, 1, -1, 4])
        heap.check_invariants()
        assert len(heap) == 3
        assert 3 in heap and 1 in heap and 4 in heap and 2 not in heap

    def test_invariants_under_random_operations(self):
        rng = np.random.default_rng(7)
        heap = ActivityHeap(12)
        popped: list[int] = []
        for _ in range(600):
            action = rng.integers(0, 4)
            if action == 0 and popped:
                heap.push(popped.pop())
            elif action == 1:
                variable = heap.pop()
                if variable is not None:
                    popped.append(variable)
            elif action == 2:
                heap.bump(int(rng.integers(1, heap.num_vars + 1)), float(rng.random()))
            else:
                heap.push_many([int(v) for v in rng.integers(1, heap.num_vars + 1, 3)])
                popped = [v for v in popped if v not in heap]
            heap.check_invariants()

    def test_rescale_preserves_order(self):
        heap = ActivityHeap(4)
        heap.bump(2, 8.0)
        heap.bump(3, 4.0)
        heap.rescale(1e-10)
        heap.check_invariants()
        assert heap.pop() == 2
        assert heap.activity(2) == pytest.approx(8e-10)


class TestClauseForgetting:
    def _hard_solver(self, config: SolverConfig, monkeypatch) -> CdclSolver:
        """UNSAT pigeonhole instance with reduction checked on every call."""
        cnf = CNF()
        var = [[cnf.new_var() for _ in range(5)] for _ in range(6)]
        for i in range(6):
            cnf.add_clause([var[i][j] for j in range(5)])
        for j in range(5):
            for i1 in range(6):
                for i2 in range(i1 + 1, 6):
                    cnf.add_clause([-var[i1][j], -var[i2][j]])
        solver = CdclSolver(cnf, config=config)
        original = CdclSolver._reduce_db
        reductions = []

        def checked_reduce(self):
            victims = original(self)
            reductions.append(victims)
            # The pinning contract: no reason clause of any assigned
            # variable may leave the database.
            alive = {id(clause) for clause in self._learned}
            for reason in self._reason:
                if reason is not None and reason.learned:
                    assert id(reason) in alive, "reduction deleted a reason clause"
            return victims

        monkeypatch.setattr(CdclSolver, "_reduce_db", checked_reduce)
        solver._observed_reductions = reductions
        return solver

    def test_reduction_never_deletes_reason_clauses(self, monkeypatch):
        config = SolverConfig(
            restart_base=1, reduce_base=1, reduce_growth=0,
            reduce_fraction=1.0, glue_lbd=0,
        )
        solver = self._hard_solver(config, monkeypatch)
        assert not solver.solve().satisfiable
        assert sum(solver._observed_reductions) > 0
        assert solver.stats().deleted_clauses == sum(solver._observed_reductions)

    def test_reduction_keeps_answers_correct_under_assumptions(self, monkeypatch):
        config = SolverConfig(restart_base=1, reduce_base=1, reduce_growth=0)
        rng = np.random.default_rng(11)
        for _ in range(20):
            cnf = random_cnf(rng, num_vars=8, num_clauses=30)
            solver = CdclSolver(cnf, config=config)
            assumption = int(rng.integers(1, 9))
            assumption = assumption if rng.random() < 0.5 else -assumption
            constrained = cnf.copy()
            constrained.add_clause([assumption])
            assert (
                solver.solve([assumption]).satisfiable
                == brute_force_satisfiable(constrained)
            )
            # The base formula must survive the assumption query unscathed.
            assert solver.solve().satisfiable == brute_force_satisfiable(cnf)

    def test_glue_and_binary_clauses_survive(self):
        config = SolverConfig(restart_base=1, reduce_base=1, reduce_growth=0)
        cnf = CNF()
        var = [[cnf.new_var() for _ in range(4)] for _ in range(5)]
        for i in range(5):
            cnf.add_clause([var[i][j] for j in range(4)])
        for j in range(4):
            for i1 in range(5):
                for i2 in range(i1 + 1, 5):
                    cnf.add_clause([-var[i1][j], -var[i2][j]])
        solver = CdclSolver(cnf, config=config)
        assert not solver.solve().satisfiable
        for clause in solver._learned:
            assert clause.learned
            # Whatever survived reduction is either pinned glue/binary or
            # above the forgetting threshold by construction of _reduce_db;
            # sanity-check the metadata is populated.
            assert clause.lbd >= 1


class TestDifferentialFuzz:
    @pytest.mark.parametrize("config", FUZZ_CONFIGS, ids=lambda c: (
        f"{c.restart_policy}-rb{c.reduce_base}"
        + ("-verify" if c.verify_models else "")
    ))
    def test_matches_truth_table_oracle(self, config):
        rng = np.random.default_rng(3)
        for _ in range(80):
            num_vars = int(rng.integers(2, 9))
            cnf = random_cnf(rng, num_vars, int(rng.integers(1, 28)))
            result = solve_cnf(cnf, config=config)
            assert result.satisfiable == brute_force_satisfiable(cnf)
            if result.satisfiable:
                for clause in cnf.clauses:
                    assert any(result.value(abs(lit)) == (lit > 0) for lit in clause)

    @pytest.mark.parametrize("config", FUZZ_CONFIGS[:2], ids=["luby", "geometric"])
    def test_incremental_queries_match_oracle(self, config):
        rng = np.random.default_rng(17)
        for _ in range(15):
            cnf = random_cnf(rng, num_vars=7, num_clauses=22)
            solver = CdclSolver(cnf, config=config)
            for _ in range(4):
                assumption = int(rng.integers(1, 8))
                assumption = assumption if rng.random() < 0.5 else -assumption
                constrained = cnf.copy()
                constrained.add_clause([assumption])
                assert (
                    solver.solve([assumption]).satisfiable
                    == brute_force_satisfiable(constrained)
                )

    def test_deterministic_models_for_fixed_input(self):
        rng = np.random.default_rng(23)
        cnf = random_cnf(rng, num_vars=8, num_clauses=20)
        first = solve_cnf(cnf)
        second = solve_cnf(cnf)
        assert first.satisfiable == second.satisfiable
        if first.satisfiable:
            assert first.model == second.model


class TestPublicSurface:
    def test_sat_package_exports(self):
        import repro.sat as sat

        for name in (
            "ActivityHeap", "CdclSolver", "SolverConfig", "SolverStats",
            "SolverResult", "Justifier", "SequentialJustifier",
            "TimeFrameExpansion", "luby", "solve_cnf", "RESTART_POLICIES",
        ):
            assert name in sat.__all__
            assert getattr(sat, name) is not None

    def test_justifier_accepts_config_and_reports_stats(self):
        from repro.circuits import generators
        from repro.sat.justify import Justifier

        netlist = generators.c17()
        config = SolverConfig(restart_policy="geometric")
        justifier = Justifier(netlist, config=config)
        assert justifier.config is config
        assert justifier.is_satisfiable({"22": 1})
        stats = justifier.stats()
        assert stats.propagations > 0

    def test_sequential_justifier_accepts_config_and_reports_stats(self):
        from repro.circuits import generators
        from repro.sat.temporal import SequentialJustifier
        from repro.trojan.model import SequentialTrigger, TriggerCondition

        netlist = generators.sequential_controller("sc", state_bits=3, data_width=4)
        config = SolverConfig(restart_policy="geometric")
        justifier = SequentialJustifier(netlist, cycles=3, config=config)
        assert justifier.config is config
        net = netlist.gates[0].output
        trigger = SequentialTrigger(
            condition=TriggerCondition(((net, 1),)), mode="consecutive", count=1
        )
        justifier.is_satisfiable(trigger)
        assert justifier.stats().propagations > 0

    def test_generate_sequences_emits_solver_stats(self):
        from repro.circuits import generators
        from repro.core.sequence_gen import generate_sequences
        from repro.simulation.rare_nets import extract_rare_nets

        netlist = generators.sequential_controller("sg", state_bits=3, data_width=4)
        rare = extract_rare_nets(
            netlist, threshold=0.2, num_patterns=256, seed=0, cycles=3
        )
        sequences = generate_sequences(
            netlist, rare, cycles=3, mode="consecutive", count=1,
            num_sequences=4, seed=1,
            solver_config=SolverConfig(restart_policy="geometric"),
        )
        stats = sequences.metadata["solver_stats"]
        assert stats["propagations"] > 0
        assert set(stats) == set(SolverStats().as_dict())
