"""Shared fixtures for the test suite.

The fixtures keep the expensive objects (benchmark circuits, compatibility
analyses) session-scoped so the several hundred tests stay fast.
"""

from __future__ import annotations

import pytest

from repro.circuits import generators
from repro.core.compatibility import compute_compatibility
from repro.core.config import DeterrentConfig
from repro.rl.ppo import PpoConfig
from repro.simulation.rare_nets import extract_rare_nets


@pytest.fixture(scope="session")
def c17():
    """The real ISCAS-85 c17 circuit."""
    return generators.c17()


@pytest.fixture(scope="session")
def small_multiplier():
    """A 4x4 array multiplier: small enough for exhaustive checks."""
    return generators.multiplier_circuit("mult4", width=4)


@pytest.fixture(scope="session")
def small_random_circuit():
    """A reproducible random circuit with 8 inputs (256 exhaustive patterns)."""
    return generators.random_logic_circuit(
        "rand8", num_inputs=8, num_gates=60, num_outputs=6, seed=1234
    )


@pytest.fixture(scope="session")
def multiplier_rare_nets(small_multiplier):
    """Rare nets of the small multiplier at threshold 0.2."""
    return extract_rare_nets(small_multiplier, threshold=0.2, num_patterns=2048, seed=0)


@pytest.fixture(scope="session")
def multiplier_compatibility(small_multiplier, multiplier_rare_nets):
    """Compatibility analysis of the small multiplier."""
    return compute_compatibility(small_multiplier, multiplier_rare_nets)


@pytest.fixture()
def tiny_config():
    """A DETERRENT configuration small enough for unit tests."""
    return DeterrentConfig(
        num_probability_patterns=512,
        episode_length=10,
        num_envs=2,
        total_training_steps=256,
        k_patterns=8,
        seed=0,
        ppo=PpoConfig(num_steps=32, minibatch_size=32, hidden_sizes=(16, 16), num_epochs=2),
    )
