"""Unit tests for ``scripts/check_benchmark_regression.py``.

The script lives outside the package (it is a CI utility, not part of
``repro``), so it is loaded here by file path via ``importlib``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_benchmark_regression.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_benchmark_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def report_payload(sat_rate: float = 100.0, decisions: float = 1000.0) -> dict:
    """A minimal pytest-benchmark report carrying both tracked benchmarks."""
    return {
        "benchmarks": [
            {
                "name": "test_sat_guided_vs_random_coverage_per_second",
                "extra_info": {"sat_coverage_per_second": sat_rate},
            },
            {
                "name": "test_solver_decisions_per_second",
                "extra_info": {
                    "decisions_per_second": decisions,
                    "propagations_per_second": decisions * 10,
                },
            },
            {"name": "test_untracked_benchmark", "extra_info": {"whatever": 1.0}},
        ]
    }


def write_report(tmp_path: Path, **kwargs) -> Path:
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report_payload(**kwargs)))
    return path


class TestExtractMetrics:
    def test_pulls_only_tracked_rates(self, checker):
        metrics = checker.extract_metrics(report_payload())
        assert set(metrics) == {
            "test_sat_guided_vs_random_coverage_per_second",
            "test_solver_decisions_per_second",
        }
        assert metrics["test_solver_decisions_per_second"] == {
            "decisions_per_second": 1000.0,
            "propagations_per_second": 10000.0,
        }

    def test_empty_report(self, checker):
        assert checker.extract_metrics({}) == {}
        assert checker.extract_metrics({"benchmarks": []}) == {}


class TestCompare:
    def test_no_warnings_within_threshold(self, checker):
        base = checker.extract_metrics(report_payload())
        current = checker.extract_metrics(report_payload(sat_rate=80.0))  # -20%
        assert checker.compare(current, base, threshold=0.30) == []

    def test_warns_beyond_threshold(self, checker):
        base = checker.extract_metrics(report_payload())
        current = checker.extract_metrics(report_payload(sat_rate=60.0))  # -40%
        warnings = checker.compare(current, base, threshold=0.30)
        assert len(warnings) == 1
        assert "sat_coverage_per_second dropped 40%" in warnings[0]

    def test_improvements_never_warn(self, checker):
        base = checker.extract_metrics(report_payload())
        current = checker.extract_metrics(report_payload(sat_rate=500.0, decisions=9999.0))
        assert checker.compare(current, base, threshold=0.30) == []

    def test_missing_benchmark_warns(self, checker):
        base = checker.extract_metrics(report_payload())
        warnings = checker.compare({}, base, threshold=0.30)
        assert any("missing from the" in line for line in warnings)

    def test_zero_baseline_metric_is_skipped(self, checker):
        base = {"test_solver_decisions_per_second": {"decisions_per_second": 0.0}}
        current = {"test_solver_decisions_per_second": {"decisions_per_second": 0.0}}
        assert checker.compare(current, base, threshold=0.30) == []


class TestMain:
    def test_missing_baseline_skips_with_exit_0(self, checker, tmp_path, capsys):
        report = write_report(tmp_path)
        code = checker.main([str(report), "--baseline", str(tmp_path / "nope.json")])
        assert code == 0
        assert "skipping regression check" in capsys.readouterr().out

    def test_clean_comparison_exit_0(self, checker, tmp_path, capsys):
        report = write_report(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(checker.extract_metrics(report_payload())))
        code = checker.main([str(report), "--baseline", str(baseline)])
        assert code == 0
        assert "no benchmark regressions" in capsys.readouterr().out

    def test_regression_warns_but_still_exits_0(self, checker, tmp_path, capsys):
        report = write_report(tmp_path, sat_rate=50.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(checker.extract_metrics(report_payload())))
        code = checker.main([str(report), "--baseline", str(baseline)])
        assert code == 0  # soft check by design
        assert "::warning::benchmark regression" in capsys.readouterr().out

    def test_update_baseline_writes_current_metrics(self, checker, tmp_path):
        report = write_report(tmp_path, sat_rate=42.0)
        baseline = tmp_path / "baseline.json"
        code = checker.main(
            [str(report), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        stored = json.loads(baseline.read_text())
        assert (
            stored["test_sat_guided_vs_random_coverage_per_second"]
            == {"sat_coverage_per_second": 42.0}
        )

    def test_malformed_report_exits_1_with_clean_message(self, checker, tmp_path, capsys):
        report = tmp_path / "report.json"
        report.write_text("{not json")
        code = checker.main([str(report)])
        assert code == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err

    def test_missing_report_exits_1(self, checker, tmp_path, capsys):
        code = checker.main([str(tmp_path / "absent.json")])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_baseline_exits_1(self, checker, tmp_path, capsys):
        report = write_report(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]")  # valid JSON, wrong shape
        code = checker.main([str(report), "--baseline", str(baseline)])
        assert code == 1
        assert "must contain a JSON object" in capsys.readouterr().err

    def test_custom_threshold(self, checker, tmp_path, capsys):
        report = write_report(tmp_path, sat_rate=85.0)  # -15%
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(checker.extract_metrics(report_payload())))
        code = checker.main(
            [str(report), "--baseline", str(baseline), "--threshold", "0.10"]
        )
        assert code == 0
        assert "::warning::" in capsys.readouterr().out
